"""Propositional logic.

SWS(PL, PL) services (Section 2, "SWS classes") express both transition and
synthesis queries as propositional formulas.  An input message is a truth
assignment represented as the set of variables that are true; message and
action registers hold a single truth value.

This module provides the formula AST, a small recursive-descent parser, and
the operations the SWS machinery needs: evaluation, substitution of formulas
for variables (used when synthesis formulas are instantiated with successor
action values), variable collection, and structural simplification.

Formulas are **hash-consed**: constructing a formula returns the unique
interned node for that structure, so structurally equal formulas are
reference-identical, ``variables()`` is computed once per node, and
``simplify()`` is memoized.  Interning is what makes the compiled AFA
engine cheap — transition rows compare and hash in O(#states) regardless
of formula size, and :func:`compile_mask` caches compiled evaluators per
interned node.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Iterable, Mapping

from repro._stats import STATS
from repro.errors import QueryError

Assignment = AbstractSet[str]

# Interning tables.  One per constructor shape; keys are the constructor
# arguments (already-interned children hash in O(1) via their cached hash).
_VAR_CACHE: dict[str, "Var"] = {}
_CONST_CACHE: dict[bool, "Const"] = {}
_NOT_CACHE: dict["Formula", "Not"] = {}
_AND_CACHE: dict[tuple["Formula", ...], "And"] = {}
_OR_CACHE: dict[tuple["Formula", ...], "Or"] = {}


class Formula:
    """Base class for propositional formulas.

    Formulas are immutable, interned value objects; ``&``, ``|``, ``~`` and
    ``>>`` build conjunctions, disjunctions, negations and implications.
    """

    __slots__ = ("_hash", "_vars", "_simplified")

    def evaluate(self, assignment: Assignment) -> bool:
        """Truth value under ``assignment`` (the set of true variables)."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """All variables occurring in the formula (cached per node)."""
        vars_ = self._vars
        if vars_ is None:
            vars_ = self._compute_variables()
            object.__setattr__(self, "_vars", vars_)
        return vars_

    def _compute_variables(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Formula"]) -> "Formula":
        """Replace variables by formulas, simultaneously.

        Shared subformulas (common under hash-consing) are rewritten once
        per call via an internal memo table.
        """
        return _substitute(self, mapping, {})

    def simplify(self) -> "Formula":
        """Bottom-up constant propagation, flattening and deduplication.

        Memoized: each interned node simplifies at most once per process.
        """
        simplified = self._simplified
        if simplified is None:
            simplified = self._compute_simplify()
            object.__setattr__(self, "_simplified", simplified)
            # A simplified formula is its own fixpoint.
            object.__setattr__(simplified, "_simplified", simplified)
        else:
            STATS.simplify_memo_hits += 1
        return simplified

    def _compute_simplify(self) -> "Formula":
        raise NotImplementedError

    def __hash__(self) -> int:
        return self._hash

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __copy__(self) -> "Formula":
        return self

    def __deepcopy__(self, memo) -> "Formula":
        return self

    # -- operator sugar -------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Or((Not(self), other))


def _fresh(cls, hash_value: int) -> Formula:
    """Allocate an un-cached node with empty lazy-cache slots."""
    self = object.__new__(cls)
    object.__setattr__(self, "_hash", hash_value)
    object.__setattr__(self, "_vars", None)
    object.__setattr__(self, "_simplified", None)
    return self


class Var(Formula):
    """A propositional variable."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Var":
        cached = _VAR_CACHE.get(name)
        if cached is not None:
            STATS.intern_hits += 1
            return cached
        STATS.intern_misses += 1
        self = _fresh(cls, hash(("pl.Var", name)))
        object.__setattr__(self, "name", name)
        _VAR_CACHE[name] = self
        return self

    def evaluate(self, assignment: Assignment) -> bool:
        return self.name in assignment

    def _compute_variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return mapping.get(self.name, self)

    def simplify(self) -> Formula:
        return self

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Var) and self.name == other.name)

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Var, (self.name,))

    def __repr__(self) -> str:
        return f"Var(name={self.name!r})"

    def __str__(self) -> str:
        return self.name


class Const(Formula):
    """A propositional constant (true or false)."""

    __slots__ = ("value",)

    def __new__(cls, value: bool) -> "Const":
        value = bool(value)
        cached = _CONST_CACHE.get(value)
        if cached is not None:
            return cached
        self = _fresh(cls, hash(("pl.Const", value)))
        object.__setattr__(self, "value", value)
        _CONST_CACHE[value] = self
        return self

    def evaluate(self, assignment: Assignment) -> bool:
        return self.value

    def _compute_variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return self

    def simplify(self) -> Formula:
        return self

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Const) and self.value == other.value)

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Const, (self.value,))

    def __repr__(self) -> str:
        return f"Const(value={self.value!r})"

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Const(True)
FALSE = Const(False)


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __new__(cls, operand: Formula) -> "Not":
        cached = _NOT_CACHE.get(operand)
        if cached is not None:
            STATS.intern_hits += 1
            return cached
        STATS.intern_misses += 1
        self = _fresh(cls, hash(("pl.Not", operand)))
        object.__setattr__(self, "operand", operand)
        _NOT_CACHE[operand] = self
        return self

    def evaluate(self, assignment: Assignment) -> bool:
        return not self.operand.evaluate(assignment)

    def _compute_variables(self) -> frozenset[str]:
        return self.operand.variables()

    def _compute_simplify(self) -> Formula:
        inner = self.operand.simplify()
        if isinstance(inner, Const):
            return Const(not inner.value)
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Not) and self.operand == other.operand)

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Not, (self.operand,))

    def __repr__(self) -> str:
        return f"Not(operand={self.operand!r})"

    def __str__(self) -> str:
        return f"!{_wrap(self.operand)}"


class And(Formula):
    """N-ary conjunction.  ``And(())`` is true."""

    __slots__ = ("operands",)

    def __new__(cls, operands: Iterable[Formula]) -> "And":
        operands = tuple(operands)
        cached = _AND_CACHE.get(operands)
        if cached is not None:
            STATS.intern_hits += 1
            return cached
        STATS.intern_misses += 1
        self = _fresh(cls, hash(("pl.And", operands)))
        object.__setattr__(self, "operands", operands)
        _AND_CACHE[operands] = self
        return self

    def evaluate(self, assignment: Assignment) -> bool:
        for op in self.operands:
            if not op.evaluate(assignment):
                return False
        return True

    def _compute_variables(self) -> frozenset[str]:
        return frozenset().union(*(op.variables() for op in self.operands))

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return _substitute(self, mapping, {})

    def _compute_simplify(self) -> Formula:
        flat: list[Formula] = []
        for op in self.operands:
            s = op.simplify()
            if isinstance(s, Const):
                if not s.value:
                    return FALSE
                continue
            if isinstance(s, And):
                flat.extend(s.operands)
            else:
                flat.append(s)
        # Order-preserving dedup: substitution chains replicate operands,
        # and keeping the copies blows formulas up exponentially.
        flat = list(dict.fromkeys(flat))
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return And(flat)

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, And) and self.operands == other.operands
        )

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (And, (self.operands,))

    def __repr__(self) -> str:
        return f"And(operands={self.operands!r})"

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return " & ".join(_wrap(op) for op in self.operands)


class Or(Formula):
    """N-ary disjunction.  ``Or(())`` is false."""

    __slots__ = ("operands",)

    def __new__(cls, operands: Iterable[Formula]) -> "Or":
        operands = tuple(operands)
        cached = _OR_CACHE.get(operands)
        if cached is not None:
            STATS.intern_hits += 1
            return cached
        STATS.intern_misses += 1
        self = _fresh(cls, hash(("pl.Or", operands)))
        object.__setattr__(self, "operands", operands)
        _OR_CACHE[operands] = self
        return self

    def evaluate(self, assignment: Assignment) -> bool:
        for op in self.operands:
            if op.evaluate(assignment):
                return True
        return False

    def _compute_variables(self) -> frozenset[str]:
        return frozenset().union(*(op.variables() for op in self.operands))

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return _substitute(self, mapping, {})

    def _compute_simplify(self) -> Formula:
        flat: list[Formula] = []
        for op in self.operands:
            s = op.simplify()
            if isinstance(s, Const):
                if s.value:
                    return TRUE
                continue
            if isinstance(s, Or):
                flat.extend(s.operands)
            else:
                flat.append(s)
        flat = list(dict.fromkeys(flat))
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return Or(flat)

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Or) and self.operands == other.operands
        )

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Or, (self.operands,))

    def __repr__(self) -> str:
        return f"Or(operands={self.operands!r})"

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return " | ".join(_wrap(op) for op in self.operands)


def _substitute(
    formula: Formula, mapping: Mapping[str, Formula], memo: dict[Formula, Formula]
) -> Formula:
    """Simultaneous substitution with per-call sharing of rewritten nodes."""
    done = memo.get(formula)
    if done is not None:
        return done
    if isinstance(formula, Var):
        result = mapping.get(formula.name, formula)
    elif isinstance(formula, Const):
        result = formula
    elif isinstance(formula, Not):
        result = Not(_substitute(formula.operand, mapping, memo))
    elif isinstance(formula, And):
        result = And(_substitute(op, mapping, memo) for op in formula.operands)
    elif isinstance(formula, Or):
        result = Or(_substitute(op, mapping, memo) for op in formula.operands)
    else:  # pragma: no cover - closed AST
        raise QueryError(f"cannot substitute into {type(formula).__name__}")
    memo[formula] = result
    return result


def _wrap(formula: Formula) -> str:
    if isinstance(formula, (Var, Const, Not)):
        return str(formula)
    return f"({formula})"


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of a (possibly empty) collection, simplified."""
    return And(formulas).simplify()


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of a (possibly empty) collection, simplified."""
    return Or(formulas).simplify()


def iff(left: Formula, right: Formula) -> Formula:
    """Biconditional, expressed through the core connectives."""
    return (left & right) | (~left & ~right)


# -- compiled evaluation ------------------------------------------------------
#
# The AFA hot path evaluates the same transition formulas over millions of
# valuation vectors.  compile_mask() turns a formula into a closure over an
# *int bitset* (bit i = variable index[i] is true), and compile_row() fuses
# a whole transition row — one formula per target bit — into a single
# mask → mask function.  Every distinct subformula is hoisted into a local,
# so shared nodes (ubiquitous under hash-consing) evaluate exactly once per
# call, and the generated code runs on plain int shifts instead of AST
# recursion over frozensets.

_COMPILE_CACHE: dict[tuple, Callable] = {}


class _MaskCodegen:
    """Shared-subexpression codegen over an int bitset argument ``v``.

    Every subformula evaluates to a 0/1 int (``Var`` extracts a bit;
    ``and``/``or`` on 0/1 operands return 0/1 and short-circuit, which
    matters on conjunction-heavy rows).  Only subformulas referenced more
    than once across the compilation unit are hoisted into locals —
    singly-referenced nodes inline into one big expression, which CPython
    evaluates far faster than a store/load per node.
    """

    def __init__(
        self, index: Mapping[str, int], arg: str = "v", prefix: str = "t"
    ) -> None:
        self._index = index
        self._arg = arg
        self._prefix = prefix
        self._names: dict[Formula, str] = {}
        self._refs: dict[Formula, int] = {}
        self.lines: list[str] = []

    def count_refs(self, node: Formula) -> None:
        """First pass: count DAG parent edges per internal node."""
        seen = self._refs.get(node, 0)
        self._refs[node] = seen + 1
        if seen:
            return
        if isinstance(node, Not):
            self.count_refs(node.operand)
        elif isinstance(node, (And, Or)):
            for op in node.operands:
                self.count_refs(op)

    def expr(self, node: Formula) -> str:
        known = self._names.get(node)
        if known is not None:
            return known
        if isinstance(node, Var):
            e = f"({self._arg} >> {self._index[node.name]} & 1)"
        elif isinstance(node, Const):
            e = "1" if node.value else "0"
        elif isinstance(node, Not):
            e = f"(not {self.expr(node.operand)})"
        elif isinstance(node, And):
            e = (
                "(" + " and ".join(self.expr(op) for op in node.operands) + ")"
                if node.operands
                else "1"
            )
        elif isinstance(node, Or):
            e = (
                "(" + " or ".join(self.expr(op) for op in node.operands) + ")"
                if node.operands
                else "0"
            )
        else:  # pragma: no cover - closed AST
            raise QueryError(f"cannot compile {type(node).__name__}")
        if isinstance(node, (Not, And, Or)) and self._refs.get(node, 0) > 1:
            temp = f"{self._prefix}{len(self.lines)}"
            self.lines.append(f"    {temp} = {e}")
            self._names[node] = temp
            return temp
        self._names[node] = e
        return e


def _assemble(name: str, header: str, lines: list[str], footer: str) -> Callable:
    source = f"def {name}(v):\n{header}" + "\n".join(lines) + f"\n{footer}\n"
    namespace: dict = {}
    exec(compile(source, f"<pl.{name}>", "exec"), namespace)
    return namespace[name]


def compile_mask(
    formula: Formula, index: Mapping[str, int]
) -> Callable[[int], bool]:
    """Compile ``formula`` into ``fn(mask) -> bool`` over an int bitset.

    ``index`` maps each variable to its bit position.  Compiled functions
    are cached per (interned formula, index signature).
    """
    key = ("mask", formula, frozenset(index.items()))
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        STATS.compile_cache_hits += 1
        return cached
    STATS.compile_cache_misses += 1
    gen = _MaskCodegen(index)
    gen.count_refs(formula)
    root = gen.expr(formula)
    fn = _assemble("_compiled", "", gen.lines, f"    return bool({root})")
    _COMPILE_CACHE[key] = fn
    return fn


def compile_row(
    entries: Iterable[tuple[int, Formula]], index: Mapping[str, int]
) -> Callable[[int], int]:
    """Compile transition-row ``entries`` into one ``fn(mask) -> mask``.

    ``entries`` pairs an output bit with the formula that sets it; the
    generated function evaluates every formula on the input bitset and ORs
    the bits whose formulas hold — a whole AFA ``pre_step`` on one symbol
    in a single call.  Shared subformulas across the row evaluate once.
    """
    entries = tuple(entries)
    key = ("row", entries, frozenset(index.items()))
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        STATS.compile_cache_hits += 1
        return cached
    STATS.compile_cache_misses += 1
    gen = _MaskCodegen(index)
    for _, formula in entries:
        gen.count_refs(formula)
    terms: list[str] = []
    for bit, formula in entries:
        e = gen.expr(formula)
        shift = bit.bit_length() - 1
        terms.append(f"({e} << {shift})" if shift else e)
    result = " | ".join(terms) if terms else "0"
    fn = _assemble("_row", "", gen.lines, f"    return {result}")
    _COMPILE_CACHE[key] = fn
    return fn


# -- parser -----------------------------------------------------------------
#
# Grammar (lowest to highest precedence):
#   formula    := implication
#   implication:= disjunction ('->' implication)?
#   disjunction:= conjunction ('|' conjunction)*
#   conjunction:= unary ('&' unary)*
#   unary      := '!' unary | atom
#   atom       := 'true' | 'false' | identifier | '(' formula ')'


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = self._tokenize(text)
        self._pos = 0

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens: list[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
            elif ch in "()&|!":
                tokens.append(ch)
                i += 1
            elif text.startswith("->", i):
                tokens.append("->")
                i += 2
            elif ch.isalnum() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(text[i:j])
                i = j
            else:
                raise QueryError(f"unexpected character {ch!r} in formula {text!r}")
        return tokens

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of formula")
        self._pos += 1
        return token

    def parse(self) -> Formula:
        formula = self._implication()
        if self._peek() is not None:
            raise QueryError(f"trailing tokens after formula: {self._tokens[self._pos:]}")
        return formula

    def _implication(self) -> Formula:
        left = self._disjunction()
        if self._peek() == "->":
            self._next()
            right = self._implication()
            return Or((Not(left), right))
        return left

    def _disjunction(self) -> Formula:
        operands = [self._conjunction()]
        while self._peek() == "|":
            self._next()
            operands.append(self._conjunction())
        if len(operands) == 1:
            return operands[0]
        return Or(operands)

    def _conjunction(self) -> Formula:
        operands = [self._unary()]
        while self._peek() == "&":
            self._next()
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return And(operands)

    def _unary(self) -> Formula:
        if self._peek() == "!":
            self._next()
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Formula:
        token = self._next()
        if token == "(":
            inner = self._implication()
            if self._next() != ")":
                raise QueryError("unbalanced parentheses in formula")
            return inner
        if token == "true":
            return TRUE
        if token == "false":
            return FALSE
        if token in {")", "&", "|", "->", "!"}:
            raise QueryError(f"unexpected token {token!r} in formula")
        return Var(token)


def parse(text: str) -> Formula:
    """Parse a formula from its textual syntax.

    Connectives: ``!`` (not), ``&`` (and), ``|`` (or), ``->`` (implies);
    constants ``true`` / ``false``; identifiers are variables.
    """
    return _Parser(text).parse()
