"""Answering queries using views.

Section 5.2 reduces SWS composition synthesis to *equivalent query rewriting
using views*: the goal service is the query, component services are the
views, and a mediator is a rewriting.  This module implements the two
rewriting engines the paper's decidable cases need:

* :func:`equivalent_rewriting` — equivalent rewritings of CQ/UCQ queries
  (with =/≠) using CQ views, via the canonical-rewriting construction: the
  candidate whose body consists of *all* view facts over the canonical
  database of (each equality pattern of) the query is, when any equivalent
  rewriting exists at all, itself equivalent.  Used by the
  CP(SWS_nr(CQ,UCQ), MDT_nr(UCQ), SWS_nr(CQ,UCQ)) procedure
  (Theorem 5.1(3)).
* :func:`inverse_rules` / :func:`certain_answers` — the maximally-contained
  datalog rewriting of Duschka & Genesereth, used by the UC2RPQ special
  case (Corollary 5.2).

Completeness notes: for CQ/UCQ without inequality the canonical-rewriting
test is the classical complete decision procedure.  With inequalities we
enumerate candidates per equality pattern, which covers the instances our
benchmarks generate; the paper itself only establishes a (2EXPSPACE)
small-model bound for that case, and EXPERIMENTS.md records this scoping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro import artifacts
from repro.data.relation import Relation, Row
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic.cq import (
    Atom,
    ConjunctiveQuery,
    LabeledNull,
    _facts_as_database,
)
from repro.guard import checkpoint, register_span
from repro.logic.terms import Constant, Term, Variable
from repro.logic.ucq import UnionQuery, compose_union
from repro.obs import traced


class View:
    """A named materialized view defined by a CQ or a UCQ.

    The view predicate is the view's name; mediator/rewriting queries use
    atoms over that predicate.  CQ definitions are normalized to singleton
    unions.
    """

    def __init__(
        self, definition: "ConjunctiveQuery | UnionQuery", name: str | None = None
    ) -> None:
        source_name = definition.name
        if isinstance(definition, ConjunctiveQuery):
            definition = UnionQuery([definition], name=source_name)
        self.definition: UnionQuery = definition
        self.name = name or source_name

    @property
    def arity(self) -> int:
        """Head arity of the view."""
        return self.definition.arity

    def constants(self):
        """All constants across the definition's disjuncts."""
        out: set[Constant] = set()
        for disjunct in self.definition.disjuncts:
            out |= disjunct.constants()
        return frozenset(out)

    def has_inequalities(self) -> bool:
        """Whether any disjunct carries an inequality."""
        return any(d.inequalities() for d in self.definition.disjuncts)

    def relations(self) -> frozenset[str]:
        """Base relations the definition mentions."""
        return self.definition.relations()

    def __repr__(self) -> str:
        return f"View({self.name!r}, {len(self.definition.disjuncts)} disjuncts)"


def expansion(rewriting: UnionQuery, views: Sequence[View]) -> UnionQuery:
    """Expand view atoms of a rewriting by their definitions.

    Expansion is pure in the rewriting and the view definitions, and the
    equivalence tests expand the same candidates over and over across
    minimization rounds, so when an artifact store is in scope the
    result persists under a content key — a cold process re-checking a
    mediator skips straight to the expanded unions.
    """
    definitions = {view.name: view.definition for view in views}
    if not artifacts.enabled():
        return compose_union(rewriting, definitions)
    key = (
        "ucq.expansion",
        rewriting,
        tuple(sorted(definitions.items(), key=lambda item: item[0])),
    )
    cached = artifacts.load("ucq.expansion", key)
    if isinstance(cached, UnionQuery):
        return cached
    expanded = compose_union(rewriting, definitions)
    artifacts.store(
        "ucq.expansion",
        key,
        expanded,
        meta={"disjuncts": len(expanded.disjuncts)},
    )
    return expanded


def _view_facts(
    views: Sequence[View], facts: Mapping[str, set[Row]], relations: Iterable[str]
) -> dict[str, frozenset[Row]]:
    """Evaluate every view over a frozen canonical database."""
    database = _facts_as_database(facts, relations)
    return {view.name: view.definition.evaluate(database) for view in views}


def _canonical_rewriting_disjunct(
    query: ConjunctiveQuery,
    views: Sequence[View],
    facts: Mapping[str, set[Row]],
    head_row: Row,
    base_relations: Iterable[str],
) -> ConjunctiveQuery | None:
    """The canonical candidate rewriting from one frozen instance.

    Nulls of the frozen instance become variables again; the candidate's
    body holds one view atom per view fact.  Returns ``None`` when the
    views give no facts at all (then no rewriting can be built from this
    instance) or when the frozen head uses a null no view fact exposes.
    """
    all_view_facts = _view_facts(views, facts, base_relations)

    def unfreeze(value: Any) -> Term:
        if isinstance(value, LabeledNull):
            return Variable(f"n{value.index}")
        return Constant(value)

    atoms: list[Atom] = []
    exposed: set[Any] = set()
    for view in views:
        for row in all_view_facts[view.name]:
            atoms.append(Atom(view.name, tuple(unfreeze(v) for v in row)))
            exposed |= {v for v in row if isinstance(v, LabeledNull)}
    head_nulls = {v for v in head_row if isinstance(v, LabeledNull)}
    if not head_nulls <= exposed:
        return None
    head = tuple(unfreeze(v) for v in head_row)
    if not atoms:
        if head_nulls:
            return None
        return None  # a rewriting must use at least one view atom
    return ConjunctiveQuery(head, atoms, (), query.name)


def _candidate_disjuncts(
    query: ConjunctiveQuery, views: Sequence[View], base_relations: Iterable[str]
) -> list[ConjunctiveQuery]:
    """Canonical candidates over the query's equality patterns."""
    needs_patterns = bool(query.inequalities()) or any(
        v.has_inequalities() for v in views
    )
    if needs_patterns:
        extra: set[Constant] = set()
        for view in views:
            extra |= view.constants()
        instances = list(query.equality_patterns(extra))
    else:
        canonical = query.canonical_instance()
        instances = [canonical] if canonical is not None else []
    candidates: list[ConjunctiveQuery] = []
    for facts, head_row in instances:
        candidate = _canonical_rewriting_disjunct(
            query, views, facts, head_row, base_relations
        )
        if candidate is not None:
            candidates.append(candidate)
    return candidates


@traced("rewriting.maximally_contained", kind="logic")
def maximally_contained_rewriting(
    query: UnionQuery, views: Sequence[View]
) -> UnionQuery:
    """The maximally-contained UCQ rewriting built from canonical candidates.

    Every returned disjunct's expansion is contained in the query; among
    rewritings built over the canonical instances, none larger exists.
    """
    base_relations = set(query.relations())
    for view in views:
        base_relations |= view.relations()
    kept: list[ConjunctiveQuery] = []
    for disjunct in query.disjuncts:
        for candidate in _candidate_disjuncts(disjunct, views, base_relations):
            checkpoint("rewriting.maximally_contained")
            exp = expansion(UnionQuery.of(candidate), views)
            if exp.contained_in(query):
                kept.append(candidate)
    return UnionQuery(kept, arity=query.arity, name=query.name)


@traced("rewriting.equivalent", kind="logic")
def equivalent_rewriting(
    query: UnionQuery, views: Sequence[View], minimize: bool = True
) -> UnionQuery | None:
    """An equivalent UCQ rewriting of ``query`` using ``views``, or ``None``.

    The procedure builds the maximally-contained canonical rewriting and
    tests whether its expansion covers the query; by the canonical-rewriting
    argument (see module docstring) an equivalent rewriting exists iff this
    candidate is equivalent.
    """
    candidate = maximally_contained_rewriting(query, views)
    if not candidate.disjuncts:
        return None
    checkpoint("rewriting.equivalent")
    exp = expansion(candidate, views)
    if not query.contained_in(exp):
        return None
    if not minimize:
        return candidate
    return _minimize_rewriting(candidate, query, views)


def _minimize_rewriting(
    rewriting: UnionQuery, query: UnionQuery, views: Sequence[View]
) -> UnionQuery:
    """Greedy pruning of redundant disjuncts and view atoms."""
    disjuncts = list(rewriting.disjuncts)
    # Drop entire disjuncts while equivalence survives.
    changed = True
    while changed and len(disjuncts) > 1:
        changed = False
        for i in range(len(disjuncts)):
            checkpoint("rewriting.equivalent")
            trial = disjuncts[:i] + disjuncts[i + 1 :]
            exp = expansion(UnionQuery(trial, arity=query.arity), views)
            if query.contained_in(exp) and exp.contained_in(query):
                disjuncts = trial
                changed = True
                break
    # Drop atoms within each disjunct while the whole rewriting stays
    # equivalent.
    slim: list[ConjunctiveQuery] = []
    for index, disjunct in enumerate(disjuncts):
        atoms = list(disjunct.atoms)
        progress = True
        while progress and len(atoms) > 1:
            progress = False
            for i in range(len(atoms)):
                checkpoint("rewriting.equivalent")
                trial_atoms = atoms[:i] + atoms[i + 1 :]
                try:
                    trial = ConjunctiveQuery(
                        disjunct.head, trial_atoms, disjunct.comparisons, disjunct.name
                    )
                except QueryError:
                    continue
                others = disjuncts[:index] + disjuncts[index + 1 :]
                exp = expansion(
                    UnionQuery([trial, *others], arity=query.arity), views
                )
                if query.contained_in(exp) and exp.contained_in(query):
                    atoms = trial_atoms
                    progress = True
                    break
        slim.append(
            ConjunctiveQuery(disjunct.head, atoms, disjunct.comparisons, disjunct.name)
        )
        disjuncts[index] = slim[-1]
    return UnionQuery(slim, arity=query.arity, name=query.name)


# -- inverse rules (Duschka & Genesereth) ------------------------------------------


@dataclass(frozen=True)
class SkolemTerm:
    """A skolem function application ``f(args)`` in an inverse-rule head."""

    function: str
    args: tuple[Variable, ...]

    def __str__(self) -> str:
        return f"{self.function}({', '.join(a.name for a in self.args)})"


@dataclass(frozen=True)
class SkolemValue:
    """A runtime skolem value: an "unknown" datum introduced by inverse rules.

    Skolem values compare unequal to every ordinary data value, so
    evaluating a query over the reconstructed instance treats them as
    fresh — exactly the open-world reading certain-answer semantics needs.
    """

    function: str
    args: tuple[Any, ...]

    def __repr__(self) -> str:
        return f"{self.function}{self.args!r}"


@dataclass(frozen=True)
class InverseRule:
    """A rule whose head may contain skolem terms.

    ``head_terms`` mixes variables, constants and :class:`SkolemTerm`;
    the single body atom ranges over a view predicate.
    """

    head_relation: str
    head_terms: tuple[Term | SkolemTerm, ...]
    body: Atom

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head_terms)
        return f"{self.head_relation}({head}) :- {self.body}"


def inverse_rules(views: Sequence[View]) -> list[InverseRule]:
    """The inverse rules of a set of CQ views.

    For a view ``V(x̄) :- p1(t̄1), ..., pk(t̄k)`` with existential variables
    ``y``, each body atom yields the rule ``pi(t̄i[y → f_y,V(x̄)]) :- V(x̄)``.
    Views with comparisons are rejected — the classical construction is for
    plain CQs (and that is all CQ^r components need).
    """
    rules: list[InverseRule] = []
    for view in views:
        if len(view.definition.disjuncts) != 1:
            raise QueryError(
                f"inverse rules require single-CQ views; {view.name!r} "
                f"has {len(view.definition.disjuncts)} disjuncts"
            )
        definition = view.definition.disjuncts[0]
        if definition.comparisons:
            raise QueryError(
                f"inverse rules require comparison-free views; {view.name!r} "
                "has comparisons"
            )
        head_vars = [t for t in definition.head if isinstance(t, Variable)]
        if len(head_vars) != len(definition.head):
            raise QueryError(
                f"inverse rules require variable-only view heads ({view.name!r})"
            )
        distinguished = set(head_vars)
        body_atom = Atom(view.name, tuple(definition.head))
        for atom in definition.atoms:
            head_terms: list[Term | SkolemTerm] = []
            for term in atom.terms:
                if isinstance(term, Variable) and term not in distinguished:
                    head_terms.append(
                        SkolemTerm(f"f_{view.name}_{term.name}", tuple(head_vars))
                    )
                else:
                    head_terms.append(term)
            rules.append(InverseRule(atom.relation, tuple(head_terms), body_atom))
    return rules


def _apply_inverse_rules(
    rules: Sequence[InverseRule], view_extensions: Mapping[str, Relation]
) -> dict[str, set[Row]]:
    """Fire every inverse rule once over the view extensions."""
    derived: dict[str, set[Row]] = {}
    for rule in rules:
        checkpoint("rewriting.certain_answers")
        extension = view_extensions.get(rule.body.relation)
        if extension is None:
            continue
        body_query = ConjunctiveQuery(
            tuple(t for t in rule.body.terms), [rule.body], (), "_inv"
        )
        for row in body_query.evaluate({rule.body.relation: extension}):
            binding = dict(zip(rule.body.terms, row))
            out: list[Any] = []
            for term in rule.head_terms:
                if isinstance(term, SkolemTerm):
                    out.append(
                        SkolemValue(
                            term.function, tuple(binding[a] for a in term.args)
                        )
                    )
                elif isinstance(term, Constant):
                    out.append(term.value)
                else:
                    out.append(binding[term])
            derived.setdefault(rule.head_relation, set()).add(tuple(out))
    return derived


def _contains_skolem(row: Row) -> bool:
    return any(isinstance(v, SkolemValue) for v in row)


@traced("rewriting.certain_answers", kind="logic")
def certain_answers(
    query: UnionQuery,
    views: Sequence[View],
    view_extensions: Mapping[str, Relation],
) -> frozenset[Row]:
    """Certain answers of a UCQ over view extensions (open-world).

    Implements the Duschka–Genesereth recipe: apply the inverse rules to
    reconstruct a canonical base instance (with skolem values standing for
    unknown data), evaluate the query on it, and keep only skolem-free
    answers.  Sound and complete for UCQ queries and CQ views.
    """
    base_facts = _apply_inverse_rules(inverse_rules(views), view_extensions)
    relations = set(query.relations())
    for view in views:
        relations |= view.definition.relations()
    database = _facts_as_database(base_facts, relations)
    answers = query.evaluate(database)
    return frozenset(row for row in answers if not _contains_skolem(row))


# The rewriting engines return ``None`` to mean "no rewriting exists" (a
# sound NO), so they cannot absorb a trip into their return value: they
# raise, and the mediator boundaries built on them convert to UNKNOWN.
register_span(
    "rewriting.maximally_contained",
    "canonical-candidate containment loop",
    "Theorem 5.1(3): composition via equivalent rewriting using views",
    raising_only=True,
)
register_span(
    "rewriting.equivalent",
    "equivalence test + greedy minimization trials",
    "Theorem 5.1(3): composition via equivalent rewriting using views",
    raising_only=True,
)
register_span(
    "rewriting.certain_answers",
    "inverse-rule firing loop (Duschka-Genesereth)",
    "Corollary 5.2: UC2RPQ composition via maximally-contained rewriting",
    raising_only=True,
)
