"""Unions of conjunctive queries.

Synthesis rules of SWS(CQ, UCQ) services are UCQs (Section 2).  Besides
evaluation and the classical decision procedures (satisfiability,
containment à la Sagiv–Yannakakis extended to =/≠ via the equality-pattern
machinery in :mod:`repro.logic.cq`), this module implements *composition*:
unfolding atoms that refer to derived relations (message/action registers)
by the UCQs defining them.  Composition is the engine behind the expansion
of a nonrecursive SWS into a single UCQ≠ query (Theorem 4.1(2) machinery)
and behind the query-rewriting view of composition synthesis (Section 5.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.data.relation import Relation, Row
from repro.errors import QueryError
from repro.logic.cq import Atom, Comparison, ConjunctiveQuery, eq
from repro.logic.terms import FreshVariableFactory, Term, Variable


class UnionQuery:
    """A union of conjunctive queries with a common head arity.

    The empty union (no disjuncts) is allowed and denotes the query with the
    constant empty answer — SWS synthesis rules may degenerate to it.
    """

    def __init__(
        self,
        disjuncts: Iterable[ConjunctiveQuery],
        arity: int | None = None,
        name: str = "Q",
    ) -> None:
        self.disjuncts: tuple[ConjunctiveQuery, ...] = tuple(disjuncts)
        self.name = name
        if self.disjuncts:
            arities = {d.arity for d in self.disjuncts}
            if len(arities) != 1:
                raise QueryError(f"mixed head arities in union: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise QueryError(
                    f"declared arity {arity} does not match disjuncts ({inferred})"
                )
            self.arity = inferred
        else:
            if arity is None:
                raise QueryError("empty union requires an explicit arity")
            self.arity = arity

    # -- structure -----------------------------------------------------------------

    @classmethod
    def empty(cls, arity: int, name: str = "Q") -> "UnionQuery":
        """The union with no disjuncts (constant empty answer)."""
        return cls((), arity=arity, name=name)

    @classmethod
    def of(cls, *disjuncts: ConjunctiveQuery) -> "UnionQuery":
        """Union of the given CQs."""
        return cls(disjuncts)

    def variables(self) -> frozenset[Variable]:
        """All variables across the disjuncts."""
        out: frozenset[Variable] = frozenset()
        for d in self.disjuncts:
            out |= d.variables()
        return out

    def relations(self) -> frozenset[str]:
        """All relation names across the disjuncts."""
        out: frozenset[str] = frozenset()
        for d in self.disjuncts:
            out |= d.relations()
        return out

    def union(self, other: "UnionQuery") -> "UnionQuery":
        """Union of two UCQs of the same arity."""
        if self.arity != other.arity:
            raise QueryError(
                f"cannot union arity {self.arity} with arity {other.arity}"
            )
        return UnionQuery(self.disjuncts + other.disjuncts, arity=self.arity, name=self.name)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return self.arity == other.arity and set(self.disjuncts) == set(other.disjuncts)

    def __hash__(self) -> int:
        return hash((self.arity, frozenset(self.disjuncts)))

    def __str__(self) -> str:
        if not self.disjuncts:
            return f"{self.name}/{self.arity} :- false"
        return "  UNION  ".join(str(d) for d in self.disjuncts)

    def __repr__(self) -> str:
        return f"<UCQ {len(self.disjuncts)} disjuncts, arity {self.arity}>"

    # -- semantics ----------------------------------------------------------------

    def evaluate(self, database: Mapping[str, Relation]) -> frozenset[Row]:
        """Union of the disjuncts' answers."""
        out: set[Row] = set()
        for disjunct in self.disjuncts:
            out |= disjunct.evaluate(database)
        return frozenset(out)

    def is_satisfiable(self) -> bool:
        """Whether some database yields a nonempty answer."""
        return any(d.is_satisfiable() for d in self.disjuncts)

    def satisfiable_disjuncts(self) -> "UnionQuery":
        """Drop unsatisfiable disjuncts (a normalization step)."""
        kept = [d for d in self.disjuncts if d.is_satisfiable()]
        return UnionQuery(kept, arity=self.arity, name=self.name)

    # -- containment / equivalence ------------------------------------------------------

    def contained_in(self, other: "UnionQuery") -> bool:
        """Sagiv–Yannakakis containment, =/≠-complete via equality patterns."""
        if self.arity != other.arity:
            raise QueryError(
                f"containment requires equal arities: {self.arity} vs {other.arity}"
            )
        return all(
            d.contained_in_union(other.disjuncts) for d in self.disjuncts
        )

    def equivalent_to(self, other: "UnionQuery") -> bool:
        """Mutual containment."""
        return self.contained_in(other) and other.contained_in(self)

    def minimized(self) -> "UnionQuery":
        """Drop unsatisfiable and redundant disjuncts, minimize the rest."""
        kept: list[ConjunctiveQuery] = []
        candidates = [d for d in self.disjuncts if d.is_satisfiable()]
        for i, disjunct in enumerate(candidates):
            others = candidates[:i] + candidates[i + 1 :]
            if others and disjunct.contained_in_union(others):
                candidates = others
                return UnionQuery(
                    candidates, arity=self.arity, name=self.name
                ).minimized()
        kept = [d.minimized() for d in candidates]
        return UnionQuery(kept, arity=self.arity, name=self.name)


def compose(
    query: ConjunctiveQuery,
    definitions: Mapping[str, UnionQuery],
    factory: FreshVariableFactory | None = None,
) -> UnionQuery:
    """Unfold derived-relation atoms of ``query`` by their definitions.

    Every atom over a relation in ``definitions`` is replaced by the body of
    one of the defining UCQ's disjuncts (renamed apart), with the defining
    head equated to the atom's terms; the cross product over all choices
    yields a UCQ.  Atoms over other relations are kept as-is.

    This is classical query composition: the result is equivalent to
    evaluating ``query`` on a database where every derived relation holds
    the answer of its definition.
    """
    factory = factory or FreshVariableFactory(sorted(query.variables()))
    choice_lists: list[list[tuple[list[Atom], list[Comparison]]]] = []
    for atom in query.atoms:
        if atom.relation not in definitions:
            choice_lists.append([([atom], [])])
            continue
        definition = definitions[atom.relation]
        if definition.arity != len(atom.terms):
            raise QueryError(
                f"definition of {atom.relation!r} has arity {definition.arity}, "
                f"atom uses {len(atom.terms)}"
            )
        expansions: list[tuple[list[Atom], list[Comparison]]] = []
        for disjunct in definition.disjuncts:
            renamed = disjunct.rename_apart(factory)
            bindings = [
                eq(atom_term, head_term)
                for atom_term, head_term in zip(atom.terms, renamed.head)
            ]
            expansions.append(
                (list(renamed.atoms), list(renamed.comparisons) + bindings)
            )
        choice_lists.append(expansions)

    disjuncts: list[ConjunctiveQuery] = []
    for combo in _product(choice_lists):
        atoms: list[Atom] = []
        comparisons: list[Comparison] = list(query.comparisons)
        for atom_part, comp_part in combo:
            atoms.extend(atom_part)
            comparisons.extend(comp_part)
        candidate = ConjunctiveQuery(query.head, atoms, comparisons, query.name)
        if candidate.is_satisfiable():
            disjuncts.append(candidate)
    return UnionQuery(disjuncts, arity=query.arity, name=query.name)


def compose_union(
    query: UnionQuery,
    definitions: Mapping[str, UnionQuery],
    factory: FreshVariableFactory | None = None,
) -> UnionQuery:
    """Unfold every disjunct of a UCQ (see :func:`compose`)."""
    factory = factory or FreshVariableFactory(sorted(query.variables()))
    result = UnionQuery.empty(query.arity, name=query.name)
    for disjunct in query.disjuncts:
        result = result.union(compose(disjunct, definitions, factory))
    return result


def _product(
    choice_lists: Sequence[Sequence[tuple[list[Atom], list[Comparison]]]],
) -> Iterator[tuple[tuple[list[Atom], list[Comparison]], ...]]:
    if not choice_lists:
        yield ()
        return
    head, *rest = choice_lists
    for choice in head:
        for tail in _product(rest):
            yield (choice,) + tail
