"""Query and constraint languages.

The paper parametrizes SWS classes by the languages in which transition and
synthesis queries are written: propositional logic (PL), conjunctive queries
with equality and inequality (CQ), unions of conjunctive queries (UCQ) and
first-order logic (FO).  This package implements all four, plus the two
engines the composition-synthesis results lean on: datalog (with the
inverse-rule rewriting of Duschka–Genesereth) and answering queries using
views.

Submodules
----------
``pl``        propositional formulas: AST, parser, evaluation, substitution
``cnf``       CNF / Tseitin transformation
``sat``       DPLL SAT solver (drives the NP decision procedures)
``terms``     variables and constants shared by CQ/UCQ/FO/datalog
``cq``        conjunctive queries with =, ≠: evaluation, homomorphisms,
              canonical databases, containment (Klug-style under ≠)
``ucq``       unions of conjunctive queries: evaluation, satisfiability,
              containment, equivalence
``fo``        first-order queries: active-domain evaluation, bounded-model
              satisfiability search
``datalog``   datalog programs, semi-naive evaluation, sirups
``rewriting`` answering queries using views (bucket-style equivalent
              rewritings; inverse-rule maximally-contained rewritings)
``parsing``   textual syntax for CQ/UCQ/datalog/FO queries
"""

from repro.logic import cnf, cq, datalog, fo, parsing, pl, rewriting, sat, terms, ucq

__all__ = ["cnf", "cq", "datalog", "fo", "parsing", "pl", "rewriting", "sat", "terms", "ucq"]
