"""Deterministic fault injection for the resource governor.

Chaos-testing substrate: force an exhaustion or cancellation at the
Nth checkpoint of a named span, no matter what limits (if any) are
actually configured.  Span names are shared with :mod:`repro.obs` and
the :data:`~repro.guard.GUARDED_SPANS` registry, so a fault plan can
target any guarded loop in the library::

    from repro.guard import inject

    with inject.injected("afa.search_witness", at=1, limit="deadline"):
        answer = nonempty_pl(sws)       # trips at the first BFS checkpoint
    assert answer.is_unknown

Injection is process-global (one installed plan at a time) and fully
deterministic: the plan fires at checkpoint number ``at`` of its span
and at every later checkpoint of that span, so a procedure that retries
the same search still trips.  Checkpoints of other spans pass through
to the real guards untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.guard import _governor
from repro.guard._governor import LIMITS, GuardTrip, Trip


@dataclass
class FaultPlan:
    """Trip ``limit`` at the ``at``-th checkpoint of span ``span``.

    ``calls`` counts checkpoints observed for the span so far; ``fired``
    reports whether the fault has triggered at least once — test
    matrices assert it to prove the targeted checkpoint was actually
    reached.
    """

    span: str
    at: int = 1
    limit: str = "steps"
    calls: int = field(default=0, init=False)
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.limit not in LIMITS:
            raise ValueError(f"limit must be one of {LIMITS}, got {self.limit!r}")
        if self.at < 1:
            raise ValueError("at must be >= 1 (checkpoints are 1-based)")

    def note(self, site: str) -> None:
        """The hook :func:`repro.guard._governor.checkpoint` calls."""
        if site != self.span:
            return
        self.calls += 1
        if self.calls < self.at:
            return
        self.fired = True
        raise GuardTrip(
            Trip(
                limit=self.limit,
                site=site,
                steps=self.calls,
                elapsed_s=0.0,
                budget_value=0 if self.limit != "cancelled" else None,
                injected=True,
            )
        )


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide fault hook (replacing any)."""
    _governor._INJECT_HOOK = plan.note
    return plan


def remove() -> None:
    """Remove the installed fault plan, if any."""
    _governor._INJECT_HOOK = None


# Backwards-friendly alias: tests often pair install()/reset().
reset = remove


@contextmanager
def injected(span: str, at: int = 1, limit: str = "steps") -> Iterator[FaultPlan]:
    """Context manager installing a :class:`FaultPlan` for its extent."""
    plan = install(FaultPlan(span=span, at=at, limit=limit))
    try:
        yield plan
    finally:
        remove()
