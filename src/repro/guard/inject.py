"""Deterministic fault injection for the resource governor.

Chaos-testing substrate: force an exhaustion or cancellation at the
Nth checkpoint of a named span, no matter what limits (if any) are
actually configured.  Span names are shared with :mod:`repro.obs` and
the :data:`~repro.guard.GUARDED_SPANS` registry, so a fault plan can
target any guarded loop in the library::

    from repro.guard import inject

    with inject.injected("afa.search_witness", at=1, limit="deadline"):
        answer = nonempty_pl(sws)       # trips at the first BFS checkpoint
    assert answer.is_unknown

Injection is process-global (one installed plan at a time) and fully
deterministic: the plan fires at checkpoint number ``at`` of its span
and at every later checkpoint of that span, so a procedure that retries
the same search still trips.  Checkpoints of other spans pass through
to the real guards untouched.

Beyond in-process guard trips, :class:`ChaosSpec` describes
*process-level* faults for the serving layer's chaos/soak harness:

* **worker kill** — a selected pool job hard-kills its worker process
  (``os._exit``) at a guard checkpoint, i.e. genuinely mid-search, so
  the parent sees ``BrokenProcessPool`` and must recover;
* **exec stall** — a selected job sleeps before executing, emulating a
  wedged worker (deadline budgets then trip for real);
* **guard trip** — a selected job trips a chosen limit at a checkpoint
  regardless of its budget (exercises the retry/escalation path);
* **store faults** — a fraction of SQLite store operations fail their
  first attempt with a transient "database is locked" error (exercises
  the store's backoff-retry path).

Every decision is a pure hash of ``(seed, kind, key)``, so a chaos run
is reproducible and a *re-dispatched* job (new attempt number in the
key) draws a fresh decision instead of dying forever.  Install a spec
with :func:`install_chaos` (fork-pool workers inherit it) or export it
as the ``REPRO_CHAOS`` environment variable (JSON, crossing any process
boundary); :func:`active_chaos` is what the pool and store consult.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.guard import _governor
from repro.guard._governor import LIMITS, GuardTrip, Trip


@dataclass
class FaultPlan:
    """Trip ``limit`` at the ``at``-th checkpoint of span ``span``.

    ``calls`` counts checkpoints observed for the span so far; ``fired``
    reports whether the fault has triggered at least once — test
    matrices assert it to prove the targeted checkpoint was actually
    reached.
    """

    span: str
    at: int = 1
    limit: str = "steps"
    calls: int = field(default=0, init=False)
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.limit not in LIMITS:
            raise ValueError(f"limit must be one of {LIMITS}, got {self.limit!r}")
        if self.at < 1:
            raise ValueError("at must be >= 1 (checkpoints are 1-based)")

    def note(self, site: str) -> None:
        """The hook :func:`repro.guard._governor.checkpoint` calls."""
        if site != self.span:
            return
        self.calls += 1
        if self.calls < self.at:
            return
        self.fired = True
        raise GuardTrip(
            Trip(
                limit=self.limit,
                site=site,
                steps=self.calls,
                elapsed_s=0.0,
                budget_value=0 if self.limit != "cancelled" else None,
                injected=True,
            )
        )


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide fault hook (replacing any)."""
    _governor._INJECT_HOOK = plan.note
    return plan


def remove() -> None:
    """Remove the installed fault plan, if any."""
    _governor._INJECT_HOOK = None


# Backwards-friendly alias: tests often pair install()/reset().
reset = remove


@contextmanager
def injected(span: str, at: int = 1, limit: str = "steps") -> Iterator[FaultPlan]:
    """Context manager installing a :class:`FaultPlan` for its extent."""
    plan = install(FaultPlan(span=span, at=at, limit=limit))
    try:
        yield plan
    finally:
        remove()


# -- process-level chaos ----------------------------------------------------------

#: Environment variable carrying a JSON :meth:`ChaosSpec.as_dict` so the
#: spec crosses process boundaries (CLI runs, spawn-context pools).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Exit status of a chaos-killed worker (distinctive in core/CI logs).
KILL_EXIT_CODE = 86


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic process-level fault rates for the chaos harness.

    Rates are probabilities in ``[0, 1]`` evaluated by :meth:`decide` —
    a pure hash of ``(seed, kind, key)``, so the same spec over the same
    job keys always injects the same faults.  The serving layer keys
    kill/stall/trip decisions on ``"<job_key>:<attempt>"``: a job that
    drew a kill on its first dispatch draws independently after the pool
    respawns and re-dispatches it.
    """

    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.05
    trip_rate: float = 0.0
    trip_limit: str = "steps"
    store_error_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "stall_rate", "trip_rate", "store_error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.trip_limit not in LIMITS:
            raise ValueError(
                f"trip_limit must be one of {LIMITS}, got {self.trip_limit!r}"
            )

    def decide(self, kind: str, key: str) -> bool:
        """Whether the fault of ``kind`` fires for ``key`` (deterministic)."""
        rate = {
            "kill": self.kill_rate,
            "stall": self.stall_rate,
            "trip": self.trip_rate,
            "store": self.store_error_rate,
        }[kind]
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(f"{self.seed}:{kind}:{key}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < rate

    def as_dict(self) -> dict:
        """JSON-friendly form (what :data:`CHAOS_ENV_VAR` carries)."""
        return {
            "kill_rate": self.kill_rate,
            "stall_rate": self.stall_rate,
            "stall_s": self.stall_s,
            "trip_rate": self.trip_rate,
            "trip_limit": self.trip_limit,
            "store_error_rate": self.store_error_rate,
            "seed": self.seed,
        }

    def as_env(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, spec: dict) -> "ChaosSpec":
        unknown = set(spec) - set(cls().as_dict())
        if unknown:
            raise ValueError(f"unknown chaos fields {sorted(unknown)}")
        return cls(**spec)


#: The installed spec; ``None`` consults :data:`CHAOS_ENV_VAR` instead.
_CHAOS: ChaosSpec | None = None

#: Memoized env parse, keyed by the raw env value (env rarely changes
#: mid-process; a changed value re-parses).
_CHAOS_ENV_CACHE: tuple[str, ChaosSpec | None] | None = None

#: Monotone per-process store-operation counter for store-fault keys.
_STORE_OPS = 0


def install_chaos(spec: ChaosSpec) -> ChaosSpec:
    """Install ``spec`` process-wide (fork-pool workers inherit it)."""
    global _CHAOS
    _CHAOS = spec
    return spec


def remove_chaos() -> None:
    """Remove the installed spec (the env var, if set, still applies)."""
    global _CHAOS
    _CHAOS = None


def active_chaos() -> ChaosSpec | None:
    """The installed spec, else one parsed from ``REPRO_CHAOS``, else None.

    A malformed env value is treated as no chaos — the harness must
    never take a production process down with it.
    """
    if _CHAOS is not None:
        return _CHAOS
    global _CHAOS_ENV_CACHE
    raw = os.environ.get(CHAOS_ENV_VAR, "").strip()
    if not raw:
        return None
    if _CHAOS_ENV_CACHE is not None and _CHAOS_ENV_CACHE[0] == raw:
        return _CHAOS_ENV_CACHE[1]
    try:
        spec = ChaosSpec.from_dict(json.loads(raw))
    except (ValueError, TypeError):
        spec = None
    _CHAOS_ENV_CACHE = (raw, spec)
    return spec


@contextmanager
def chaos(spec: ChaosSpec) -> Iterator[ChaosSpec]:
    """Context manager installing a :class:`ChaosSpec` for its extent."""
    install_chaos(spec)
    try:
        yield spec
    finally:
        remove_chaos()


class _KillAtCheckpoint:
    """Checkpoint hook that hard-kills the process at the ``at``-th call.

    ``os._exit`` (not ``sys.exit``) so no ``finally`` blocks, atexit
    handlers, or executor bookkeeping run — exactly what an OOM kill or
    segfault looks like from the parent's side.
    """

    __slots__ = ("at", "calls")

    def __init__(self, at: int) -> None:
        self.at = max(1, at)
        self.calls = 0

    def __call__(self, site: str) -> None:
        self.calls += 1
        if self.calls >= self.at:
            os._exit(KILL_EXIT_CODE)


class _TripAtCheckpoint:
    """Checkpoint hook raising a :class:`GuardTrip` at the ``at``-th call."""

    __slots__ = ("at", "limit", "calls")

    def __init__(self, at: int, limit: str) -> None:
        self.at = max(1, at)
        self.limit = limit
        self.calls = 0

    def __call__(self, site: str) -> None:
        self.calls += 1
        if self.calls >= self.at:
            raise GuardTrip(
                Trip(
                    limit=self.limit,
                    site=site,
                    steps=self.calls,
                    elapsed_s=0.0,
                    budget_value=0 if self.limit != "cancelled" else None,
                    injected=True,
                )
            )


def apply_job_chaos(job_key: str, attempt: int = 0) -> float:
    """Arm per-job chaos inside a worker about to run ``job_key``.

    Consults :func:`active_chaos`; on a kill or trip decision installs
    the corresponding checkpoint hook (replacing any previous job's),
    otherwise clears the hook.  Returns the stall seconds the caller
    should sleep before executing (0.0 when the job drew no stall).
    Keys include ``attempt`` so a re-dispatched job re-draws.
    """
    spec = active_chaos()
    if spec is None:
        return 0.0
    key = f"{job_key}:{attempt}"
    digest = hashlib.sha256(f"{spec.seed}:at:{key}".encode()).digest()
    # Guards checkpoint in coarse batches (one call per few hundred
    # steps), so small jobs only ever reach a handful of checkpoints;
    # draw the arm point from 1..4 so a selected fault actually fires
    # across the whole size spectrum, not just on the biggest searches.
    at = 1 + int.from_bytes(digest[:2], "big") % 4
    if spec.decide("kill", key):
        _governor._INJECT_HOOK = _KillAtCheckpoint(at)
    elif spec.decide("trip", key):
        _governor._INJECT_HOOK = _TripAtCheckpoint(at, spec.trip_limit)
    else:
        _governor._INJECT_HOOK = None
    return spec.stall_s if spec.decide("stall", key) else 0.0


def clear_job_chaos() -> None:
    """Drop any checkpoint hook :func:`apply_job_chaos` installed."""
    _governor._INJECT_HOOK = None


def store_fault_due(attempt: int) -> bool:
    """Whether the next store operation should fail with a transient error.

    Only first attempts (``attempt == 0``) ever fire, so an injected
    store fault always recovers through the store's own backoff-retry —
    the harness probes the retry path, it never makes the store lose
    data.  Each call draws on a fresh per-process operation counter.
    """
    spec = active_chaos()
    if spec is None or spec.store_error_rate <= 0.0 or attempt != 0:
        return False
    global _STORE_OPS
    _STORE_OPS += 1
    return spec.decide("store", f"op-{_STORE_OPS}")
