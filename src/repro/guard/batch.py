"""Batch front-end: run a procedure over many instances, isolating failures.

A workload sweep over synthesized services routinely hits one
pathological instance — a recursive SWS whose bounded search explodes,
or a malformed input that crashes a procedure.  :func:`batch_run` gives
each instance a fresh :class:`~repro.guard.Guard` built from a shared
:class:`~repro.guard.Budget`, converts guard trips to per-item UNKNOWN
outcomes, and catches per-item exceptions, so the sweep always finishes
and reports what happened to every instance::

    report = batch_run(nonempty, services, budget=Budget(deadline_s=1.0))
    for item in report.unknown:
        print(item.label, item.trip.describe())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.guard._governor import (
    Budget,
    CancelToken,
    Guard,
    GuardTrip,
    Trip,
    ensure_guard,
)


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one instance in a :func:`batch_run` sweep.

    ``status`` is ``"ok"`` (procedure completed), ``"unknown"`` (a guard
    tripped, or the procedure itself returned an UNKNOWN verdict — the
    trip, when one exists, is attached), or ``"error"`` (the procedure
    raised; the exception is attached, never re-raised).
    """

    index: int
    label: str
    status: str
    result: Any = None
    error: BaseException | None = field(default=None, compare=False)
    trip: Trip | None = None
    elapsed_s: float = field(default=0.0, compare=False)


@dataclass(frozen=True)
class BatchReport:
    """All per-instance outcomes of one sweep, in input order."""

    items: tuple[BatchItem, ...]

    @property
    def ok(self) -> tuple[BatchItem, ...]:
        return tuple(i for i in self.items if i.status == "ok")

    @property
    def unknown(self) -> tuple[BatchItem, ...]:
        return tuple(i for i in self.items if i.status == "unknown")

    @property
    def errors(self) -> tuple[BatchItem, ...]:
        return tuple(i for i in self.items if i.status == "error")

    def summary(self) -> str:
        return (
            f"{len(self.items)} instances: {len(self.ok)} ok, "
            f"{len(self.unknown)} unknown, {len(self.errors)} error"
        )


def _result_verdict_name(result: Any) -> str | None:
    verdict = getattr(result, "verdict", None)
    value = getattr(verdict, "value", None)
    return value if isinstance(value, str) else None


def _result_trip(result: Any) -> Trip | None:
    trip = getattr(result, "trip", None)
    return trip if isinstance(trip, Trip) else None


def batch_run(
    fn: Callable[..., Any],
    instances: Iterable[Any],
    *,
    budget: Budget | Guard | int | None = None,
    cancel_token: CancelToken | None = None,
    label: Callable[[Any], str] | None = None,
) -> BatchReport:
    """Apply ``fn`` to each instance under a fresh per-instance guard.

    ``budget`` (a :class:`Budget`, legacy ``int`` step budget, or a
    template :class:`Guard` whose budget and cancel token are copied)
    applies per instance — a tripped instance never eats the others'
    allowance.  ``cancel_token`` is shared across the whole sweep:
    cancelling aborts the current instance at its next checkpoint and
    marks the remaining ones cancelled without calling ``fn``.
    Instances may be bare arguments or ``(args_tuple, kwargs_dict)``
    pairs; ``label`` customises the per-item name (default: ``name``
    attribute or ``repr``).
    """
    template = ensure_guard(budget)
    spec = template.budget
    token = cancel_token if cancel_token is not None else template.cancel_token
    items: list[BatchItem] = []
    for index, instance in enumerate(instances):
        if isinstance(instance, tuple) and len(instance) == 2 and isinstance(
            instance[1], dict
        ):
            args: Sequence[Any] = instance[0]
            kwargs: dict[str, Any] = instance[1]
            subject = args[0] if args else instance
        else:
            args, kwargs, subject = (instance,), {}, instance
        if label is not None:
            name = label(subject)
        else:
            name = getattr(subject, "name", None) or f"instance[{index}]"
        if token is not None and token.cancelled():
            items.append(
                BatchItem(
                    index=index,
                    label=name,
                    status="unknown",
                    trip=Trip(
                        limit="cancelled",
                        site="batch_run",
                        steps=0,
                        elapsed_s=0.0,
                    ),
                )
            )
            continue
        guard = Guard(budget=spec, cancel_token=token)
        t0 = time.monotonic()
        try:
            with guard.activate():
                result = fn(*args, **kwargs)
        except GuardTrip as error:
            items.append(
                BatchItem(
                    index=index,
                    label=name,
                    status="unknown",
                    trip=error.trip,
                    elapsed_s=time.monotonic() - t0,
                )
            )
            continue
        except Exception as error:  # noqa: BLE001 - isolation is the point
            items.append(
                BatchItem(
                    index=index,
                    label=name,
                    status="error",
                    error=error,
                    elapsed_s=time.monotonic() - t0,
                )
            )
            continue
        status = "unknown" if _result_verdict_name(result) == "unknown" else "ok"
        items.append(
            BatchItem(
                index=index,
                label=name,
                status=status,
                result=result,
                trip=_result_trip(result) or guard.tripped,
                elapsed_s=time.monotonic() - t0,
            )
        )
    return BatchReport(items=tuple(items))
