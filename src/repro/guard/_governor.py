"""The resource governor behind :mod:`repro.guard`.

Theorem 4.1 and Table 2 leave several analysis/composition cells
undecidable, so every bounded procedure in the library must be able to
stop — on a step budget, a wall-clock deadline, a memory ceiling, or an
external cancellation — and degrade to a sound ``Verdict.UNKNOWN``
instead of hanging or crashing.  This module provides the machinery:

* :class:`Budget` — one declarative limit configuration shared by every
  procedure (replacing the old scattered per-procedure ``budget=``
  integers, which remain accepted as aliases).
* :class:`Guard` — a running governor enforcing a :class:`Budget` plus a
  :class:`CancelToken` through a cooperative :meth:`Guard.checkpoint`.
  Wall-clock and RSS checks are counter-sampled (every
  ``SAMPLE_EVERY`` fine-grained calls) so per-iteration cost stays at a
  few attribute reads; the compiled AFA/PL hot path additionally batches
  checkpoints every :data:`HOT_LOOP_MASK` + 1 BFS pops, preserving its
  measured speedup.
* :func:`checkpoint` / :func:`checkpoint_callable` — the call sites.
  With no active guard and no fault injection installed they are a
  no-op (one global read), mirroring the ``repro.obs`` disabled path.
* :func:`Guard.activate` — ambient (thread-local) activation, so one
  guard covers an entire call tree without threading a parameter
  through every helper.
* :func:`guarded` — the procedure-boundary decorator: converts a
  :class:`GuardTrip` escaping the procedure into the procedure's
  UNKNOWN-shaped result, carrying the partial-progress :class:`Trip`.

This module is import-light on purpose (stdlib + :mod:`repro.errors`),
so the lowest layers (``automata``, ``logic.sat``) can checkpoint
without import cycles; :class:`~repro.analysis.verdict.Answer` is
imported lazily at trip-conversion time only.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from typing import Any, Callable, Iterator, Mapping

from repro import metrics
from repro.errors import BudgetExceededError

try:  # pragma: no cover - resource is always present on POSIX
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None

#: Fine-grained checkpoint calls between wall-clock/RSS samples.
SAMPLE_EVERY = 64

#: The compiled BFS loops call back once per ``HOT_LOOP_MASK + 1`` pops.
HOT_LOOP_MASK = 255

#: Names a trip's ``limit`` field can take.
LIMITS = ("steps", "deadline", "memory", "cancelled")


def _rss_mb() -> float | None:
    """Resident-set high-water mark in MB, or ``None`` when unavailable.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; being a
    high-water mark, a tripped memory ceiling stays tripped for the
    process lifetime — exactly the conservative reading a ceiling wants.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak /= 1024.0
    return peak / 1024.0


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits; ``None`` means unlimited.

    * ``deadline_s`` — wall-clock seconds from guard start;
    * ``step_budget`` — cooperative checkpoint steps (BFS pops, SAT
      decisions, candidate trials — whatever the guarded loop counts);
    * ``memory_ceiling_mb`` — RSS high-water mark in megabytes.
    """

    deadline_s: float | None = None
    step_budget: int | None = None
    memory_ceiling_mb: float | None = None

    @property
    def unlimited(self) -> bool:
        """Whether no limit is set (checkpoints only serve cancellation)."""
        return (
            self.deadline_s is None
            and self.step_budget is None
            and self.memory_ceiling_mb is None
        )

    def limit_value(self, limit: str) -> float | int | None:
        """The configured value of the named limit (``None`` if unset)."""
        return {
            "steps": self.step_budget,
            "deadline": self.deadline_s,
            "memory": self.memory_ceiling_mb,
        }.get(limit)

    def as_dict(self) -> dict[str, float | int]:
        """The set limits as a plain dict (for JSONL job files and
        worker-process payloads); unset limits are omitted."""
        out: dict[str, float | int] = {}
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.step_budget is not None:
            out["step_budget"] = self.step_budget
        if self.memory_ceiling_mb is not None:
            out["memory_ceiling_mb"] = self.memory_ceiling_mb
        return out

    @classmethod
    def from_dict(cls, spec: "Mapping[str, Any] | None") -> "Budget":
        """Rebuild a :class:`Budget` from :meth:`as_dict` output."""
        spec = dict(spec or {})
        unknown = set(spec) - {"deadline_s", "step_budget", "memory_ceiling_mb"}
        if unknown:
            raise ValueError(f"unknown budget fields {sorted(unknown)}")
        return cls(**spec)


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    Hand the same token to a :class:`Guard` (or several) and call
    :meth:`cancel` from any thread; every guarded search trips at its
    next checkpoint.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"CancelToken(cancelled={self.cancelled()})"


@dataclass(frozen=True)
class Trip:
    """Partial-progress record of one resource exhaustion.

    ``limit`` names what tripped (one of :data:`LIMITS`); ``site`` is
    the checkpoint's span name (shared with :mod:`repro.obs`);
    ``steps``/``elapsed_s``/``frontier`` describe how far the search got
    (``frontier`` is the BFS queue length at the tripping checkpoint,
    when the loop reports one); ``budget_value`` is the tripped limit's
    configured value; ``injected`` marks trips forced by
    :mod:`repro.guard.inject` rather than a real exhaustion.
    """

    limit: str
    site: str
    steps: int
    elapsed_s: float
    frontier: int | None = None
    budget_value: float | int | None = None
    injected: bool = False

    def describe(self) -> str:
        """A one-line human-readable account of the exhaustion."""
        if self.limit == "cancelled":
            what = "cancelled"
        elif self.limit == "deadline":
            what = f"exceeded deadline of {self.budget_value}s"
        elif self.limit == "memory":
            what = f"exceeded memory ceiling of {self.budget_value} MB"
        else:
            what = f"exhausted step budget of {self.budget_value}"
        parts = [f"{self.site}: {what} after {self.steps} steps"]
        parts.append(f"({self.elapsed_s:.3f}s elapsed")
        if self.frontier is not None:
            parts.append(f", frontier {self.frontier}")
        parts.append(")")
        if self.injected:
            parts.append(" [injected]")
        return parts[0] + " " + "".join(parts[1:])


class GuardTrip(BudgetExceededError):
    """A guard checkpoint tripped a limit.

    Subclasses :class:`~repro.errors.BudgetExceededError` with the
    ``budget`` attribute populated (the tripped limit's configured
    value) and the limit name in the message, so the raising variants of
    guarded procedures satisfy the documented contract.  ``trip``
    carries the full :class:`Trip`.
    """

    def __init__(self, trip: Trip) -> None:
        budget = trip.budget_value
        super().__init__(
            trip.describe(),
            budget=int(budget) if isinstance(budget, (int, float)) else None,
            limit=trip.limit,
        )
        self.trip = trip


class Guard:
    """A running resource governor.

    ``Guard(deadline_s=..., step_budget=..., memory_ceiling_mb=...,
    cancel_token=...)`` — or ``Guard(budget=Budget(...))``.  Use either
    explicitly (``nonempty_pl(sws, guard=g)``) or ambiently::

        guard = Guard(deadline_s=2.0)
        with guard.activate():
            answer = nonempty_pl(sws)   # every inner loop checkpoints

    The guard is single-use per procedure family but reusable across
    sequential calls: steps accumulate and the deadline runs from the
    first checkpoint (or :meth:`activate`), which is what a whole-batch
    budget wants.  After a trip the guard stays tripped.
    """

    __slots__ = (
        "budget",
        "cancel_token",
        "_steps",
        "_calls",
        "_t0",
        "_tripped",
    )

    def __init__(
        self,
        deadline_s: float | None = None,
        step_budget: int | None = None,
        memory_ceiling_mb: float | None = None,
        cancel_token: CancelToken | None = None,
        budget: Budget | None = None,
    ) -> None:
        if budget is None:
            budget = Budget(
                deadline_s=deadline_s,
                step_budget=step_budget,
                memory_ceiling_mb=memory_ceiling_mb,
            )
        elif (
            deadline_s is not None
            or step_budget is not None
            or memory_ceiling_mb is not None
        ):
            raise ValueError("pass individual limits or budget=, not both")
        self.budget = budget
        self.cancel_token = cancel_token
        self._steps = 0
        self._calls = 0
        self._t0: float | None = None
        self._tripped: Trip | None = None

    # -- introspection -----------------------------------------------------------

    @property
    def steps(self) -> int:
        """Cooperative steps counted so far."""
        return self._steps

    @property
    def tripped(self) -> Trip | None:
        """The first trip, or ``None`` while within limits."""
        return self._tripped

    def elapsed_s(self) -> float:
        """Seconds since the guard started (0.0 before the first checkpoint)."""
        if self._t0 is None:
            return 0.0
        return time.monotonic() - self._t0

    def start(self) -> "Guard":
        """Start the deadline clock (idempotent; checkpoints auto-start)."""
        if self._t0 is None:
            self._t0 = time.monotonic()
        return self

    # -- the checkpoint ----------------------------------------------------------

    def checkpoint(
        self, site: str, n: int = 1, frontier: int | None = None
    ) -> None:
        """Account ``n`` steps of work at ``site``; raise on exhaustion.

        Cancellation and the step budget are checked on every call; the
        sampled checks (wall clock, RSS) run every :data:`SAMPLE_EVERY`
        fine-grained calls, or on every *batched* call (``n > 1`` — the
        compiled hot loops already space those hundreds of pops apart).
        """
        if self._t0 is None:
            self._t0 = time.monotonic()
        self._steps += n
        token = self.cancel_token
        if token is not None and token.cancelled():
            self._trip("cancelled", site, frontier)
        budget = self.budget
        if budget.step_budget is not None and self._steps > budget.step_budget:
            self._trip("steps", site, frontier)
        self._calls += 1
        if n == 1 and self._calls % SAMPLE_EVERY:
            return
        if (
            budget.deadline_s is not None
            and time.monotonic() - self._t0 > budget.deadline_s
        ):
            self._trip("deadline", site, frontier)
        if budget.memory_ceiling_mb is not None:
            rss = _rss_mb()
            if rss is not None and rss > budget.memory_ceiling_mb:
                self._trip("memory", site, frontier)

    def _trip(self, limit: str, site: str, frontier: int | None) -> None:
        trip = Trip(
            limit=limit,
            site=site,
            steps=self._steps,
            elapsed_s=self.elapsed_s(),
            frontier=frontier,
            budget_value=self.budget.limit_value(limit),
        )
        if self._tripped is None:
            self._tripped = trip
        metrics.counter("guard.trips", limit=limit).inc()
        raise GuardTrip(trip)

    # -- ambient activation ------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Guard"]:
        """Make this guard ambient for the current thread.

        Nested activations stack; :func:`checkpoint` consults every
        guard on the stack (outermost first), so an outer batch deadline
        still fires while an inner per-call budget is active.
        """
        self.start()
        stack = _stack()
        stack.append(self)
        try:
            yield self
        finally:
            stack.pop()

    def __repr__(self) -> str:
        return (
            f"Guard(budget={self.budget}, steps={self._steps}, "
            f"tripped={self._tripped and self._tripped.limit})"
        )


def ensure_guard(spec: "Guard | Budget | int | None") -> Guard:
    """Coerce a limit spec into a :class:`Guard`.

    Accepts a ready guard, a :class:`Budget`, a bare ``int`` (the legacy
    per-procedure step-budget kwarg), or ``None`` (unlimited).
    """
    if isinstance(spec, Guard):
        return spec
    if isinstance(spec, Budget):
        return Guard(budget=spec)
    if spec is None:
        return Guard()
    if isinstance(spec, int) and not isinstance(spec, bool):
        return Guard(step_budget=spec)
    raise TypeError(f"cannot build a Guard from {spec!r}")


# -- thread-local guard stack and the module-level checkpoint ---------------------

_local = threading.local()

#: Installed by :mod:`repro.guard.inject`; ``None`` means no injection.
_INJECT_HOOK: Callable[[str], None] | None = None

#: Installed by :mod:`repro.obs.progress` while progress telemetry is
#: enabled; ``None`` (the default) keeps the checkpoint's disabled path
#: at one extra global read.
_PROGRESS: Any | None = None


def snapshot_sink() -> Callable[..., None] | None:
    """The thread-ambient search-state sink, or ``None`` (the default)."""
    return getattr(_local, "snapshot_sink", None)


class capture_search_state:
    """Context manager installing a search-state *sink* for this thread.

    While active, the checkpoint closures handed to the compiled BFS
    loops call ``sink(site, n, queue, visited)`` with the *live* queue
    and parents objects before consulting the guards.  A sink that
    simply holds the references therefore sees the loop's final state —
    whether the search completes or a guard trips mid-way — which is
    what :mod:`repro.delta` snapshots to resume a budget-tripped search
    instead of restarting it.
    """

    def __init__(self, sink: Callable[..., None]) -> None:
        self._sink = sink
        self._prev: Callable[..., None] | None = None

    def __enter__(self) -> "capture_search_state":
        self._prev = getattr(_local, "snapshot_sink", None)
        _local.snapshot_sink = self._sink
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _local.snapshot_sink = self._prev


def _stack() -> list[Guard]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_guard() -> Guard | None:
    """The innermost ambient guard on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def checkpoint(
    site: str,
    n: int = 1,
    frontier: int | None = None,
    visited: int | None = None,
    depth: int | None = None,
) -> None:
    """Cooperative checkpoint: consult fault injection and ambient guards.

    The no-guard, no-injection, no-progress path is three global reads —
    cheap enough for per-iteration use in the interpreted loops.  Hot
    compiled loops should use :func:`checkpoint_callable` and batch
    instead.  ``visited``/``depth`` are progress-telemetry enrichments
    (seen-set size, search depth) that loops report where one exists;
    guards ignore them.

    A trip raised here — by a real guard or injected — is first noted to
    the progress tracker, so a tripped solve's last ``progress`` event
    always matches the :class:`Trip` partial-progress detail.
    """
    progress = _PROGRESS
    hook = _INJECT_HOOK
    try:
        if hook is not None:
            hook(site)
        stack = getattr(_local, "stack", None)
        if stack:
            for guard in stack:
                guard.checkpoint(site, n, frontier)
    except GuardTrip as error:
        if progress is not None:
            progress.note_trip(error.trip)
        raise
    if progress is not None:
        progress.note(site, n, frontier, visited, depth)


def _noop_checkpoint(
    n: int = 0, queue: Any = None, visited: Any = None, depth: int | None = None
) -> None:
    return None


def checkpoint_callable(site: str) -> Callable[..., None]:
    """A per-search checkpoint closure for the compiled BFS hot loops.

    The generated searchers call ``ckpt(n, queue)`` — optionally
    ``ckpt(n, queue, seen)`` — with the cumulative pop count every
    ``HOT_LOOP_MASK + 1`` pops (and once on entry, so tiny searches
    still hit at least one checkpoint).  When no guard is ambient, no
    fault is injected, and progress telemetry is off this returns a
    shared no-op — fetched once per search, so the loop body's only
    overhead is the masked counter test.
    """
    if (
        _INJECT_HOOK is None
        and _PROGRESS is None
        and not getattr(_local, "stack", None)
        and getattr(_local, "snapshot_sink", None) is None
    ):
        return _noop_checkpoint
    last = 0

    def ckpt(
        n: int,
        queue: Any = None,
        visited: Any = None,
        depth: int | None = None,
    ) -> None:
        nonlocal last
        delta = n - last
        last = n
        sink = getattr(_local, "snapshot_sink", None)
        if sink is not None:
            # Before the guards: a trip must not lose the captured refs.
            sink(site, n, queue, visited)
        checkpoint(
            site,
            delta,
            None if queue is None else len(queue),
            None if visited is None else len(visited),
            depth,
        )

    return ckpt


# -- the procedure boundary -------------------------------------------------------


def _unknown_answer(error: GuardTrip) -> Any:
    from repro.analysis.verdict import Answer

    return Answer.unknown(detail=error.trip.describe(), trip=error.trip)


def guarded(
    on_trip: Callable[[GuardTrip], Any] | None = None,
) -> Callable[[Callable], Callable]:
    """Decorator marking a procedure as a guard *boundary*.

    The wrapped procedure gains a keyword-only ``guard=`` parameter
    (a :class:`Guard`, a :class:`Budget`, or a legacy ``int`` step
    budget) activated for the call's extent; a :class:`GuardTrip`
    escaping the body — from an explicit guard, an ambient one, a
    procedure-local legacy budget, or fault injection — is converted by
    ``on_trip`` into the procedure's UNKNOWN-shaped result instead of
    propagating.  Default conversion builds
    ``Answer(Verdict.UNKNOWN)`` carrying the trip's partial progress.

    Stack *under* :func:`repro.obs.traced` so the span records the
    converted ``verdict=unknown`` result.
    """
    handler = on_trip if on_trip is not None else _unknown_answer

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args: Any, guard: Any = None, **kwargs: Any) -> Any:
            try:
                if guard is None:
                    return fn(*args, **kwargs)
                with ensure_guard(guard).activate():
                    return fn(*args, **kwargs)
            except GuardTrip as error:
                return handler(error)

        return wrapper

    return decorate


# -- the checkpoint-site registry -------------------------------------------------


@dataclass(frozen=True)
class GuardedSpan:
    """One registered checkpoint site.

    ``site`` doubles as the :mod:`repro.obs` span name the fault
    injector keys on; ``where`` names the loop; ``covers`` cites the
    paper result whose procedure the loop realizes; ``raising_only``
    marks sites whose direct public callers raise :class:`GuardTrip`
    (a :class:`~repro.errors.BudgetExceededError`) rather than
    converting to UNKNOWN — they still convert when reached through a
    :func:`guarded` procedure.
    """

    site: str
    where: str
    covers: str
    raising_only: bool = False


GUARDED_SPANS: dict[str, GuardedSpan] = {}


def register_span(
    site: str, where: str, covers: str, raising_only: bool = False
) -> None:
    """Register a checkpoint site (called at import by guarded modules)."""
    GUARDED_SPANS[site] = GuardedSpan(site, where, covers, raising_only)


def iter_guarded_spans() -> list[GuardedSpan]:
    """All registered checkpoint sites, sorted by name."""
    return [GUARDED_SPANS[name] for name in sorted(GUARDED_SPANS)]
