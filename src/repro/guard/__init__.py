"""repro.guard — unified resource governor and fault-injection harness.

Public surface:

* :class:`Budget`, :class:`Guard`, :class:`CancelToken` — declare limits
  and enforce them through cooperative checkpoints in every search loop.
* :class:`Trip`, :class:`GuardTrip` — partial-progress record of an
  exhaustion, and the (internally caught) exception that carries it.
* :func:`checkpoint`, :func:`checkpoint_callable`, :func:`current_guard`,
  :func:`ensure_guard`, :func:`guarded` — instrumentation hooks for
  procedure authors.
* :data:`GUARDED_SPANS` / :func:`iter_guarded_spans` — registry of every
  checkpoint site (span names shared with :mod:`repro.obs`).
* :mod:`repro.guard.inject` — deterministic fault injection by span name.
* :func:`batch_run` — per-instance isolation for workload sweeps.

See ``docs/ROBUSTNESS.md`` for the checkpoint placement map and usage.
"""

from repro.guard._governor import (
    GUARDED_SPANS,
    LIMITS,
    Budget,
    CancelToken,
    Guard,
    GuardedSpan,
    GuardTrip,
    Trip,
    capture_search_state,
    checkpoint,
    checkpoint_callable,
    current_guard,
    ensure_guard,
    guarded,
    iter_guarded_spans,
    register_span,
    snapshot_sink,
)
from repro.guard.batch import BatchItem, BatchReport, batch_run

__all__ = [
    "Budget",
    "CancelToken",
    "Guard",
    "GuardTrip",
    "GuardedSpan",
    "GUARDED_SPANS",
    "LIMITS",
    "Trip",
    "BatchItem",
    "BatchReport",
    "batch_run",
    "capture_search_state",
    "checkpoint",
    "checkpoint_callable",
    "current_guard",
    "ensure_guard",
    "guarded",
    "iter_guarded_spans",
    "register_span",
    "snapshot_sink",
]
