"""Prior Web-service models and their SWS translations (Section 3).

The paper's Section 3 shows that FSA and transducer abstractions embed into
SWS classes via pairs of functions (fτ, fI): fτ maps a service ω to an SWS
τ, fI maps ω-inputs to τ-inputs, and ``τ(D, fI(I)) = ω(I, D)``.

* :mod:`~repro.models.roman` — the Roman model (services as DFAs/NFAs over
  action alphabets) → SWS(PL, PL);
* :mod:`~repro.models.peer` — the peer model of Deutsch et al. (data-driven
  transducers with state relations) → SWS(FO, FO);
* :mod:`~repro.models.guarded` — guarded automata (Mealy machines with
  propositional guards, the conversation-protocol abstraction) →
  SWS(PL, PL);
* :mod:`~repro.models.colombo` — a Colombo-style guarded transition system
  over world states → peer → SWS(FO, FO), the paper's "Other models"
  chain.
"""

from repro.models.roman import RomanService, encode_roman_word, roman_to_sws
from repro.models.peer import Peer, encode_peer_prefix, peer_to_sws
from repro.models.guarded import GuardedAutomaton, guarded_to_sws
from repro.models.colombo import (
    ColomboService,
    ColomboTransition,
    colombo_to_peer,
)

__all__ = [
    "ColomboService",
    "ColomboTransition",
    "GuardedAutomaton",
    "Peer",
    "RomanService",
    "colombo_to_peer",
    "encode_peer_prefix",
    "encode_roman_word",
    "guarded_to_sws",
    "peer_to_sws",
    "roman_to_sws",
]
