"""A Colombo-style service model and its embedding (Section 3, "Other models").

The paper notes: "As observed in [13], services supported by the Colombo
model [5] or expressed as guarded automata of [15] can also be expressed as
peers of [13].  As a result, one can also use SWS(FO, FO) to study the
behaviors of the Colombo services."

Colombo models a service as a guarded transition system over *world
states* of a local database: each transition fires when its FO guard holds
against the current world state and input, and executes an *atomic
process* that modifies state relations.  This module implements a
single-service core of that model and the two-step embedding the paper
describes:

    Colombo service  →  peer (state relation + FO rules)  →  SWS(FO, FO)

The world state is folded into the peer's state relation with a
control-state tag column (the classical product encoding); the tests
verify the full chain against the Colombo service's direct semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.database import Database
from repro.data.relation import Row
from repro.data.schema import DatabaseSchema
from repro.errors import SWSDefinitionError
from repro.logic import fo
from repro.logic.cq import Atom
from repro.logic.terms import Constant, Variable
from repro.models.peer import INPUT_RELATION, Peer, STATE_RELATION


@dataclass(frozen=True)
class ColomboTransition:
    """A guarded transition ``q --[guard / process]--> q'``.

    ``guard`` is a closed-or-input-parameterized FO condition over the
    database, the current world-state relation ``World`` and the input
    ``InP``; ``process`` is an FO query computing the *next* world-state
    relation from the same.  All world rows share the service's fixed
    ``arity``.
    """

    source: str
    target: str
    guard: fo.FOFormula
    process: fo.FOQuery


@dataclass(frozen=True)
class ColomboService:
    """A deterministic Colombo-style service.

    ``states`` are control states, transitions are tried in order (first
    enabled guard wins — determinism by priority, a standard Colombo
    restriction), and a step with no enabled transition leaves control and
    world state unchanged.  The service's observable output at each step
    is its world state at accepting control states, else empty.
    """

    states: tuple[str, ...]
    initial: str
    accepting: frozenset[str]
    transitions: tuple[ColomboTransition, ...]
    db_schema: DatabaseSchema
    arity: int
    name: str = "colombo"

    def __post_init__(self) -> None:
        state_set = set(self.states)
        if self.initial not in state_set or not self.accepting <= state_set:
            raise SWSDefinitionError("initial/accepting states must be states")
        for transition in self.transitions:
            if transition.source not in state_set or transition.target not in state_set:
                raise SWSDefinitionError("transition uses unknown state")
            if transition.process.arity != self.arity:
                raise SWSDefinitionError("process arity must match the service")

    # -- direct semantics ---------------------------------------------------------

    def _env(self, database: Database, world: frozenset[Row], message: frozenset[Row]):
        from repro.data.relation import Relation
        from repro.data.schema import RelationSchema

        columns = tuple(f"c{i}" for i in range(self.arity))
        env = {name: database[name] for name in database}
        env["World"] = Relation(RelationSchema("World", columns), world)
        env[INPUT_RELATION] = Relation(
            RelationSchema(INPUT_RELATION, columns), message
        )
        return env

    def run(
        self, database: Database, inputs: Sequence[frozenset[Row]]
    ) -> list[frozenset[Row]]:
        """Outputs at every step (world state at accepting control states)."""
        control = self.initial
        world: frozenset[Row] = frozenset()
        outputs: list[frozenset[Row]] = []
        for message in inputs:
            env = self._env(database, world, message)
            for transition in self.transitions:
                if transition.source != control:
                    continue
                if transition.guard._holds(env, {}, sorted(
                    fo.active_domain(env, transition.guard), key=repr
                )):
                    world = transition.process.evaluate(env)
                    control = transition.target
                    break
            outputs.append(world if control in self.accepting else frozenset())
        return outputs


def _retag(formula: fo.FOFormula, control: str) -> fo.FOFormula:
    """Rewrite ``World(t̄)`` atoms onto the tagged peer state relation.

    The peer's state relation holds rows ``(control_state, world_row...)``
    plus one control row ``(control_state, ⊥, ..., ⊥)`` so the control
    state survives an empty world.
    """
    if isinstance(formula, fo.RelAtom):
        atom = formula.atom
        if atom.relation == "World":
            return fo.RelAtom(
                Atom(STATE_RELATION, (Constant(f"w@{control}"),) + tuple(atom.terms))
            )
        return formula
    if isinstance(formula, fo.Equals):
        return formula
    if isinstance(formula, fo.NotF):
        return fo.NotF(_retag(formula.operand, control))
    if isinstance(formula, fo.AndF):
        return fo.AndF(_retag(op, control) for op in formula.operands)
    if isinstance(formula, fo.OrF):
        return fo.OrF(_retag(op, control) for op in formula.operands)
    if isinstance(formula, fo.Exists):
        return fo.Exists(formula.variables, _retag(formula.body, control))
    if isinstance(formula, fo.Forall):
        return fo.Forall(formula.variables, _retag(formula.body, control))
    raise SWSDefinitionError(f"unknown formula node {type(formula).__name__}")


CONTROL_MARK = "ctl"
FILLER = "·"


def colombo_to_peer(service: ColomboService) -> Peer:
    """Fold control state and world state into one peer state relation.

    Encoding: the peer state holds one control row
    ``('ctl@<q>', ·, ..., ·)`` plus world rows ``('w@<q>', row...)``; the
    peer's arity is the service arity + 1.  The step rule cases over the
    control rows, applying the highest-priority enabled transition's
    process (guard conjoined, earlier guards negated) or copying the state
    when nothing fires.  The output rule projects the world rows of
    accepting control states.
    """
    arity = service.arity
    kind = Variable("kd")
    payload = tuple(Variable(f"p{i}") for i in range(arity))
    in_payload = tuple(Variable(f"i{i}") for i in range(1 + arity))

    def control_row(state: str) -> fo.FOFormula:
        fillers = [fo.Equals(p, Constant(FILLER)) for p in payload]
        return fo.AndF([fo.Equals(kind, Constant(f"{CONTROL_MARK}@{state}")), *fillers])

    def at_control(state: str) -> fo.FOFormula:
        anon = tuple(Variable(f"a{i}") for i in range(arity))
        return fo.Exists(
            anon,
            fo.RelAtom(
                Atom(STATE_RELATION, (Constant(f"{CONTROL_MARK}@{state}"),) + anon)
            ),
        )

    def initial_control() -> fo.FOFormula:
        """True when no control row exists yet (step 1)."""
        anon = tuple(Variable(f"b{i}") for i in range(arity + 1))
        return fo.NotF(
            fo.Exists(anon, fo.RelAtom(Atom(STATE_RELATION, anon)))
        )

    # The peer input is the Colombo input padded with a leading filler
    # column so arities line up; strip it when embedding guards/processes.
    def strip_input(formula: fo.FOFormula) -> fo.FOFormula:
        if isinstance(formula, fo.RelAtom):
            atom = formula.atom
            if atom.relation == INPUT_RELATION:
                return fo.RelAtom(
                    Atom(INPUT_RELATION, (Constant(FILLER),) + tuple(atom.terms))
                )
            return formula
        if isinstance(formula, fo.Equals):
            return formula
        if isinstance(formula, fo.NotF):
            return fo.NotF(strip_input(formula.operand))
        if isinstance(formula, fo.AndF):
            return fo.AndF(strip_input(op) for op in formula.operands)
        if isinstance(formula, fo.OrF):
            return fo.OrF(strip_input(op) for op in formula.operands)
        if isinstance(formula, (fo.Exists, fo.Forall)):
            cls = type(formula)
            return cls(formula.variables, strip_input(formula.body))
        raise SWSDefinitionError(f"unknown node {type(formula).__name__}")

    disjuncts: list[fo.FOFormula] = []
    for state in service.states:
        outgoing = [t for t in service.transitions if t.source == state]
        here: fo.FOFormula = at_control(state)
        if state == service.initial:
            here = fo.OrF([here, initial_control()])
        blockers: list[fo.FOFormula] = []
        for transition in outgoing:
            guard = strip_input(_retag(transition.guard, state))
            enabled = fo.AndF([here, *blockers, guard])
            process_body = strip_input(
                _retag(transition.process.formula, state)
            )
            head_map = dict(zip(transition.process.head, payload))
            process_body = _rename(process_body, head_map)
            fired_world = fo.AndF(
                [
                    fo.Equals(kind, Constant(f"w@{transition.target}")),
                    process_body,
                ]
            )
            fired_control = control_row(transition.target)
            disjuncts.append(fo.AndF([enabled, fo.OrF([fired_world, fired_control])]))
            blockers.append(fo.NotF(guard))
        # No transition fires: copy world rows and control row.
        stay_world = fo.AndF(
            [
                fo.Equals(kind, Constant(f"w@{state}")),
                fo.RelAtom(
                    Atom(STATE_RELATION, (Constant(f"w@{state}"),) + payload)
                ),
            ]
        )
        stay_control = control_row(state)
        disjuncts.append(
            fo.AndF([here, *blockers, fo.OrF([stay_world, stay_control])])
        )
    state_rule = fo.FOQuery((kind,) + payload, fo.OrF(disjuncts), "colombo_step")

    out_head = tuple(Variable(f"o{i}") for i in range(arity + 1))
    out_disjuncts = []
    for state in sorted(service.accepting):
        out_disjuncts.append(
            fo.AndF(
                [
                    fo.Equals(out_head[0], Constant(FILLER)),
                    fo.RelAtom(
                        Atom(
                            STATE_RELATION,
                            (Constant(f"w@{state}"),) + out_head[1:],
                        )
                    ),
                ]
            )
        )
    output_rule = fo.FOQuery(
        out_head,
        fo.OrF(out_disjuncts) if out_disjuncts else fo.OrF([]),
        "colombo_out",
    )
    return Peer(
        service.db_schema,
        arity + 1,
        state_rule,
        output_rule,
        name=f"peer_{service.name}",
    )


def _rename(formula: fo.FOFormula, mapping) -> fo.FOFormula:
    from repro.models.peer import _rename_free

    return _rename_free(formula, mapping)


def encode_colombo_inputs(
    inputs: Sequence[frozenset[Row]], arity: int
) -> list[frozenset[Row]]:
    """Pad Colombo messages with the filler column the peer encoding adds."""
    return [
        frozenset((FILLER,) + row for row in message) for message in inputs
    ]


def decode_colombo_outputs(rows: frozenset[Row]) -> frozenset[Row]:
    """Strip the filler column from peer outputs."""
    return frozenset(row[1:] for row in rows)
