"""Guarded automata (conversation protocols) and their SWS translation.

Fu, Bultan and Su's guarded automata extend Mealy machines with transition
guards; the paper notes (end of Section 3) that such services — like the
Colombo model — embed into the peer model and hence into SWS(FO, FO).  For
the propositional fragment (guards over message variables, no data), the
embedding factors through SWS(PL, PL) exactly like the Roman translation,
with guards replacing exact-letter tests; this is the translation
implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import SWSDefinitionError
from repro.logic import pl

#: Delimiter variable marking the end of a conversation.
DELIMITER_VARIABLE = "hash"


@dataclass(frozen=True)
class GuardedAutomaton:
    """A guarded automaton over propositional message variables.

    ``transitions`` maps a state to its outgoing (guard, target) pairs; a
    message (truth assignment over ``variables``) may satisfy several
    guards — the automaton is nondeterministic, accepting a conversation
    iff some run ends in a final state.
    """

    states: tuple[str, ...]
    variables: tuple[str, ...]
    transitions: dict[str, tuple[tuple[pl.Formula, str], ...]]
    initial: str
    finals: frozenset[str]
    name: str = "guarded"

    def __post_init__(self) -> None:
        state_set = set(self.states)
        if self.initial not in state_set or not self.finals <= state_set:
            raise SWSDefinitionError("initial/final states must be states")
        if DELIMITER_VARIABLE in self.variables:
            raise SWSDefinitionError(
                f"{DELIMITER_VARIABLE!r} is reserved for the translation"
            )
        for state, moves in self.transitions.items():
            if state not in state_set:
                raise SWSDefinitionError(f"transitions from unknown {state!r}")
            for guard, target in moves:
                if target not in state_set:
                    raise SWSDefinitionError(f"transition to unknown {target!r}")
                stray = guard.variables() - set(self.variables)
                if stray:
                    raise SWSDefinitionError(
                        f"guard mentions unknown variables {sorted(stray)}"
                    )

    def accepts(self, conversation: Sequence[frozenset[str]]) -> bool:
        """Whether some guarded run over the conversation ends final."""
        current = {self.initial}
        for message in conversation:
            nxt: set[str] = set()
            for state in current:
                for guard, target in self.transitions.get(state, ()):
                    if guard.evaluate(message):
                        nxt.add(target)
            current = nxt
            if not current:
                return False
        return bool(current & self.finals)


def guarded_to_sws(automaton: GuardedAutomaton) -> SWS:
    """Translate a guarded automaton into SWS(PL, PL).

    Structure mirrors the Roman translation: guards become transition
    formulas (conjoined with ¬#), final states gain a delimiter edge to a
    fresh ``q_f``, synthesis is disjunctive, and a fresh start state
    replicates the initial state (whose original may have incoming edges).
    """
    not_delim = pl.Not(pl.Var(DELIMITER_VARIABLE))
    state_name = {s: f"g_{s}" for s in automaton.states}
    sws_states = ["g_start"] + [state_name[s] for s in automaton.states] + ["g_f"]
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}

    def rule_for(state: str) -> tuple[TransitionRule, SynthesisRule]:
        targets: list[tuple[str, pl.Formula]] = []
        for guard, target in automaton.transitions.get(state, ()):
            targets.append((state_name[target], (guard & not_delim).simplify()))
        if state in automaton.finals:
            targets.append(("g_f", pl.Var(DELIMITER_VARIABLE)))
        if not targets:
            return TransitionRule(), SynthesisRule(pl.FALSE)
        registers = pl.disjoin(pl.Var(f"A{i + 1}") for i in range(len(targets)))
        return TransitionRule(targets), SynthesisRule(registers)

    transitions["g_start"], synthesis["g_start"] = rule_for(automaton.initial)
    for state in automaton.states:
        transitions[state_name[state]], synthesis[state_name[state]] = rule_for(state)
    transitions["g_f"] = TransitionRule()
    synthesis["g_f"] = SynthesisRule(pl.Var("Msg"))
    return SWS(
        sws_states,
        "g_start",
        transitions,
        synthesis,
        kind=SWSKind.PL,
        name=f"sws_{automaton.name}",
    )


def encode_conversation(
    conversation: Iterable[frozenset[str]],
) -> list[frozenset[str]]:
    """fI: append the delimiter message to a conversation."""
    encoded = [frozenset(message) for message in conversation]
    encoded.append(frozenset({DELIMITER_VARIABLE}))
    return encoded
