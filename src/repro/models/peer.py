"""The peer model of Deutsch et al. and its SWS(FO, FO) translation.

Section 3 characterizes a peer by a fixed local database, state relations
tracking updates, user inputs, action relations and queues, with FO rules
producing actions/updates/outputs at each step.  This module implements the
single-peer core of that model (state relation + FO step/output rules; the
multi-peer queue machinery of [13] is orthogonal to the translation the
paper sketches) and the translation:

* the SWS has three states — ``q0 → (qs, φ), (qf, φ)``,
  ``qs → (qs, φ), (qf, φ)``, ``qf`` final — exactly the shape the paper
  gives;
* one FO query ``φ`` combines the peer's rules: it computes the successor
  state relation from the register (which encodes the current state
  relation) and the current input, tagged into the single input/register
  schema by a leading ``kind`` column, plus a sentinel ``live`` row so the
  empty peer state does not trip the empty-register cutoff of rule (1);
* ``qf``'s synthesis fires exactly on the session delimiter ``#`` and
  emits the peer's output for the state the register carries.

fI encodes a peer input prefix ``I1..Ij`` as the tagged messages followed
by the delimiter; then ``τ(D, fI(I, j))`` equals the peer's step-``j``
output for every prefix — the per-step correspondence the paper states
(its concatenated encoding ``I1,#,I1,I2,#,...`` replays the same prefixes
back to back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation, Row
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import SWSDefinitionError
from repro.logic import fo
from repro.logic.cq import Atom
from repro.logic.terms import Constant, Variable

#: kind-column tags of the unified input/register schema.
KIND_DATA = "data"
KIND_STATE = "state"
KIND_LIVE = "live"
KIND_DELIM = "#"

#: Filler value for payload positions of sentinel/delimiter rows.
FILLER = "·"

#: Reserved relation names peer rules are written against.
STATE_RELATION = "State"
INPUT_RELATION = "InP"


@dataclass(frozen=True)
class Peer:
    """A single data-driven peer (transducer).

    ``arity`` is the common width of the state relation and of input
    messages.  ``state_rule`` computes the next state relation from
    ``State`` (the current state), ``InP`` (the current input message) and
    the database relations; ``output_rule`` computes the step output from
    ``State`` (the *post*-step state) and the database.
    """

    db_schema: DatabaseSchema
    arity: int
    state_rule: fo.FOQuery
    output_rule: fo.FOQuery
    name: str = "peer"

    def __post_init__(self) -> None:
        if self.state_rule.arity != self.arity:
            raise SWSDefinitionError("state rule arity must match the peer arity")
        if self.output_rule.arity != self.arity:
            raise SWSDefinitionError("output rule arity must match the peer arity")

    def _env(
        self, database: Database, state: frozenset[Row], message: frozenset[Row]
    ) -> dict[str, Relation]:
        columns = tuple(f"c{i}" for i in range(self.arity))
        env: dict[str, Relation] = {name: database[name] for name in database}
        env[STATE_RELATION] = Relation(
            RelationSchema(STATE_RELATION, columns), state
        )
        env[INPUT_RELATION] = Relation(
            RelationSchema(INPUT_RELATION, columns), message
        )
        return env

    def run(
        self, database: Database, inputs: Sequence[frozenset[Row]]
    ) -> list[frozenset[Row]]:
        """Outputs at every step: ``O_j = out(update(S_{j-1}, I_j))``."""
        state: frozenset[Row] = frozenset()
        outputs: list[frozenset[Row]] = []
        for message in inputs:
            state = self.state_rule.evaluate(self._env(database, state, message))
            outputs.append(
                self.output_rule.evaluate(
                    self._env(database, state, frozenset())
                )
            )
        return outputs


def _retag_formula(formula: fo.FOFormula, kind_by_relation: dict[str, tuple[str, str]]) -> fo.FOFormula:
    """Rewrite ``State``/``InP`` atoms onto the tagged unified schema.

    ``kind_by_relation`` maps a rule-level relation to ``(register, kind)``
    — e.g. ``State ↦ (Msg, 'state')`` — and an atom ``State(t̄)`` becomes
    ``Msg('state', t̄)``.
    """
    if isinstance(formula, fo.RelAtom):
        atom = formula.atom
        if atom.relation in kind_by_relation:
            register, kind = kind_by_relation[atom.relation]
            return fo.RelAtom(
                Atom(register, (Constant(kind),) + tuple(atom.terms))
            )
        return formula
    if isinstance(formula, fo.Equals):
        return formula
    if isinstance(formula, fo.NotF):
        return fo.NotF(_retag_formula(formula.operand, kind_by_relation))
    if isinstance(formula, fo.AndF):
        return fo.AndF(
            _retag_formula(op, kind_by_relation) for op in formula.operands
        )
    if isinstance(formula, fo.OrF):
        return fo.OrF(
            _retag_formula(op, kind_by_relation) for op in formula.operands
        )
    if isinstance(formula, fo.Exists):
        return fo.Exists(
            formula.variables, _retag_formula(formula.body, kind_by_relation)
        )
    if isinstance(formula, fo.Forall):
        return fo.Forall(
            formula.variables, _retag_formula(formula.body, kind_by_relation)
        )
    raise SWSDefinitionError(f"unknown formula node {type(formula).__name__}")


def peer_to_sws(peer: Peer) -> SWS:
    """fτ: translate a peer into SWS(FO, FO) (the paper's 3-state shape)."""
    retag = {
        STATE_RELATION: (MSG, KIND_STATE),
        INPUT_RELATION: ("In", KIND_DATA),
    }
    # Internal variable names are deliberately obscure: the peer rule's own
    # head variables are renamed onto them, and renaming the *body first*
    # keeps a peer head variable that happens to share a name with the
    # translation's variables from being captured.
    kind = Variable("__peer_kind")
    payload = tuple(Variable(f"__peer_p{i}") for i in range(peer.arity))

    # φ: next tagged register = tagged next state ∪ {('live', ·, ..., ·)}.
    head_map = dict(zip(peer.state_rule.head, payload))
    state_body = _rename_free(
        _retag_formula(peer.state_rule.formula, retag), head_map
    )
    next_state = fo.AndF(
        [fo.Equals(kind, Constant(KIND_STATE)), state_body]
    )
    fillers = [fo.Equals(p, Constant(FILLER)) for p in payload]
    sentinel = fo.AndF([fo.Equals(kind, Constant(KIND_LIVE)), *fillers])
    phi = fo.FOQuery((kind,) + payload, fo.OrF([next_state, sentinel]), "phi")

    # ψf: on a delimiter message, emit the peer's output for the carried
    # state (register rows tagged 'state').
    delim_payload = tuple(Variable(f"__peer_d{i}") for i in range(peer.arity))
    saw_delimiter = fo.Exists(
        delim_payload,
        fo.RelAtom(Atom("In", (Constant(KIND_DELIM),) + delim_payload)),
    )
    output_body = _retag_formula(peer.output_rule.formula, {STATE_RELATION: (MSG, KIND_STATE)})
    out_head = tuple(Variable(f"__peer_o{i}") for i in range(peer.arity))
    output_body = _rename_free(output_body, dict(zip(peer.output_rule.head, out_head)))
    psi_f = fo.FOQuery(out_head, fo.AndF([saw_delimiter, output_body]), "psi_f")

    # Internal synthesis: union of the two successor registers.
    union_head = tuple(Variable(f"__peer_u{i}") for i in range(peer.arity))
    union = fo.FOQuery(
        union_head,
        fo.OrF(
            [fo.atom("A1", *union_head), fo.atom("A2", *union_head)]
        ),
        "psi_union",
    )
    transitions = {
        "q0": TransitionRule([("qs", phi), ("qf", phi)]),
        "qs": TransitionRule([("qs", phi), ("qf", phi)]),
        "qf": TransitionRule(),
    }
    synthesis = {
        "q0": SynthesisRule(union),
        "qs": SynthesisRule(union),
        "qf": SynthesisRule(psi_f),
    }
    payload_schema = RelationSchema(
        "Rin", ("kind",) + tuple(f"c{i}" for i in range(peer.arity))
    )
    return SWS(
        ("q0", "qs", "qf"),
        "q0",
        transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=peer.db_schema,
        input_schema=payload_schema,
        output_arity=peer.arity,
        name=f"sws_{peer.name}",
    )


def _rename_free(formula: fo.FOFormula, mapping: dict[Variable, Variable]) -> fo.FOFormula:
    """Rename free variables of a formula (bound variables untouched)."""
    if isinstance(formula, fo.RelAtom):
        atom = formula.atom
        terms = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t
            for t in atom.terms
        )
        return fo.RelAtom(Atom(atom.relation, terms))
    if isinstance(formula, fo.Equals):
        left = mapping.get(formula.left, formula.left) if isinstance(formula.left, Variable) else formula.left
        right = mapping.get(formula.right, formula.right) if isinstance(formula.right, Variable) else formula.right
        return fo.Equals(left, right)
    if isinstance(formula, fo.NotF):
        return fo.NotF(_rename_free(formula.operand, mapping))
    if isinstance(formula, fo.AndF):
        return fo.AndF(_rename_free(op, mapping) for op in formula.operands)
    if isinstance(formula, fo.OrF):
        return fo.OrF(_rename_free(op, mapping) for op in formula.operands)
    if isinstance(formula, (fo.Exists, fo.Forall)):
        inner = {
            k: v for k, v in mapping.items() if k not in formula.variables
        }
        cls = type(formula)
        return cls(formula.variables, _rename_free(formula.body, inner))
    raise SWSDefinitionError(f"unknown formula node {type(formula).__name__}")


def encode_peer_prefix(
    inputs: Sequence[frozenset[Row]], steps: int, arity: int
) -> InputSequence:
    """fI for one step: the tagged prefix ``I1..Ij`` plus the delimiter."""
    payload_schema = RelationSchema(
        "Rin", ("kind",) + tuple(f"c{i}" for i in range(arity))
    )
    messages = [
        [(KIND_DATA,) + row for row in message]
        for message in list(inputs)[:steps]
    ]
    messages.append([(KIND_DELIM,) + (FILLER,) * arity])
    return InputSequence(payload_schema, messages)
