"""The Roman model and its SWS(PL, PL) translation (Section 3).

A Roman-model service is a DFA (NFA for composite services) over an
alphabet of *actions*; it accepts an action string iff the string drives it
to a final state — "the service legally terminates".

The paper's translation fτ builds an SWS(PL, PL) service with the DFA's
states plus one fresh final state ``qf``:

* the transition rule of state ``q`` collects all DFA transitions of ``q``:
  ``q → (q1, φ_{a1}), ..., (qk, φ_{ak})`` where ``φ_a`` checks that the
  current input message *is* the letter ``a``; a DFA-final ``q``
  additionally targets ``(qf, φ_#)``, with ``#`` a fresh session delimiter;
* ``σ(qf): Act(qf) ← Msg`` and internal synthesis is the disjunction of
  the successor registers.

fI augments a string with per-letter truth assignments and appends ``#``;
then ``ω accepts w  ⟺  τ accepts fI(w)`` over the empty database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.automata.dfa import DEAD, DFA
from repro.automata.nfa import NFA
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import SWSDefinitionError
from repro.logic import pl

#: Propositional variable encoding the session delimiter.
DELIMITER_VARIABLE = "hash"


def letter_variable(letter: str) -> str:
    """The propositional variable encoding an action letter."""
    return f"ltr_{letter}"


@dataclass(frozen=True)
class RomanService:
    """A Roman-model service: a finite automaton over action letters.

    ``automaton`` may be a DFA (atomic service) or an NFA (composite
    service, per the paper's note that composition yields NFAs).
    """

    automaton: DFA | NFA
    name: str = "roman"

    @property
    def alphabet(self) -> frozenset[str]:
        """The action alphabet."""
        return frozenset(str(a) for a in self.automaton.alphabet)

    def accepts(self, word: Sequence[str]) -> bool:
        """Whether the action string legally terminates the service."""
        return self.automaton.accepts(list(word))


def _letter_formula(letter: str, alphabet: Iterable[str]) -> pl.Formula:
    """φ_a: the current message encodes exactly the letter ``a``."""
    positives = [pl.Var(letter_variable(letter))]
    negatives = [
        pl.Not(pl.Var(letter_variable(other)))
        for other in sorted(alphabet)
        if other != letter
    ]
    negatives.append(pl.Not(pl.Var(DELIMITER_VARIABLE)))
    return pl.conjoin(positives + negatives)


def _delimiter_formula(alphabet: Iterable[str]) -> pl.Formula:
    """φ_#: the current message is the session delimiter."""
    positives = [pl.Var(DELIMITER_VARIABLE)]
    negatives = [
        pl.Not(pl.Var(letter_variable(letter))) for letter in sorted(alphabet)
    ]
    return pl.conjoin(positives + negatives)


def roman_to_sws(service: RomanService) -> SWS:
    """fτ: translate a Roman-model service into SWS(PL, PL).

    Handles both DFA and NFA services (an NFA state's rule lists one
    target per nondeterministic choice; the disjunctive synthesis makes
    the SWS accept iff *some* run accepts, as NFA semantics requires).
    The DFA/NFA initial state may have incoming transitions, which
    Definition 2.1 forbids for the start state; the translation therefore
    adds a fresh start state replicating the initial state's rule.
    """
    automaton = service.automaton
    alphabet = sorted(service.alphabet)
    if isinstance(automaton, DFA):
        states = [s for s in automaton.states if s != DEAD]
        initials = [automaton.initial]
        finals = set(automaton.finals)
        moves: dict[object, list[tuple[str, object]]] = {s: [] for s in states}
        for (source, symbol), target in automaton.transitions.items():
            if source == DEAD or target == DEAD:
                continue
            moves[source].append((str(symbol), target))
    else:
        for (_s, symbol) in automaton.transitions:
            if symbol is None:
                raise SWSDefinitionError(
                    "roman_to_sws needs an ε-free NFA; determinize first"
                )
        states = list(automaton.states)
        initials = list(automaton.initials)
        finals = set(automaton.finals)
        moves = {s: [] for s in states}
        for (source, symbol), targets in automaton.transitions.items():
            for target in targets:
                moves[source].append((str(symbol), target))

    state_name = {s: f"q_{i}" for i, s in enumerate(sorted(states, key=repr))}
    sws_states = ["q_start"] + [state_name[s] for s in states] + ["q_f"]
    transitions: dict[str, TransitionRule] = {}
    synthesis: dict[str, SynthesisRule] = {}

    def rule_for(sources: list) -> tuple[TransitionRule, SynthesisRule]:
        targets: list[tuple[str, pl.Formula]] = []
        for source in sources:
            for letter, target in sorted(moves[source], key=repr):
                targets.append((state_name[target], _letter_formula(letter, alphabet)))
        if any(source in finals for source in sources):
            targets.append(("q_f", _delimiter_formula(alphabet)))
        if not targets:
            # A rejecting sink: final SWS state that never produces.
            return TransitionRule(), SynthesisRule(pl.FALSE)
        rule = TransitionRule(targets)
        registers = pl.disjoin(pl.Var(f"A{i + 1}") for i in range(len(targets)))
        return rule, SynthesisRule(registers)

    transitions["q_start"], synthesis["q_start"] = rule_for(initials)
    for state in states:
        name = state_name[state]
        transitions[name], synthesis[name] = rule_for([state])
    transitions["q_f"] = TransitionRule()
    synthesis["q_f"] = SynthesisRule(pl.Var("Msg"))
    return SWS(
        sws_states,
        "q_start",
        transitions,
        synthesis,
        kind=SWSKind.PL,
        name=f"sws_{service.name}",
    )


def encode_roman_word(word: Sequence[str]) -> list[frozenset[str]]:
    """fI: encode an action string as SWS input (delimiter appended)."""
    encoded = [frozenset({letter_variable(letter)}) for letter in word]
    encoded.append(frozenset({DELIMITER_VARIABLE}))
    return encoded
