"""Tests for the aggregation/cost-model extension (Section 6 future work)."""

import pytest

from repro.core.run import run_relational
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import QueryError
from repro.extensions.aggregation import (
    AggregateQuery,
    CostModel,
    min_cost_synthesis,
    sum_per_group,
)
from repro.workloads import travel


@pytest.fixture
def cost_model() -> CostModel:
    return CostModel(
        prices=(
            {"EDI-MCO-0800": 420.0, "EDI-MCO-1230": 380.0},
            {"PolynesianResort": 260.0},
            {"4DayParkHopper": 150.0},
            {"CompactCar": 90.0},
        ),
        default=0.0,
        free_values=frozenset({travel.BLANK}),
    )


class TestCostModel:
    def test_row_cost(self, cost_model):
        row = ("EDI-MCO-0800", "PolynesianResort", "4DayParkHopper", "-")
        assert cost_model.row_cost(row) == pytest.approx(830.0)

    def test_free_values(self, cost_model):
        row = ("-", "-", "-", "-")
        assert cost_model.row_cost(row) == 0.0

    def test_unknown_value_uses_default(self):
        model = CostModel(prices=({},), default=7.0)
        assert model.row_cost(("anything",)) == 7.0

    def test_arity_mismatch(self, cost_model):
        with pytest.raises(QueryError, match="arity"):
            cost_model.row_cost(("a", "b"))

    def test_cheapest_with_ties(self):
        model = CostModel(prices=({"x": 1.0, "y": 1.0, "z": 2.0},))
        best = model.cheapest({("x",), ("y",), ("z",)})
        assert best == {("x",), ("y",)}

    def test_cheapest_of_nothing(self, cost_model):
        assert cost_model.cheapest(frozenset()) == frozenset()


class TestMinCostTravel:
    def test_cheapest_package_selected(self, cost_model):
        """The paper's motivating aggregate: minimum-total-cost package."""
        base = travel.travel_service()
        aggregated_synthesis = min_cost_synthesis(
            base.synthesis["q0"].query, cost_model, "cheapest_package"
        )
        synthesis = dict(base.synthesis)
        synthesis["q0"] = SynthesisRule(aggregated_synthesis)
        service = SWS(
            base.states,
            base.start,
            base.transitions,
            synthesis,
            kind=SWSKind.RELATIONAL,
            db_schema=base.db_schema,
            input_schema=base.input_schema,
            output_arity=base.output_arity,
            name="tau1_mincost",
        )
        result = run_relational(
            service, travel.sample_database(), travel.booking_request()
        )
        # Of the two flights, only the cheaper 1230 departure survives.
        assert result.output.rows == {
            ("EDI-MCO-1230", "PolynesianResort", "4DayParkHopper", "-")
        }

    def test_aggregate_preserves_emptiness(self, cost_model):
        base = travel.travel_service()
        synthesis = dict(base.synthesis)
        synthesis["q0"] = SynthesisRule(
            min_cost_synthesis(base.synthesis["q0"].query, cost_model)
        )
        service = SWS(
            base.states,
            base.start,
            base.transitions,
            synthesis,
            kind=SWSKind.RELATIONAL,
            db_schema=base.db_schema,
            input_schema=base.input_schema,
            output_arity=base.output_arity,
            name="tau1_mincost",
        )
        empty_db = travel.sample_database(with_tickets=False, with_cars=False)
        result = run_relational(service, empty_db, travel.booking_request())
        assert not result.output


class TestAggregateQuery:
    def test_interface(self, cost_model):
        base = travel.travel_service()
        agg = AggregateQuery(
            base.synthesis["q0"].query, cost_model.cheapest, "m"
        )
        assert agg.arity == 4

    def test_sum_per_group(self):
        rows = frozenset({("a", 1), ("a", 2), ("b", 5)})
        totals = sum_per_group(rows, (0,), lambda row: float(row[1]))
        assert totals == {("a",): 3.0, ("b",): 5.0}
