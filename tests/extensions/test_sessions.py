"""Tests for delimiter-separated multi-session processing."""

import pytest

from repro.data.actions import ActionKind, tag_interpretation
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.extensions.sessions import run_sessions, split_sessions, tag_delimiter
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import const, var
from repro.logic.ucq import UnionQuery

PAYLOAD = RelationSchema("Rin", ("kind", "v"))
# The commit interpretation strips the action tag, so Log rows are unary.
DB = DatabaseSchema([RelationSchema("Log", ("v",))])

x, k = var("x"), var("k")


@pytest.fixture
def logger_service() -> SWS:
    """Echoes every data row of the first message as an insert action."""
    emit = UnionQuery.of(
        ConjunctiveQuery(
            (const("ins"), x), [Atom("In", (k, x))], (), "echo"
        )
    )
    return SWS(
        ("q0",),
        "q0",
        {"q0": TransitionRule()},
        {"q0": SynthesisRule(emit)},
        kind=SWSKind.RELATIONAL,
        db_schema=DB,
        input_schema=PAYLOAD,
        output_arity=2,
        name="logger",
    )


@pytest.fixture
def interpretation():
    return tag_interpretation(
        tag_position=0,
        kind_by_tag={"ins": ActionKind.INSERT},
        target_by_tag={"ins": "Log"},
    )


def _inputs(*messages):
    return InputSequence(PAYLOAD, [list(m) for m in messages])


DELIM = tag_delimiter(0, "#")


class TestSplit:
    def test_split_at_delimiters(self):
        inputs = _inputs(
            [("d", 1)], [("#", 0)], [("d", 2)], [("d", 3)], [("#", 0)]
        )
        segments = split_sessions(inputs, DELIM)
        assert len(segments) == 2
        assert len(segments[0]) == 1
        assert len(segments[1]) == 2

    def test_trailing_segment_kept(self):
        inputs = _inputs([("d", 1)], [("#", 0)], [("d", 2)])
        segments = split_sessions(inputs, DELIM)
        assert len(segments) == 2
        assert len(segments[1]) == 1

    def test_consecutive_delimiters_give_empty_session(self):
        inputs = _inputs([("#", 0)], [("#", 0)])
        segments = split_sessions(inputs, DELIM)
        assert len(segments) == 2
        assert all(len(s) == 0 for s in segments)

    def test_no_delimiter_single_session(self):
        inputs = _inputs([("d", 1)])
        assert len(split_sessions(inputs, DELIM)) == 1


class TestRunSessions:
    def test_commits_accumulate(self, logger_service, interpretation):
        inputs = _inputs(
            [("d", 1)], [("#", 0)], [("d", 2)], [("#", 0)]
        )
        outcomes = run_sessions(
            logger_service,
            Database.empty(DB),
            inputs,
            DELIM,
            interpretation,
        )
        assert len(outcomes) == 2
        assert set(outcomes[0].database_after["Log"]) == {(1,)}
        assert set(outcomes[1].database_after["Log"]) == {(1,), (2,)}

    def test_per_session_outputs(self, logger_service, interpretation):
        inputs = _inputs([("d", 7)], [("#", 0)], [("d", 8)])
        outcomes = run_sessions(
            logger_service, Database.empty(DB), inputs, DELIM, interpretation
        )
        assert {row for row in outcomes[0].output} == {("ins", 7)}
        assert {row for row in outcomes[1].output} == {("ins", 8)}

    def test_empty_session_is_silent(self, logger_service, interpretation):
        inputs = _inputs([("#", 0)], [("d", 1)])
        outcomes = run_sessions(
            logger_service, Database.empty(DB), inputs, DELIM, interpretation
        )
        assert len(outcomes) == 2
        assert not outcomes[0].output
        assert outcomes[0].log.is_empty()

    def test_within_session_database_fixed(self, logger_service, interpretation):
        # A session's own inserts are not visible to itself — commits
        # happen at the delimiter, matching the paper's semantics.
        inputs = _inputs([("d", 1)])
        outcomes = run_sessions(
            logger_service, Database.empty(DB), inputs, DELIM, interpretation
        )
        assert (1,) in outcomes[0].database_after["Log"]
        assert outcomes[0].output.rows == {("ins", 1)}
