"""Tests for DFAs."""

import pytest

from repro.automata.dfa import DEAD, DFA
from repro.errors import ReproError


@pytest.fixture
def even_as() -> DFA:
    """Accepts words with an even number of a's."""
    return DFA(
        {"e", "o"},
        {"a", "b"},
        {
            ("e", "a"): "o",
            ("o", "a"): "e",
            ("e", "b"): "e",
            ("o", "b"): "o",
        },
        "e",
        {"e"},
    )


@pytest.fixture
def contains_ab() -> DFA:
    """Accepts words containing 'ab'."""
    return DFA(
        {0, 1, 2},
        {"a", "b"},
        {
            (0, "a"): 1,
            (0, "b"): 0,
            (1, "a"): 1,
            (1, "b"): 2,
            (2, "a"): 2,
            (2, "b"): 2,
        },
        0,
        {2},
    )


class TestRunning:
    def test_accepts(self, even_as):
        assert even_as.accepts("")
        assert even_as.accepts("aa")
        assert even_as.accepts("bab" + "a")
        assert not even_as.accepts("a")

    def test_missing_transition_goes_dead(self):
        dfa = DFA({0, 1}, {"a"}, {(0, "a"): 1}, 0, {1})
        assert dfa.accepts("a")
        assert not dfa.accepts("aa")
        assert dfa.run("aa") == DEAD

    def test_unknown_symbol_raises(self, even_as):
        with pytest.raises(ReproError):
            even_as.accepts("z")


class TestValidation:
    def test_bad_initial(self):
        with pytest.raises(ReproError):
            DFA({0}, {"a"}, {}, 99, set())

    def test_bad_final(self):
        with pytest.raises(ReproError):
            DFA({0}, {"a"}, {}, 0, {99})

    def test_bad_transition_symbol(self):
        with pytest.raises(ReproError):
            DFA({0}, {"a"}, {(0, "z"): 0}, 0, set())


class TestConstructions:
    def test_complement(self, even_as):
        comp = even_as.complement()
        for word in ["", "a", "ab", "aab", "bb"]:
            assert comp.accepts(word) != even_as.accepts(word)

    def test_product_and(self, even_as, contains_ab):
        both = even_as.product(contains_ab, accept="and")
        assert both.accepts("aba")  # even a's? a,b,a = 2 a's yes; contains ab
        assert not both.accepts("ab")  # odd a's

    def test_product_or(self, even_as, contains_ab):
        either = even_as.product(contains_ab, accept="or")
        assert either.accepts("ab")
        assert either.accepts("bb")
        assert not either.accepts("a")

    def test_product_xor(self, even_as):
        diff = even_as.product(even_as, accept="xor")
        assert diff.is_empty()

    def test_product_alphabet_mismatch(self, even_as):
        other = DFA({0}, {"z"}, {}, 0, set())
        with pytest.raises(ReproError):
            even_as.product(other)


class TestDecisionProcedures:
    def test_is_empty(self):
        empty = DFA({0}, {"a"}, {(0, "a"): 0}, 0, set())
        assert empty.is_empty()

    def test_nonempty(self, contains_ab):
        assert not contains_ab.is_empty()

    def test_shortest_accepted(self, contains_ab):
        assert contains_ab.shortest_accepted() == ("a", "b")

    def test_shortest_of_empty(self):
        empty = DFA({0}, {"a"}, {(0, "a"): 0}, 0, set())
        assert empty.shortest_accepted() is None

    def test_equivalence_reflexive(self, even_as):
        assert even_as.equivalent_to(even_as)

    def test_equivalence_of_distinct(self, even_as, contains_ab):
        assert not even_as.equivalent_to(contains_ab)

    def test_containment(self, contains_ab):
        anything = DFA({0}, {"a", "b"}, {(0, "a"): 0, (0, "b"): 0}, 0, {0})
        assert contains_ab.contained_in(anything)
        assert not anything.contained_in(contains_ab)


class TestMinimization:
    def test_minimized_equivalent(self, contains_ab):
        minimized = contains_ab.minimized()
        for word in ["", "a", "b", "ab", "ba", "aab", "abab"]:
            assert minimized.accepts(word) == contains_ab.accepts(word)

    def test_minimized_removes_redundancy(self):
        # Two states that behave identically collapse.
        dfa = DFA(
            {0, 1, 2},
            {"a"},
            {(0, "a"): 1, (1, "a"): 2, (2, "a"): 1},
            0,
            {1, 2},
        )
        minimized = dfa.minimized()
        # accepts a+ — two states suffice (modulo the dead state).
        assert len(minimized.states - {DEAD}) <= 2 + 1

    def test_to_nfa_roundtrip(self, even_as):
        nfa = even_as.to_nfa()
        for word in ["", "a", "aa", "ab", "bab"]:
            assert nfa.accepts(word) == even_as.accepts(word)
