"""Witness determinism across hash seeds.

The seed code ordered symbols with ``sorted(alphabet, key=repr)``; the
``repr`` of a frozenset depends on ``PYTHONHASHSEED``, so witness words
differed from run to run.  Symbols are now ordered by a canonical
structural key, so every witness below must be byte-identical in
subprocesses launched with different hash seeds.
"""

import os
import subprocess
import sys

_SCRIPT = """
import sys

from repro.core.pl_semantics import to_afa
from repro.workloads.random_sws import random_pl_sws

lines = []
for seed in (3, 7, 11, 19):
    sws = random_pl_sws(seed, n_states=4, n_variables=2)
    afa = to_afa(sws)
    witness = afa.accepting_witness()
    lines.append(f"accept[{seed}]: {witness!r}")
    rejected = afa.rejecting_witness()
    lines.append(f"reject[{seed}]: {rejected!r}")
other = to_afa(random_pl_sws(5, n_states=4, n_variables=2))
mine = to_afa(random_pl_sws(23, n_states=4, n_variables=2))
lines.append(f"diff: {mine.difference_witness(other)!r}")
sys.stdout.write("\\n".join(lines))
"""


def _witnesses_under(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_witnesses_identical_across_hash_seeds():
    baseline = _witnesses_under("0")
    assert "accept[3]" in baseline  # the probe actually produced output
    assert _witnesses_under("1") == baseline
    assert _witnesses_under("12345") == baseline


class TestCanonicalStateNames:
    """``from_nfa`` must name equal subset states identically.

    ``str(frozenset)`` follows hash-table iteration order, so two equal
    frozensets built in different insertion orders can stringify
    differently (1 and 2**61 hash-collide, forcing the effect
    deterministically).  The seed named determinized subset states with
    ``str``, so a transition condition could mention a "state" missing
    from the state set.
    """

    def test_equal_frozensets_get_equal_names(self):
        from repro.automata.afa import _canonical_state_name

        a = frozenset([1, 2**61])
        b = frozenset([2**61, 1])
        assert a == b
        assert str(a) != str(b)  # the hazard this guards against
        assert _canonical_state_name(a) == _canonical_state_name(b)

    def test_from_nfa_accepts_reordered_subset_states(self):
        from repro.automata.afa import AFA
        from repro.automata.nfa import NFA

        s1 = frozenset([1, 2**61])
        s2 = frozenset([2**61, 1])  # equal to s1, different iteration order
        nfa = NFA({s1}, {"a"}, {(s1, "a"): {s2}}, {s2}, {s1})
        afa = AFA.from_nfa(nfa)
        assert afa.accepts(("a",)) == nfa.accepts(("a",))
        assert afa.accepts(()) == nfa.accepts(())
