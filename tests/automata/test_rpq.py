"""Tests for (2-way) regular path queries over graph databases."""

import pytest

from repro.automata.regex import parse_regex
from repro.automata.rpq import (
    C2RPQ,
    GraphDatabase,
    PathAtom,
    RPQ,
    UC2RPQ,
    canonical_graph,
    inverse,
    is_inverse,
    rpq_contained_in_bounded,
)
from repro.errors import QueryError
from repro.logic.terms import var

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def graph() -> GraphDatabase:
    return GraphDatabase(
        {
            "a": [(1, 2), (2, 3)],
            "b": [(3, 4), (2, 4)],
        }
    )


class TestLabels:
    def test_inverse_involution(self):
        assert inverse("a") == "a^"
        assert inverse("a^") == "a"
        assert is_inverse("a^")
        assert not is_inverse("a")

    def test_inverse_edges_derived(self, graph):
        assert graph.edges("a^") == {(2, 1), (3, 2)}

    def test_supplying_inverse_labels_rejected(self):
        with pytest.raises(QueryError):
            GraphDatabase({"a^": [(1, 2)]})

    def test_as_relations(self, graph):
        rels = graph.as_relations()
        assert set(rels) == {"a", "a^", "b", "b^"}
        assert (2, 1) in rels["a^"]


class TestRPQEvaluation:
    def test_single_label(self, graph):
        rpq = RPQ(parse_regex("a"))
        assert rpq.evaluate(graph) == {(1, 2), (2, 3)}

    def test_concatenation(self, graph):
        rpq = RPQ(parse_regex("a b"))
        assert rpq.evaluate(graph) == {(1, 4), (2, 4)}

    def test_star(self, graph):
        rpq = RPQ(parse_regex("a*"))
        result = rpq.evaluate(graph)
        assert (1, 1) in result  # ε path
        assert (1, 3) in result

    def test_two_way(self, graph):
        # Siblings through b: x b y, then back via b^.
        rpq = RPQ(parse_regex("b b^"))
        result = rpq.evaluate(graph)
        assert (3, 2) in result and (2, 3) in result

    def test_union(self, graph):
        rpq = RPQ(parse_regex("a | b"))
        assert rpq.evaluate(graph) == {(1, 2), (2, 3), (3, 4), (2, 4)}


class TestContainment:
    def test_language_containment(self):
        small = RPQ(parse_regex("a a"))
        big = RPQ(parse_regex("a+"))
        assert small.contained_in(big)
        assert not big.contained_in(small)

    def test_bounded_containment_positive(self):
        small = RPQ(parse_regex("a a"))
        big = RPQ(parse_regex("a a | a"))
        assert rpq_contained_in_bounded(small, big, max_length=4)

    def test_bounded_containment_negative(self):
        big = RPQ(parse_regex("a | b"))
        small = RPQ(parse_regex("a"))
        assert not rpq_contained_in_bounded(big, small, max_length=3)


class TestCanonicalGraph:
    def test_forward_word(self):
        graph = canonical_graph(["a", "b"])
        assert graph.edges("a") == {("n0", "n1")}
        assert graph.edges("b") == {("n1", "n2")}

    def test_inverse_edge_reversed(self):
        graph = canonical_graph(["a^"])
        assert graph.edges("a") == {("n1", "n0")}

    def test_query_answers_own_canonical_graph(self):
        rpq = RPQ(parse_regex("a b^ a"))
        word = ["a", "b^", "a"]
        graph = canonical_graph(word)
        assert ("n0", "n3") in rpq.evaluate(graph)


class TestConjunctive:
    def test_join_of_paths(self, graph):
        q = C2RPQ(
            (x, z),
            [
                PathAtom(x, RPQ(parse_regex("a")), y),
                PathAtom(y, RPQ(parse_regex("b")), z),
            ],
        )
        assert q.evaluate(graph) == {(1, 4), (2, 4)}

    def test_shared_endpoint(self, graph):
        # Nodes with both an outgoing a and an outgoing b.
        q = C2RPQ(
            (x,),
            [
                PathAtom(x, RPQ(parse_regex("a")), y),
                PathAtom(x, RPQ(parse_regex("b")), z),
            ],
        )
        assert q.evaluate(graph) == {(2,)}

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError, match="unsafe"):
            C2RPQ((z,), [PathAtom(x, RPQ(parse_regex("a")), y)])

    def test_union_of_conjunctive(self, graph):
        q = UC2RPQ(
            [
                C2RPQ((x, y), [PathAtom(x, RPQ(parse_regex("a a")), y)]),
                C2RPQ((x, y), [PathAtom(x, RPQ(parse_regex("b")), y)]),
            ]
        )
        assert q.evaluate(graph) == {(1, 3), (3, 4), (2, 4)}

    def test_mixed_arity_rejected(self):
        with pytest.raises(QueryError):
            UC2RPQ(
                [
                    C2RPQ((x,), [PathAtom(x, RPQ(parse_regex("a")), y)]),
                    C2RPQ((x, y), [PathAtom(x, RPQ(parse_regex("a")), y)]),
                ]
            )
