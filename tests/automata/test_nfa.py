"""Tests for NFAs, including the paper-specific operations."""

import pytest

from repro.automata.nfa import EPSILON, NFA
from repro.automata.regex import parse_regex
from repro.errors import ReproError


@pytest.fixture
def a_then_any() -> NFA:
    """Accepts a(a|b)*."""
    return NFA(
        {0, 1},
        {"a", "b"},
        {(0, "a"): {1}, (1, "a"): {1}, (1, "b"): {1}},
        {0},
        {1},
    )


class TestRunning:
    def test_accepts(self, a_then_any):
        assert a_then_any.accepts("a")
        assert a_then_any.accepts("abba")
        assert not a_then_any.accepts("b")
        assert not a_then_any.accepts("")

    def test_epsilon_closure(self):
        nfa = NFA(
            {0, 1, 2},
            {"a"},
            {(0, EPSILON): {1}, (1, EPSILON): {2}},
            {0},
            {2},
        )
        assert nfa.epsilon_closure({0}) == {0, 1, 2}
        assert nfa.accepts("")

    def test_word_automaton(self):
        nfa = NFA.for_word("ab", {"a", "b"})
        assert nfa.accepts("ab")
        assert not nfa.accepts("a")
        assert not nfa.accepts("aba")

    def test_empty_language(self):
        nfa = NFA.empty_language({"a"})
        assert nfa.is_empty()


class TestConstructions:
    def test_determinize(self, a_then_any):
        dfa = a_then_any.determinize()
        for word in ["", "a", "b", "ab", "ba", "abb"]:
            assert dfa.accepts(word) == a_then_any.accepts(word)

    def test_union(self):
        left = NFA.for_word("ab", {"a", "b"})
        right = NFA.for_word("ba", {"a", "b"})
        union = left.union(right)
        assert union.accepts("ab") and union.accepts("ba")
        assert not union.accepts("aa")

    def test_concat(self):
        left = NFA.for_word("a", {"a", "b"})
        right = NFA.for_word("b", {"a", "b"})
        cat = left.concat(right)
        assert cat.accepts("ab")
        assert not cat.accepts("a")

    def test_star(self):
        star = NFA.for_word("ab", {"a", "b"}).star()
        assert star.accepts("")
        assert star.accepts("ab")
        assert star.accepts("abab")
        assert not star.accepts("aba")

    def test_alphabet_extension(self, a_then_any):
        extended = a_then_any.with_alphabet({"a", "b", "c"})
        assert extended.accepts("a")
        assert not extended.accepts("c")

    def test_alphabet_shrink_rejected(self, a_then_any):
        with pytest.raises(ReproError):
            a_then_any.with_alphabet({"a"})


class TestDecisionProcedures:
    def test_is_empty(self):
        assert NFA.empty_language({"a"}).is_empty()
        assert not NFA.for_word("a", {"a"}).is_empty()

    def test_containment(self):
        specific = parse_regex("a b").to_nfa()
        general = parse_regex("a (a|b)*").to_nfa()
        assert specific.contained_in(general)
        assert not general.contained_in(specific)

    def test_equivalence(self):
        one = parse_regex("(a|b)* a").to_nfa()
        two = parse_regex("(b* a)+").to_nfa()
        assert one.equivalent_to(two)

    def test_shortest_accepted(self):
        nfa = parse_regex("a a a | a b").to_nfa()
        assert nfa.shortest_accepted() == ("a", "b")


class TestPrefixFreeRestriction:
    def test_cuts_extensions(self):
        nfa = parse_regex("a | a b").to_nfa()
        core = nfa.prefix_free_restriction()
        assert core.accepts("a")
        assert not core.accepts("ab")

    def test_prefix_free_language_unchanged(self):
        nfa = parse_regex("a b | b a").to_nfa()
        core = nfa.prefix_free_restriction()
        assert core.equivalent_to(nfa)

    def test_core_of_star(self):
        # (ab)+ core is just ab.
        nfa = parse_regex("a b (a b)*").to_nfa()
        core = nfa.prefix_free_restriction()
        assert core.equivalent_to(parse_regex("a b").to_nfa())


class TestSubstitution:
    def test_letter_substitution(self):
        outer = parse_regex("X Y").to_nfa()
        sub = outer.substitute(
            {
                "X": parse_regex("a a").to_nfa(["a", "b"]),
                "Y": parse_regex("b | a b").to_nfa(["a", "b"]),
            },
            ["a", "b"],
        )
        assert sub.accepts("aab")
        assert sub.accepts("aaab")
        assert not sub.accepts("ab")

    def test_substitution_with_star(self):
        outer = parse_regex("X*").to_nfa()
        sub = outer.substitute(
            {"X": parse_regex("a b").to_nfa(["a", "b"])}, ["a", "b"]
        )
        assert sub.accepts("")
        assert sub.accepts("abab")
        assert not sub.accepts("aab")

    def test_missing_language_raises(self):
        outer = parse_regex("X").to_nfa()
        with pytest.raises(ReproError):
            outer.substitute({}, ["a"])
