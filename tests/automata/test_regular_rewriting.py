"""Tests for the maximal rewriting of regular languages (CGLV02)."""

import pytest

from repro.automata.regex import parse_regex
from repro.automata.regular_rewriting import (
    component_relation,
    exact_rewriting_exists,
    maximal_rewriting,
    rewrite,
)


def _nfa(text, alphabet=("a", "b")):
    return parse_regex(text).to_nfa(alphabet)


class TestComponentRelation:
    def test_relation_pairs(self):
        goal = _nfa("a b").determinize()
        component = _nfa("a")
        relation = component_relation(goal, component)
        # From the initial state, reading L(component)={a} reaches the
        # middle state.
        initial = goal.initial
        targets = {t for s, t in relation if s == initial}
        assert len(targets) == 1

    def test_star_component_reaches_many(self):
        goal = _nfa("a a a a").determinize()
        component = _nfa("a*")
        relation = component_relation(goal, component)
        initial = goal.initial
        targets = {t for s, t in relation if s == initial}
        assert len(targets) >= 5  # every chain position plus the dead state


class TestMaximalRewriting:
    def test_simple_decomposition(self):
        goal = _nfa("a b")
        maximal = maximal_rewriting(
            goal, {"X": _nfa("a"), "Y": _nfa("b")}
        )
        assert maximal.accepts(["X", "Y"])
        assert not maximal.accepts(["Y", "X"])
        assert not maximal.accepts(["X"])

    def test_star_decomposition(self):
        goal = _nfa("(a b)*")
        maximal = maximal_rewriting(goal, {"P": _nfa("a b")})
        for n in range(4):
            assert maximal.accepts(["P"] * n)

    def test_sub_of_maximal_always_contained(self):
        goal = _nfa("a (b a)* | b")
        components = {"X": _nfa("a"), "Y": _nfa("b a"), "Z": _nfa("b")}
        maximal = maximal_rewriting(goal, components)
        padded = {
            name: nfa.with_alphabet({"a", "b"})
            for name, nfa in components.items()
        }
        substituted = maximal.substitute(padded, {"a", "b"})
        assert substituted.contained_in(goal)


class TestExactRewriting:
    def test_exact_positive(self):
        goal = _nfa("a b | b a")
        assert exact_rewriting_exists(
            goal,
            {"X": _nfa("a"), "Y": _nfa("b")},
            run_to_completion=False,
        )

    def test_exact_negative(self):
        goal = _nfa("a b | a")
        # Only the pair is available; the lone 'a' goal word has no cover.
        result = rewrite(
            goal, {"P": _nfa("a b")}, run_to_completion=False
        )
        assert not result.exact
        assert result.witness == ("a",)

    def test_kleene_exactness(self):
        goal = _nfa("(a | b)*")
        assert exact_rewriting_exists(
            goal,
            {"X": _nfa("a"), "Y": _nfa("b")},
            run_to_completion=False,
        )

    def test_empty_goal_word_handled(self):
        goal = _nfa("()")
        result = rewrite(goal, {"X": _nfa("a")}, run_to_completion=False)
        # ε is rewritten by the empty component word.
        assert result.exact
        assert result.maximal.accepts([])


class TestRunToCompletion:
    def test_prefix_free_core_used(self):
        # Component accepts a and ab; run-to-completion stops at 'a', so
        # the goal 'a b b' cannot use the 'ab' word of the component.
        goal = _nfa("a b b")
        stop_early = rewrite(
            goal,
            {"P": _nfa("a | a b"), "Q": _nfa("b")},
            run_to_completion=True,
        )
        free_choice = rewrite(
            goal,
            {"P": _nfa("a | a b"), "Q": _nfa("b")},
            run_to_completion=False,
        )
        # With run-to-completion P contributes only its core word 'a', so
        # P·Q·Q spells exactly 'abb'.  Under free choice P may produce
        # either 'a' or 'ab', so *no* component word reliably lands in the
        # goal — there is no exact rewriting at all.
        assert stop_early.exact
        assert stop_early.maximal.accepts(["P", "Q", "Q"])
        assert not stop_early.maximal.accepts(["P", "Q"])
        assert not free_choice.exact
        assert not free_choice.maximal.accepts(["P", "Q"])
