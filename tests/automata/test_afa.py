"""Tests for alternating finite automata."""

import itertools

import pytest

from repro.automata.afa import AFA
from repro.automata.regex import parse_regex
from repro.errors import ReproError
from repro.logic import pl
from repro.workloads.scaling import afa_counter


@pytest.fixture
def conjunction_afa() -> AFA:
    """Genuine alternation: a(w) with w ending in 'b' AND containing no 'c'.

    ``endb`` tracks "remaining word ends with b" (via the auxiliary final
    state ``emp`` for the empty remainder), ``noc`` tracks "no c remains";
    the initial dispatch conjoins both universes.
    """
    endb, noc, emp = pl.Var("endb"), pl.Var("noc"), pl.Var("emp")
    return AFA(
        {"endb", "noc", "emp", "init"},
        {"a", "b", "c"},
        {
            ("endb", "a"): endb,
            ("endb", "c"): endb,
            ("endb", "b"): endb | emp,
            ("noc", "a"): noc,
            ("noc", "b"): noc,
            ("init", "a"): endb & noc,
        },
        pl.Var("init"),
        {"emp", "noc"},
    )


class TestSemantics:
    def test_alternation(self, conjunction_afa):
        for word in ["ab", "aab", "abab", "abb"]:
            assert conjunction_afa.accepts(word), word
        for word in ["", "a", "ba", "bb", "b", "acb", "abcb", "abc"]:
            assert not conjunction_afa.accepts(word), word

    def test_negation_in_conditions(self):
        # accepts words where after reading 'a' the rest is NOT accepted
        # from p — i.e. complement through the transition condition.
        afa = AFA(
            {"p", "init"},
            {"a"},
            {
                ("p", "a"): pl.Var("p"),
                ("init", "a"): pl.Not(pl.Var("p")),
            },
            pl.Var("init"),
            {"p"},
        )
        # value(p, a^k) = True for all k >= 0 (final, self-loop).
        # init on a·w = not p(w) = False; init on ε = False.
        assert not afa.accepts("")
        assert not afa.accepts("a")
        assert not afa.accepts("aa")

    def test_vector_for_empty_word(self, conjunction_afa):
        assert conjunction_afa.vector_for("") == {"emp", "noc"}

    def test_missing_transition_is_false(self):
        afa = AFA({"q"}, {"a"}, {}, pl.Var("q"), {"q"})
        assert afa.accepts("")
        assert not afa.accepts("a")

    def test_validation(self):
        with pytest.raises(ReproError):
            AFA({"q"}, {"a"}, {("q", "a"): pl.Var("zzz")}, pl.Var("q"), set())


class TestDecisionProcedures:
    def test_counter_witness_is_exponential(self):
        for bits in (1, 2, 3, 4):
            afa = afa_counter(bits)
            witness = afa.accepting_witness()
            assert witness is not None
            assert len(witness) == 2**bits

    def test_emptiness(self):
        afa = AFA({"q"}, {"a"}, {("q", "a"): pl.Var("q")}, pl.Var("q"), set())
        assert afa.is_empty()

    def test_witness_accepted(self, conjunction_afa):
        witness = conjunction_afa.accepting_witness()
        assert witness is not None
        assert conjunction_afa.accepts(witness)

    def test_equivalence_reflexive(self, conjunction_afa):
        assert conjunction_afa.equivalent_to(conjunction_afa)

    def test_difference_witness(self, conjunction_afa):
        other = AFA(
            conjunction_afa.states,
            conjunction_afa.alphabet,
            conjunction_afa.transitions,
            pl.FALSE,
            conjunction_afa.finals,
        )
        witness = conjunction_afa.difference_witness(other)
        assert witness is not None
        assert conjunction_afa.accepts(witness) != other.accepts(witness)

    def test_alphabet_mismatch(self, conjunction_afa):
        other = AFA({"q"}, {"z"}, {}, pl.Var("q"), set())
        with pytest.raises(ReproError):
            conjunction_afa.equivalent_to(other)


class TestConversions:
    def test_from_nfa_preserves_language(self):
        nfa = parse_regex("a (b|c)* d").to_nfa().determinize().to_nfa()
        afa = AFA.from_nfa(nfa)
        for n in range(0, 5):
            for word in itertools.product("abcd", repeat=n):
                assert afa.accepts(word) == nfa.accepts(word)

    def test_to_nfa_preserves_language(self, conjunction_afa):
        nfa = conjunction_afa.to_nfa()
        for n in range(0, 5):
            for word in itertools.product("abc", repeat=n):
                assert nfa.accepts(word) == conjunction_afa.accepts(word), word

    def test_to_dfa_reads_reversed(self, conjunction_afa):
        dfa = conjunction_afa.to_dfa()
        for n in range(0, 4):
            for word in itertools.product("abc", repeat=n):
                assert dfa.accepts(tuple(reversed(word))) == conjunction_afa.accepts(
                    word
                )

    def test_epsilon_nfa_rejected(self):
        from repro.automata.nfa import NFA

        nfa = NFA({0, 1}, {"a"}, {(0, None): {1}}, {0}, {1})
        with pytest.raises(ReproError):
            AFA.from_nfa(nfa)
