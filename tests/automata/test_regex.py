"""Tests for regular expressions and Thompson's construction."""

import pytest

from repro.automata.regex import (
    Concat,
    EmptySet,
    Epsilon,
    Star,
    Sym,
    Union_,
    parse_regex,
)
from repro.errors import QueryError


class TestConstruction:
    def test_symbol(self):
        nfa = Sym("a").to_nfa()
        assert nfa.accepts("a")
        assert not nfa.accepts("")
        assert not nfa.accepts("aa")

    def test_epsilon(self):
        nfa = Epsilon().to_nfa(["a"])
        assert nfa.accepts("")
        assert not nfa.accepts("a")

    def test_empty_set(self):
        assert EmptySet().to_nfa(["a"]).is_empty()

    def test_concat(self):
        nfa = Concat((Sym("a"), Sym("b"))).to_nfa()
        assert nfa.accepts("ab")
        assert not nfa.accepts("ba")

    def test_union(self):
        nfa = Union_((Sym("a"), Sym("b"))).to_nfa()
        assert nfa.accepts("a") and nfa.accepts("b")
        assert not nfa.accepts("ab")

    def test_star(self):
        nfa = Star(Sym("a")).to_nfa(["a", "b"])
        for n in range(4):
            assert nfa.accepts("a" * n)
        assert not nfa.accepts("b")
        assert not nfa.accepts("ab")

    def test_operator_sugar(self):
        regex = (Sym("a") | Sym("b")) + Sym("c").star()
        nfa = regex.to_nfa()
        assert nfa.accepts("a")
        assert nfa.accepts("bcc")


class TestParser:
    @pytest.mark.parametrize(
        "text,accepted,rejected",
        [
            ("a b c", ["abc"], ["ab", "abcc"]),
            ("a | b", ["a", "b"], ["", "ab"]),
            ("a*", ["", "a", "aaa"], ["b"]),
            ("a+", ["a", "aa"], [""]),
            ("a?", ["", "a"], ["aa"]),
            ("(a b)* c", ["c", "abc", "ababc"], ["ac", "abab"]),
            ("a (b | c)* d", ["ad", "abcd", "accd"], ["abc", "d"]),
            ("()", [""], ["a"]),
        ],
    )
    def test_languages(self, text, accepted, rejected):
        nfa = parse_regex(text).to_nfa(["a", "b", "c", "d"])
        for word in accepted:
            assert nfa.accepts(word), (text, word)
        for word in rejected:
            assert not nfa.accepts(word), (text, word)

    def test_multichar_identifiers(self):
        nfa = parse_regex("foo bar").to_nfa()
        assert nfa.accepts(["foo", "bar"])
        assert not nfa.accepts(["foobar"])

    def test_inverse_label_syntax(self):
        regex = parse_regex("a^ b")
        assert "a^" in {str(s) for s in regex.symbols()}

    @pytest.mark.parametrize("bad", ["(", ")", "*", "a @ b"])
    def test_errors(self, bad):
        with pytest.raises(QueryError):
            parse_regex(bad)

    def test_str_roundtrip(self):
        texts = ["a (b | c)* d", "a | b c", "(a b)*"]
        for text in texts:
            regex = parse_regex(text)
            again = parse_regex(str(regex))
            left = regex.to_nfa(["a", "b", "c", "d"])
            right = again.to_nfa(["a", "b", "c", "d"])
            assert left.equivalent_to(right), text
