"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.generators import InstanceGenerator
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def edge_schema() -> RelationSchema:
    """A binary edge relation schema."""
    return RelationSchema("E", ("src", "dst"))


@pytest.fixture
def two_relation_schema() -> DatabaseSchema:
    """The R/S database schema the random CQ services use."""
    return DatabaseSchema(
        [RelationSchema("R", ("a", "b")), RelationSchema("S", ("a", "b"))]
    )


@pytest.fixture
def small_database(two_relation_schema: DatabaseSchema) -> Database:
    """A fixed small database over R and S."""
    return Database(
        two_relation_schema,
        {"R": [(1, 2), (2, 3)], "S": [(2, 2), (3, 1)]},
    )


@pytest.fixture
def generator() -> InstanceGenerator:
    """A seeded instance generator."""
    return InstanceGenerator(seed=42, domain_size=4)


@pytest.fixture
def edge_relation(edge_schema: RelationSchema) -> Relation:
    """A small cyclic edge relation."""
    return Relation(edge_schema, [(1, 2), (2, 3), (3, 1), (1, 3)])
