"""Tests for the peer model and its SWS(FO, FO) translation."""

import pytest

from repro.core.classes import SWSClass, classify
from repro.core.run import run_relational
from repro.data.database import Database
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic import fo
from repro.logic.terms import var
from repro.models.peer import (
    Peer,
    encode_peer_prefix,
    peer_to_sws,
)

x, y = var("x"), var("y")


@pytest.fixture
def walker() -> Peer:
    """A peer whose state walks along edges and absorbs inputs."""
    state_rule = fo.FOQuery(
        (y,),
        fo.OrF(
            [
                fo.Exists((x,), fo.AndF([fo.atom("State", x), fo.atom("E", x, y)])),
                fo.atom("InP", y),
            ]
        ),
        "step",
    )
    output_rule = fo.FOQuery((y,), fo.atom("State", y), "out")
    schema = DatabaseSchema([RelationSchema("E", ("a", "b"))])
    return Peer(schema, 1, state_rule, output_rule, "walker")


@pytest.fixture
def db(walker) -> Database:
    return Database(walker.db_schema, {"E": [(1, 2), (2, 3), (3, 1)]})


class TestPeerSemantics:
    def test_step_outputs(self, walker, db):
        inputs = [frozenset({(1,)}), frozenset(), frozenset({(2,)})]
        outputs = walker.run(db, inputs)
        assert outputs[0] == {(1,)}
        assert outputs[1] == {(2,)}
        assert outputs[2] == {(2,), (3,)}

    def test_empty_run(self, walker, db):
        assert walker.run(db, []) == []

    def test_state_resets_between_runs(self, walker, db):
        first = walker.run(db, [frozenset({(1,)})])
        second = walker.run(db, [frozenset({(1,)})])
        assert first == second


class TestTranslation:
    def test_translated_class(self, walker):
        sws = peer_to_sws(walker)
        assert classify(sws) is SWSClass.FO_FO
        assert sws.is_recursive()

    def test_per_step_outputs_match(self, walker, db):
        sws = peer_to_sws(walker)
        inputs = [frozenset({(1,)}), frozenset(), frozenset({(2,)}), frozenset({(3,)})]
        expected = walker.run(db, inputs)
        for step in range(1, len(inputs) + 1):
            encoded = encode_peer_prefix(inputs, step, walker.arity)
            got = run_relational(sws, db, encoded).output.rows
            assert got == expected[step - 1], step

    def test_no_delimiter_no_output(self, walker, db):
        from repro.data.input_sequence import InputSequence

        sws = peer_to_sws(walker)
        encoded = encode_peer_prefix([frozenset({(1,)})], 1, 1)
        # Strip the delimiter message.
        bare = InputSequence(
            encoded.schema, [list(encoded.message(1).rows)]
        )
        assert not run_relational(sws, db, bare).output

    def test_empty_state_does_not_kill_chain(self, walker, db):
        # First message empty: the peer state stays empty, but the
        # sentinel keeps the SWS chain alive for later steps.
        sws = peer_to_sws(walker)
        inputs = [frozenset(), frozenset({(1,)})]
        expected = walker.run(db, inputs)
        encoded = encode_peer_prefix(inputs, 2, walker.arity)
        assert run_relational(sws, db, encoded).output.rows == expected[1]

    def test_arity_validation(self):
        bad_rule = fo.FOQuery((x, y), fo.atom("E", x, y), "two")
        with pytest.raises(Exception):
            Peer(
                DatabaseSchema([RelationSchema("E", ("a", "b"))]),
                1,
                bad_rule,
                bad_rule,
            )
