"""Tests for the Colombo-style model and its peer/SWS embedding."""

import pytest

from repro.core.run import run_relational
from repro.data.database import Database
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import SWSDefinitionError
from repro.logic import fo
from repro.logic.terms import var
from repro.models.colombo import (
    ColomboService,
    ColomboTransition,
    colombo_to_peer,
    decode_colombo_outputs,
    encode_colombo_inputs,
)
from repro.models.peer import encode_peer_prefix, peer_to_sws

x, y = var("x"), var("y")
SCHEMA = DatabaseSchema([RelationSchema("E", ("a", "b"))])


@pytest.fixture
def walker_service() -> ColomboService:
    """q0 --[input nonempty / world := input]--> q1 (accepting);
    q1 --[world has an E-successor / world := E-successors]--> q1."""
    some_input = fo.Exists((x,), fo.atom("InP", x))
    load = fo.FOQuery((x,), fo.atom("InP", x), "load")
    can_step = fo.Exists(
        (x, y), fo.AndF([fo.atom("World", x), fo.atom("E", x, y)])
    )
    step = fo.FOQuery(
        (y,),
        fo.Exists((x,), fo.AndF([fo.atom("World", x), fo.atom("E", x, y)])),
        "step",
    )
    return ColomboService(
        states=("q0", "q1"),
        initial="q0",
        accepting=frozenset({"q1"}),
        transitions=(
            ColomboTransition("q0", "q1", some_input, load),
            ColomboTransition("q1", "q1", can_step, step),
        ),
        db_schema=SCHEMA,
        arity=1,
    )


@pytest.fixture
def db() -> Database:
    return Database(SCHEMA, {"E": [(1, 2), (2, 3), (3, 1)]})


class TestDirectSemantics:
    def test_load_then_walk(self, walker_service, db):
        inputs = [frozenset({(1,)}), frozenset(), frozenset()]
        outputs = walker_service.run(db, inputs)
        assert outputs == [
            frozenset({(1,)}),
            frozenset({(2,)}),
            frozenset({(3,)}),
        ]

    def test_no_input_no_start(self, walker_service, db):
        outputs = walker_service.run(db, [frozenset()])
        assert outputs == [frozenset()]

    def test_stuck_world_stays(self, walker_service):
        empty_db = Database.empty(SCHEMA)
        inputs = [frozenset({(7,)}), frozenset()]
        outputs = walker_service.run(empty_db, inputs)
        # Loaded 7, but no E-edge: the self-transition is disabled and the
        # world is copied unchanged.
        assert outputs == [frozenset({(7,)}), frozenset({(7,)})]

    def test_validation(self):
        with pytest.raises(SWSDefinitionError):
            ColomboService(
                states=("q0",),
                initial="zzz",
                accepting=frozenset(),
                transitions=(),
                db_schema=SCHEMA,
                arity=1,
            )


class TestPeerEmbedding:
    def test_peer_matches_direct_run(self, walker_service, db):
        peer = colombo_to_peer(walker_service)
        inputs = [frozenset({(1,)}), frozenset(), frozenset()]
        expected = walker_service.run(db, inputs)
        peer_outputs = peer.run(db, encode_colombo_inputs(inputs, 1))
        decoded = [decode_colombo_outputs(o) for o in peer_outputs]
        assert decoded == expected

    def test_peer_matches_on_empty_database(self, walker_service):
        empty_db = Database.empty(SCHEMA)
        peer = colombo_to_peer(walker_service)
        inputs = [frozenset({(7,)}), frozenset()]
        expected = walker_service.run(empty_db, inputs)
        decoded = [
            decode_colombo_outputs(o)
            for o in peer.run(empty_db, encode_colombo_inputs(inputs, 1))
        ]
        assert decoded == expected


class TestFullChainToSWS:
    def test_colombo_to_peer_to_sws(self, walker_service, db):
        """The paper's 'Other models' chain: Colombo → peer → SWS(FO, FO)."""
        peer = colombo_to_peer(walker_service)
        sws = peer_to_sws(peer)
        inputs = [frozenset({(1,)}), frozenset(), frozenset()]
        expected = walker_service.run(db, inputs)
        encoded_inputs = encode_colombo_inputs(inputs, 1)
        for step in range(1, len(inputs) + 1):
            session = encode_peer_prefix(encoded_inputs, step, peer.arity)
            got = run_relational(sws, db, session).output.rows
            assert decode_colombo_outputs(got) == expected[step - 1], step
