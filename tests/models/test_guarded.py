"""Tests for guarded automata and their SWS translation."""

import itertools

import pytest

from repro.core.run import run_pl
from repro.errors import SWSDefinitionError
from repro.logic import pl
from repro.models.guarded import (
    GuardedAutomaton,
    encode_conversation,
    guarded_to_sws,
)


@pytest.fixture
def automaton() -> GuardedAutomaton:
    return GuardedAutomaton(
        states=("s0", "s1", "s2"),
        variables=("p", "q"),
        transitions={
            "s0": ((pl.parse("p"), "s1"), (pl.parse("!p & q"), "s2")),
            "s1": ((pl.parse("q"), "s2"), (pl.parse("!q"), "s1")),
        },
        initial="s0",
        finals=frozenset({"s2"}),
    )


MESSAGES = [frozenset(), frozenset({"p"}), frozenset({"q"}), frozenset({"p", "q"})]


class TestAutomaton:
    def test_accepts(self, automaton):
        assert automaton.accepts([frozenset({"p"}), frozenset({"q"})])
        assert automaton.accepts([frozenset({"q"})])
        assert not automaton.accepts([frozenset({"p"})])
        assert not automaton.accepts([])

    def test_nondeterminism(self):
        ga = GuardedAutomaton(
            states=("s0", "s1", "s2"),
            variables=("p",),
            transitions={
                "s0": ((pl.parse("p"), "s1"), (pl.parse("p"), "s2")),
                "s1": (),
            },
            initial="s0",
            finals=frozenset({"s2"}),
        )
        assert ga.accepts([frozenset({"p"})])

    def test_validation(self):
        with pytest.raises(SWSDefinitionError):
            GuardedAutomaton(
                states=("s0",),
                variables=("p",),
                transitions={"s0": ((pl.parse("zzz"), "s0"),)},
                initial="s0",
                finals=frozenset(),
            )

    def test_reserved_variable(self):
        with pytest.raises(SWSDefinitionError, match="reserved"):
            GuardedAutomaton(
                states=("s0",),
                variables=("hash",),
                transitions={},
                initial="s0",
                finals=frozenset(),
            )


class TestTranslation:
    def test_language_preserved(self, automaton):
        sws = guarded_to_sws(automaton)
        for n in range(0, 4):
            for conv in itertools.product(MESSAGES, repeat=n):
                expected = automaton.accepts(list(conv))
                actual = run_pl(sws, encode_conversation(conv)).output
                assert expected == actual, conv

    def test_self_loop_translates_to_recursion(self, automaton):
        sws = guarded_to_sws(automaton)
        assert sws.is_recursive()  # s1 loops on !q

    def test_missing_delimiter_rejects(self, automaton):
        sws = guarded_to_sws(automaton)
        conversation = encode_conversation([frozenset({"q"})])[:-1]
        assert not run_pl(sws, conversation).output
