"""Tests for the Roman-model translation (Section 3)."""

import itertools

import pytest

from repro.automata import parse_regex
from repro.core.run import run_pl
from repro.models.roman import (
    RomanService,
    encode_roman_word,
    roman_to_sws,
)
from repro.workloads.travel import travel_fsa


@pytest.fixture
def travel_roman() -> RomanService:
    return RomanService(travel_fsa(), "travel")


class TestRomanService:
    def test_alphabet(self, travel_roman):
        assert travel_roman.alphabet == {"a", "h", "t", "c"}

    def test_accepts(self, travel_roman):
        assert travel_roman.accepts(["a", "h", "t"])
        assert travel_roman.accepts(["a", "h", "c"])
        assert not travel_roman.accepts(["a", "h"])
        assert not travel_roman.accepts(["h", "a", "t"])


class TestTranslation:
    def test_language_preserved_dfa(self, travel_roman):
        sws = roman_to_sws(travel_roman)
        for n in range(0, 5):
            for word in itertools.product("ahtc", repeat=n):
                expected = travel_roman.accepts(list(word))
                actual = run_pl(sws, encode_roman_word(list(word))).output
                assert expected == actual, word

    def test_language_preserved_nfa(self):
        nfa = parse_regex("a (b | c)* a").to_nfa().determinize().to_nfa()
        service = RomanService(nfa, "nfa_service")
        sws = roman_to_sws(service)
        for n in range(0, 5):
            for word in itertools.product("abc", repeat=n):
                assert service.accepts(list(word)) == run_pl(
                    sws, encode_roman_word(list(word))
                ).output, word

    def test_truly_nondeterministic_nfa(self):
        # (a|aa): genuinely nondeterministic without determinizing.
        from repro.automata.nfa import NFA

        nfa = NFA(
            {0, 1, 2},
            {"a"},
            {(0, "a"): {1, 2}, (2, "a"): {1}},
            {0},
            {1},
        )
        service = RomanService(nfa, "nd")
        sws = roman_to_sws(service)
        for n in range(0, 4):
            word = ["a"] * n
            assert service.accepts(word) == run_pl(
                sws, encode_roman_word(word)
            ).output

    def test_translation_is_nonrecursive_for_acyclic_dfa(self, travel_roman):
        sws = roman_to_sws(travel_roman)
        assert not sws.is_recursive()

    def test_cyclic_dfa_gives_recursive_sws(self):
        nfa = parse_regex("(a b)*").to_nfa().determinize().to_nfa()
        sws = roman_to_sws(RomanService(nfa, "loop"))
        assert sws.is_recursive()

    def test_without_delimiter_nothing_accepted(self, travel_roman):
        sws = roman_to_sws(travel_roman)
        word = encode_roman_word(["a", "h", "t"])[:-1]  # drop the '#'
        assert not run_pl(sws, word).output

    def test_garbage_assignment_rejected(self, travel_roman):
        sws = roman_to_sws(travel_roman)
        # Two letters true at once is not a letter encoding.
        garbage = [frozenset({"ltr_a", "ltr_h"})] + encode_roman_word(["h", "t"])[0:]
        assert not run_pl(sws, garbage).output


class TestAnalysisOnTranslations:
    def test_nonemptiness_matches_automaton(self, travel_roman):
        from repro.analysis import nonempty_pl

        sws = roman_to_sws(travel_roman)
        answer = nonempty_pl(sws)
        assert answer.is_yes
        # The witness decodes to an accepted action string plus delimiter.
        assert run_pl(sws, answer.witness).output

    def test_equivalent_roman_services(self):
        from repro.analysis import equivalent_pl

        one = parse_regex("a b | a c").to_nfa().determinize().to_nfa()
        two = parse_regex("a (b | c)").to_nfa().determinize().to_nfa()
        sws1 = roman_to_sws(RomanService(one, "one"))
        sws2 = roman_to_sws(RomanService(two, "two"))
        assert equivalent_pl(sws1, sws2).is_yes
