"""Tests for the FO service generator and FO-class analysis dispatch."""

import pytest

from repro.analysis import equivalent, nonempty
from repro.core.classes import SWSClass, classify
from repro.core.run import run_relational
from repro.data.generators import InstanceGenerator
from repro.workloads.random_sws import random_fo_sws


class TestGenerator:
    def test_deterministic(self):
        a, b = random_fo_sws(3), random_fo_sws(3)
        assert a.states == b.states
        assert a.dependency_edges() == b.dependency_edges()

    @pytest.mark.parametrize("seed", range(8))
    def test_classified_fo(self, seed):
        sws = random_fo_sws(seed)
        assert classify(sws) in (SWSClass.FO_FO, SWSClass.FO_FO_NR)

    @pytest.mark.parametrize("seed", range(6))
    def test_runnable(self, seed):
        gen = InstanceGenerator(seed=seed, domain_size=3)
        sws = random_fo_sws(seed, recursive=(seed % 2 == 0))
        db = gen.database(sws.db_schema, 3)
        inputs = gen.input_sequence(sws.input_schema, 2, 2)
        run_relational(sws, db, inputs)

    def test_negation_matters(self):
        """At least one generated service is genuinely non-monotone."""
        gen = InstanceGenerator(seed=9, domain_size=3)
        non_monotone_seen = False
        for seed in range(12):
            sws = random_fo_sws(seed, n_states=3)
            # The generated guards test the *absence* of S-facts, so start
            # from an instance where S is empty and then populate it.
            db_small = gen.database(sws.db_schema, 3).with_relation("S", [])
            inputs = gen.input_sequence(sws.input_schema, 2, 2)
            db_big = db_small.insert("S", [(0, 1), (1, 2)])
            out_small = run_relational(sws, db_small, inputs).output.rows
            out_big = run_relational(sws, db_big, inputs).output.rows
            if not out_small <= out_big:
                non_monotone_seen = True
                break
        assert non_monotone_seen


class TestAnalysisDispatch:
    def test_nonempty_routes_to_bounded(self):
        sws = random_fo_sws(0, n_states=3, recursive=False)
        answer = nonempty(sws, max_domain=2, max_rows=1, max_session_length=1, budget=300)
        # Sound either way; just must not crash and must be three-valued.
        assert answer.verdict is not None

    def test_equivalent_routes_to_bounded(self):
        sws = random_fo_sws(1, n_states=3, recursive=False)
        answer = equivalent(sws, sws, budget=200)
        assert not answer.is_no
