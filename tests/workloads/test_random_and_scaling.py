"""Tests for random SWS generators and the scaling families."""

import pytest

from repro.core.classes import SWSClass, classify
from repro.core.run import run_pl, run_relational
from repro.data.generators import InstanceGenerator
from repro.workloads.random_sws import random_cq_sws, random_pl_sws
from repro.workloads.scaling import (
    afa_counter,
    cq_chain_sws,
    cq_diamond_sws,
    pl_counter_sws,
    random_3cnf,
)


class TestRandomPL:
    def test_deterministic(self):
        a = random_pl_sws(5)
        b = random_pl_sws(5)
        assert a.states == b.states
        assert a.dependency_edges() == b.dependency_edges()

    def test_runnable(self):
        gen = InstanceGenerator(seed=0)
        for seed in range(10):
            sws = random_pl_sws(seed, recursive=(seed % 2 == 0))
            variables = sorted(sws.input_variables())
            word = gen.pl_input_word(variables, 3)
            run_pl(sws, word)  # must not raise

    def test_class(self):
        assert classify(random_pl_sws(0, recursive=False)) is SWSClass.PL_PL_NR

    def test_minimum_states(self):
        with pytest.raises(ValueError):
            random_pl_sws(0, n_states=1)


class TestRandomCQ:
    def test_runnable(self):
        gen = InstanceGenerator(seed=1, domain_size=3)
        for seed in range(10):
            sws = random_cq_sws(seed, recursive=(seed % 2 == 0))
            db = gen.database(sws.db_schema, 3)
            inputs = gen.input_sequence(sws.input_schema, 2, 2)
            run_relational(sws, db, inputs)  # must not raise

    def test_class(self):
        sws = random_cq_sws(3, recursive=False)
        assert classify(sws) in (SWSClass.CQ_UCQ_NR, SWSClass.CQ_UCQ)


class TestCounters:
    def test_pl_counter_period(self):
        sws = pl_counter_sws(2)
        accepted = [m for m in range(0, 13) if run_pl(sws, [frozenset()] * m).output]
        assert accepted == [4, 8, 12]

    def test_afa_counter_period(self):
        afa = afa_counter(2)
        accepted = [m for m in range(0, 13) if afa.accepts(["a"] * m)]
        assert accepted == [4, 8, 12]

    def test_counter_is_recursive(self):
        assert pl_counter_sws(2).is_recursive()


class TestDiamondAndChain:
    def test_diamond_depth(self):
        assert cq_diamond_sws(3).depth() == 3

    def test_diamond_traces_r_or_s_paths(self):
        from repro.data.database import Database

        sws = cq_diamond_sws(2)
        db = Database(sws.db_schema, {"R": [(1, 2)], "S": [(1, 3)]})
        from repro.data.input_sequence import InputSequence

        inputs = InputSequence(sws.input_schema, [[(1, 1)], [], []])
        # Register starts at (1,1); after two steps via R or S... the
        # diamond forwards pairs only when matching edges exist.
        run_relational(sws, db, inputs)  # shape check only

    def test_chain_emits_paths(self):
        from repro.data.database import Database
        from repro.data.input_sequence import InputSequence

        chain = cq_chain_sws(0)
        db = Database(chain.db_schema, {"R": [(1, 2), (2, 3)], "S": []})
        inputs = InputSequence(chain.input_schema, [[(0, 1)], [], []])
        rows = run_relational(chain, db, inputs).output.rows
        assert (1, 2) in rows


class TestRandom3CNF:
    def test_shape(self):
        clauses = random_3cnf(0, 5, 7)
        assert len(clauses) == 7
        assert all(len(c) == 3 for c in clauses)

    def test_deterministic(self):
        assert random_3cnf(2, 4, 4) == random_3cnf(2, 4, 4)
