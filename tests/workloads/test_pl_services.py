"""Tests for the letter-encoded PL session services."""

import pytest

from repro.core.run import run_pl
from repro.errors import SWSDefinitionError
from repro.workloads.pl_services import (
    HASH,
    encode_letters,
    exactly,
    letter_var,
    union_word_service,
    word_service,
)

ALPHA = ["a", "b"]


class TestEncoding:
    def test_letter_var(self):
        assert letter_var("a") == "ltr_a"
        assert letter_var(HASH) == "hash"

    def test_exactly(self):
        f = exactly("a", ALPHA)
        assert f.evaluate({"ltr_a"})
        assert not f.evaluate({"ltr_a", "ltr_b"})
        assert not f.evaluate({"ltr_a", "hash"})
        assert not f.evaluate(set())

    def test_encode(self):
        word = encode_letters(["a", HASH])
        assert word == [frozenset({"ltr_a"}), frozenset({"hash"})]


class TestWordService:
    def test_exact_session(self):
        sws = word_service(["a", "b", HASH], ALPHA)
        assert run_pl(sws, encode_letters(["a", "b", HASH])).output
        assert not run_pl(sws, encode_letters(["a", "a", HASH])).output
        assert not run_pl(sws, encode_letters(["a", "b"])).output
        assert not run_pl(sws, encode_letters(["a", HASH])).output

    def test_prefix_determined(self):
        sws = word_service(["a", HASH], ALPHA)
        assert run_pl(sws, encode_letters(["a", HASH, "b", "b"])).output

    def test_bare_delimiter(self):
        sws = word_service([HASH], ALPHA)
        assert run_pl(sws, encode_letters([HASH])).output
        assert not run_pl(sws, encode_letters(["a", HASH])).output

    def test_interior_delimiters(self):
        sws = word_service(["a", HASH, "b", HASH], ALPHA)
        assert run_pl(sws, encode_letters(["a", HASH, "b", HASH])).output
        assert not run_pl(sws, encode_letters(["a", "b", HASH, HASH])).output

    def test_must_end_with_delimiter(self):
        with pytest.raises(SWSDefinitionError):
            word_service(["a", "b"], ALPHA)

    def test_consumption_equals_session_length(self):
        sws = word_service(["a", "b", HASH], ALPHA)
        result = run_pl(sws, encode_letters(["a", "b", HASH, "a"]))
        assert result.tree.max_timestamp() == 3

    def test_nonrecursive(self):
        assert not word_service(["a", HASH], ALPHA).is_recursive()


class TestUnionService:
    def test_accepts_each_branch(self):
        sws = union_word_service([["a", HASH], ["b", HASH]], ALPHA)
        assert run_pl(sws, encode_letters(["a", HASH])).output
        assert run_pl(sws, encode_letters(["b", HASH])).output
        assert not run_pl(sws, encode_letters([HASH])).output

    def test_longer_menu(self):
        sws = union_word_service(
            [["a", HASH, "b", HASH], ["b", HASH]], ALPHA
        )
        assert run_pl(sws, encode_letters(["a", HASH, "b", HASH])).output
        assert run_pl(sws, encode_letters(["b", HASH])).output
        assert not run_pl(sws, encode_letters(["a", HASH])).output


class TestStarWordService:
    def test_language(self):
        from repro.workloads.pl_services import star_word_service

        sws = star_word_service("a", ALPHA)
        assert sws.is_recursive()
        assert run_pl(sws, encode_letters(["a", HASH])).output
        assert run_pl(sws, encode_letters(["a", "a", "a", HASH])).output
        assert not run_pl(sws, encode_letters([HASH])).output
        assert not run_pl(sws, encode_letters(["b", HASH])).output

    def test_prefix_free_core_is_infinite_family(self):
        from repro.analysis.prefix import sws_prefix_bound
        from repro.workloads.pl_services import star_word_service

        # The star language is not k-prefix recognizable for any k.
        assert sws_prefix_bound(star_word_service("a", ALPHA)) is None
