"""Tests for the travel-package workload (Figure 1, Examples 2.1/2.2/5.1)."""

import pytest

from repro.core.classes import SWSClass, classify
from repro.core.run import run_relational
from repro.data.database import Database
from repro.workloads import travel


class TestTau1:
    def test_example_2_2_behaviour(self):
        t1 = travel.travel_service()
        db = travel.sample_database()
        result = run_relational(t1, db, travel.booking_request())
        rows = result.output.rows
        assert rows
        # Tickets preferred: every row carries a ticket, no car.
        assert all(row[2] != travel.BLANK and row[3] == travel.BLANK for row in rows)

    def test_car_fallback(self):
        t1 = travel.travel_service()
        db = travel.sample_database(with_tickets=False)
        rows = run_relational(t1, db, travel.booking_request()).output.rows
        assert rows
        assert all(row[2] == travel.BLANK and row[3] != travel.BLANK for row in rows)

    def test_conjunctive_commit(self):
        """No flight, no hotel, or no local arrangement → no output."""
        t1 = travel.travel_service()
        req = travel.booking_request()
        no_local = travel.sample_database(with_tickets=False, with_cars=False)
        assert not run_relational(t1, no_local, req).output
        no_hotel = Database(
            travel.DB_SCHEMA,
            {"Ra": [("k1", "F")], "Rt": [("k1", "T")], "Rc": [("k1", "C")]},
        )
        assert not run_relational(t1, no_hotel, req).output
        no_flight = Database(
            travel.DB_SCHEMA,
            {"Rh": [("k1", "H")], "Rt": [("k1", "T")], "Rc": [("k1", "C")]},
        )
        assert not run_relational(t1, no_flight, req).output

    def test_single_message_suffices(self):
        """Example 2.2: I2..In are not consumed by τ1."""
        t1 = travel.travel_service()
        db = travel.sample_database()
        one = run_relational(t1, db, travel.booking_request()).output.rows
        longer = travel.booking_request().concat(travel.booking_request())
        two = run_relational(t1, db, longer).output.rows
        assert one == two

    def test_classification(self):
        assert classify(travel.travel_service()) is SWSClass.FO_FO_NR


class TestTau2:
    def test_latest_inquiry_wins(self):
        t2 = travel.recursive_airfare_service()
        db = travel.sample_database().with_relation(
            "Ra", [("k1", "F1"), ("k2", "F2"), ("k3", "F3")]
        )
        seq = travel.repeated_airfare_inquiries(["k1", "k2", "k3"])
        rows = run_relational(t2, db, seq).output.rows
        assert rows
        assert all(row[0] == "F3" for row in rows)

    def test_chain_stops_at_missing_inquiry(self):
        t2 = travel.recursive_airfare_service()
        db = travel.sample_database().with_relation(
            "Ra", [("k1", "F1"), ("k2", "F2"), ("k3", "F3")]
        )
        # Second message has no airfare request: the chain dies there, so
        # the k3 inquiry in message 3 is never answered.
        seq = travel.repeated_airfare_inquiries(["k1", "k2", "k3"])
        from repro.data.input_sequence import InputSequence

        broken = InputSequence(
            travel.INPUT_PAYLOAD,
            [
                list(seq.message(1).rows),
                [("h", "k1")],  # no airfare tag
                list(seq.message(3).rows),
            ],
        )
        rows = run_relational(t2, db, broken).output.rows
        assert not rows

    def test_classification(self):
        assert classify(travel.recursive_airfare_service()) is SWSClass.FO_FO


class TestFigure1Comparison:
    def test_fsa_is_sequential_sws_is_parallel(self):
        fsa = travel.travel_fsa()
        assert fsa.accepts(["a", "h", "t"])
        # Three sequential interactions for the FSA...
        assert len(["a", "h", "t"]) == 3
        # ... one parallel round for the SWS.
        t1 = travel.travel_service()
        result = run_relational(
            t1, travel.sample_database(), travel.booking_request()
        )
        assert result.tree.height() == 1

    def test_fsa_orderings(self):
        fsa = travel.travel_fsa()
        assert fsa.accepts(["a", "h", "c"])
        assert not fsa.accepts(["h", "a", "t"])
        assert not fsa.accepts(["a", "h"])


class TestMediatorPi1:
    def test_components_individually(self):
        db = travel.sample_database()
        req = travel.booking_request()
        ta = travel.airfare_component()
        rows = run_relational(ta, db, req).output.rows
        assert rows and all(r[0] != travel.BLANK for r in rows)
        tht = travel.hotel_ticket_component()
        rows = run_relational(tht, db, req).output.rows
        assert rows and all(
            r[1] != travel.BLANK and r[2] != travel.BLANK for r in rows
        )

    def test_pi1_equivalent_on_scenarios(self):
        from repro.mediator import run_mediator

        pi1 = travel.travel_mediator()
        goal = travel.travel_service()
        req = travel.booking_request()
        for kwargs in (
            {},
            {"with_tickets": False},
            {"with_cars": False},
            {"with_tickets": False, "with_cars": False},
        ):
            db = travel.sample_database(**kwargs)
            assert (
                run_mediator(pi1, db, req).output.rows
                == goal.run(db, req).output.rows
            )
