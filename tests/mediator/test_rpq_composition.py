"""Tests for the UC2RPQ composition case (Corollary 5.2)."""

import random

import pytest

from repro.automata.regex import parse_regex
from repro.automata.rpq import GraphDatabase, RPQ
from repro.errors import AnalysisError
from repro.mediator.rpq_composition import (
    chain_view,
    compose_uc2rpq,
    evaluate_over_views,
    view_graph,
)


def _random_graph(seed: int, labels=("a", "b"), nodes=6, edges=12):
    rng = random.Random(seed)
    pool = list(range(nodes))
    out = {label: set() for label in labels}
    for _ in range(edges):
        out[rng.choice(labels)].add((rng.choice(pool), rng.choice(pool)))
    return GraphDatabase(out)


class TestChainView:
    def test_forward_chain(self):
        view = chain_view("V", ["a", "b"])
        assert len(view.atoms) == 2
        assert view.arity == 2

    def test_inverse_chain_flips(self):
        view = chain_view("V", ["a^"])
        atom = view.atoms[0]
        assert atom.relation == "a"
        assert atom.terms[0].name == "x1"  # flipped

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            chain_view("V", [])

    def test_view_extension(self):
        graph = GraphDatabase({"a": {(1, 2)}, "b": {(2, 3)}})
        vg = view_graph(graph, {"V": ["a", "b"]})
        assert vg.edges("V") == {(1, 3)}


class TestCompose:
    def test_star_goal(self):
        goal = RPQ(parse_regex("(a b)* a"), "goal")
        views = {"P": ["a", "b"], "Q": ["a"]}
        result = compose_uc2rpq(goal, views)
        assert result.exists
        for seed in range(4):
            graph = _random_graph(seed)
            assert goal.evaluate(graph) == evaluate_over_views(
                result.mediator_rpq, graph, views
            )

    def test_union_goal(self):
        goal = RPQ(parse_regex("a a | b"), "goal")
        views = {"AA": ["a", "a"], "B": ["b"]}
        result = compose_uc2rpq(goal, views)
        assert result.exists
        graph = _random_graph(7)
        assert goal.evaluate(graph) == evaluate_over_views(
            result.mediator_rpq, graph, views
        )

    def test_inverse_labels(self):
        goal = RPQ(parse_regex("a b^"), "goal")
        views = {"V": ["a", "b^"]}
        result = compose_uc2rpq(goal, views)
        assert result.exists
        graph = GraphDatabase({"a": {(1, 2), (5, 2)}, "b": {(3, 2), (4, 2)}})
        assert goal.evaluate(graph) == evaluate_over_views(
            result.mediator_rpq, graph, views
        )

    def test_impossible(self):
        goal = RPQ(parse_regex("a"), "goal")
        result = compose_uc2rpq(goal, {"P": ["a", "b"]})
        assert not result.exists

    def test_partial_cover_insufficient(self):
        # a+ cannot be built from pairs only (odd lengths missing).
        goal = RPQ(parse_regex("a+"), "goal")
        result = compose_uc2rpq(goal, {"AA": ["a", "a"]})
        assert not result.exists
        # Adding the single step fixes it.
        result2 = compose_uc2rpq(goal, {"AA": ["a", "a"], "A": ["a"]})
        assert result2.exists
