"""Tests for PL composition synthesis (Theorems 5.1(4,5), 5.3(1,2))."""

import pytest

from repro.core.pl_semantics import joint_variables
from repro.mediator.mediator import mediator_equivalent_to_sws_pl, run_mediator_pl
from repro.mediator.synthesis import (
    compose_pl_prefix,
    compose_pl_regular,
    kprefix_bound,
)
from repro.workloads.pl_services import HASH, encode_letters, union_word_service, word_service

ALPHA = ["a", "b"]


@pytest.fixture
def components():
    return {
        "X": word_service(["a", HASH], ALPHA, "X"),
        "Y": word_service(["b", HASH], ALPHA, "Y"),
    }


class TestKPrefixBound:
    def test_bound_dominates_depths(self, components):
        goal = union_word_service([["a", HASH, "b", HASH]], ALPHA)
        bound = kprefix_bound(goal, components)
        assert bound >= goal.depth() + 1

    def test_recursive_component_rejected(self):
        from repro.workloads.scaling import pl_counter_sws
        from repro.errors import AnalysisError

        goal = union_word_service([["a", HASH]], ALPHA)
        with pytest.raises(AnalysisError):
            kprefix_bound(goal, {"C": pl_counter_sws(1)})


class TestRegularComposition:
    def test_sequential_goal(self, components):
        goal = union_word_service([["a", HASH, "b", HASH]], ALPHA, "seq")
        result = compose_pl_regular(goal, components)
        assert result.exists
        variables = sorted(joint_variables(goal, *components.values()))
        ok, witness = mediator_equivalent_to_sws_pl(
            result.mediator, goal, 4, variables
        )
        assert ok, witness

    def test_choice_goal(self, components):
        goal = union_word_service(
            [["a", HASH, "b", HASH], ["b", HASH, "a", HASH]], ALPHA, "choice"
        )
        result = compose_pl_regular(goal, components)
        assert result.exists
        mediator = result.mediator
        assert run_mediator_pl(
            mediator, encode_letters(["a", HASH, "b", HASH])
        ).output
        assert run_mediator_pl(
            mediator, encode_letters(["b", HASH, "a", HASH])
        ).output
        assert not run_mediator_pl(
            mediator, encode_letters(["a", HASH, "a", HASH])
        ).output

    def test_impossible_goal(self, components):
        # A session of two raw letters before the delimiter cannot be
        # stitched from single-letter sessions.
        goal = union_word_service([["a", "b", HASH]], ALPHA, "nope")
        result = compose_pl_regular(goal, components)
        assert not result.exists
        assert result.witness is not None  # the uncoverable goal word

    def test_repeated_component(self, components):
        goal = union_word_service([["a", HASH, "a", HASH]], ALPHA, "twice")
        result = compose_pl_regular(goal, components)
        assert result.exists
        assert run_mediator_pl(
            result.mediator, encode_letters(["a", HASH, "a", HASH])
        ).output

    def test_rewriting_evidence_attached(self, components):
        goal = union_word_service([["a", HASH]], ALPHA)
        result = compose_pl_regular(goal, components)
        assert result.rewriting is not None
        assert result.rewriting.exact == result.exists


class TestPrefixComposition:
    def test_finds_chain(self, components):
        goal = union_word_service([["a", HASH, "b", HASH]], ALPHA)
        result = compose_pl_prefix(goal, components, max_chain_length=2)
        assert result.exists
        variables = sorted(joint_variables(goal, *components.values()))
        ok, _ = mediator_equivalent_to_sws_pl(result.mediator, goal, 4, variables)
        assert ok

    def test_finds_union(self, components):
        goal = union_word_service([["a", HASH], ["b", HASH]], ALPHA)
        result = compose_pl_prefix(
            goal, components, max_chain_length=1, max_branches=2
        )
        assert result.exists

    def test_reports_absence(self, components):
        goal = union_word_service([["a", "a", HASH]], ALPHA)
        result = compose_pl_prefix(goal, components, max_chain_length=2)
        assert not result.exists


class TestRecursiveComponents:
    """Theorem 5.3's component column is SWS(PL, PL) — recursion allowed."""

    def _plus_then_b_goal(self):
        """The goal language a+ # b # as a recursive SWS."""
        from repro.core import pl_sws
        from repro.workloads.pl_services import exactly

        ga = str(exactly("a", ALPHA))
        gb = str(exactly("b", ALPHA))
        ge = str(exactly(HASH, ALPHA))
        return (
            pl_sws("a_plus_b")
            .transition("s0", ("loop", ga), ("d1", ga))
            .synthesize("s0", "A1 | A2")
            .transition("loop", ("loop", f"Msg & ({ga})"), ("d1", f"Msg & ({ga})"))
            .synthesize("loop", "A1 | A2")
            .transition("d1", ("d2", f"Msg & ({ge})"))
            .synthesize("d1", "A1")
            .transition("d2", ("end", f"Msg & ({gb})"))
            .synthesize("d2", "A1")
            .final("end")
            .synthesize("end", f"Msg & ({ge})")
            .build()
        )

    def test_goal_language(self):
        from repro.core.run import run_pl
        from repro.workloads.pl_services import encode_letters

        goal = self._plus_then_b_goal()
        assert goal.is_recursive()
        for word, expected in [
            (["a", HASH, "b", HASH], True),
            (["a", "a", HASH, "b", HASH], True),
            (["a", "a", "a", HASH, "b", HASH], True),
            ([HASH, "b", HASH], False),
            (["a", HASH, "a", HASH], False),
            (["a", HASH, "b"], False),
        ]:
            assert run_pl(goal, encode_letters(word)).output == expected, word

    def test_composition_with_recursive_component(self):
        from repro.workloads.pl_services import star_word_service

        goal = self._plus_then_b_goal()
        components = {
            "Astar": star_word_service("a", ALPHA),
            "B": word_service(["b", HASH], ALPHA, "B"),
        }
        result = compose_pl_regular(goal, components)
        assert result.exists
        # The mediator chains the recursive component and then B.
        assert set(result.mediator.components) == {"Astar", "B"}

    def test_recursive_component_insufficient_alone(self):
        goal = self._plus_then_b_goal()
        from repro.workloads.pl_services import star_word_service

        result = compose_pl_regular(goal, {"Astar": star_word_service("a", ALPHA)})
        assert not result.exists
