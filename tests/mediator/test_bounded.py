"""Tests for MDT_b(PL) bounded-mediator synthesis (Theorem 5.3(3))."""

import pytest

from repro.mediator.bounded import compose_mdtb_pl
from repro.workloads.pl_services import HASH, union_word_service, word_service

ALPHA = ["a", "b"]


@pytest.fixture
def components():
    return {
        "X": word_service(["a", HASH], ALPHA, "X"),
        "Y": word_service(["b", HASH], ALPHA, "Y"),
    }


class TestSynthesis:
    def test_chain_goal(self, components):
        goal = union_word_service([["a", HASH, "b", HASH]], ALPHA)
        result = compose_mdtb_pl(goal, components, invocation_bound=1)
        assert result.exists
        assert result.mediator is not None

    def test_disjunctive_goal(self, components):
        goal = union_word_service([["a", HASH], ["b", HASH]], ALPHA)
        result = compose_mdtb_pl(goal, components, invocation_bound=1)
        assert result.exists

    def test_conjunction_needs_synthesis_pool(self, components):
        # L(X·sessions) AND-combined is not a word language; the or-goal
        # covers the pool's disjunction member instead.
        goal = union_word_service(
            [["a", HASH, "a", HASH], ["b", HASH]], ALPHA
        )
        result = compose_mdtb_pl(goal, components, invocation_bound=2)
        assert result.exists

    def test_absence_reported(self, components):
        goal = union_word_service([["a", "b", HASH]], ALPHA)
        result = compose_mdtb_pl(goal, components, invocation_bound=2)
        assert not result.exists
        assert result.candidates_tried > 0

    def test_invocation_bound_limits_search(self, components):
        goal = union_word_service(
            [["a", HASH, "a", HASH, "a", HASH]], ALPHA
        )
        tight = compose_mdtb_pl(goal, components, invocation_bound=1)
        loose = compose_mdtb_pl(goal, components, invocation_bound=3)
        assert not tight.exists  # needs X three times
        assert loose.exists

    def test_recursive_goal_supported(self, components):
        # The language-level check handles recursive goals (EXPSPACE case):
        # a goal looping on X-sessions has no bounded mediator.
        from repro.workloads.scaling import pl_counter_sws

        goal = pl_counter_sws(1)
        result = compose_mdtb_pl(goal, components, invocation_bound=1)
        assert not result.exists
