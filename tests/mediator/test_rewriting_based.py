"""Tests for CQ/UCQ composition via query rewriting (Theorem 5.1(3))."""

import pytest

from repro.core.run import run_relational
from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.generators import InstanceGenerator
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery
from repro.mediator.mediator import run_mediator
from repro.mediator.rewriting_based import (
    component_view,
    compose_cq_nr,
    mediator_from_ucq_rewriting,
)
from repro.workloads.random_sws import DEFAULT_CQ_SCHEMA, DEFAULT_PAYLOAD

x, y, z = var("x"), var("y"), var("z")


def _emit_service(emit: UnionQuery, name: str) -> SWS:
    """q0 → (q1, copy-input); q1 emits by the given synthesis."""
    first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "copy")
    up = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "up"))
    return SWS(
        ("q0", "q1"),
        "q0",
        {"q0": TransitionRule([("q1", first)]), "q1": TransitionRule()},
        {"q0": SynthesisRule(up), "q1": SynthesisRule(emit)},
        kind=SWSKind.RELATIONAL,
        db_schema=DEFAULT_CQ_SCHEMA,
        input_schema=DEFAULT_PAYLOAD,
        output_arity=2,
        name=name,
    )


def _join_emit(relation: str) -> UnionQuery:
    return UnionQuery.of(
        ConjunctiveQuery(
            (x, z), [Atom(MSG, (x, y)), Atom(relation, (y, z))], (), f"e{relation}"
        )
    )


@pytest.fixture
def components():
    return {
        "VR": _emit_service(_join_emit("R"), "VR"),
        "VS": _emit_service(_join_emit("S"), "VS"),
    }


class TestComponentView:
    def test_view_named_and_shaped(self, components):
        view = component_view("VR", components["VR"], 2)
        assert view.name == "VR"
        assert view.arity == 2
        assert "R" in view.relations()


class TestCompose:
    def test_union_goal(self, components):
        goal = _emit_service(_join_emit("R").union(_join_emit("S")), "goal")
        result = compose_cq_nr(goal, components)
        assert result.exists
        gen = InstanceGenerator(seed=3, domain_size=3)
        for _ in range(5):
            db = gen.database(goal.db_schema, 4)
            inputs = gen.input_sequence(goal.input_schema, 2, 2)
            a = run_relational(goal, db, inputs).output.rows
            b = run_mediator(result.mediator, db, inputs).output.rows
            assert a == b

    def test_single_component_identity(self, components):
        goal = _emit_service(_join_emit("R"), "goal")
        result = compose_cq_nr(goal, {"VR": components["VR"]})
        assert result.exists
        assert len(result.mediator.components) == 1

    def test_missing_capability(self, components):
        goal = _emit_service(_join_emit("R"), "goal")
        result = compose_cq_nr(goal, {"VS": components["VS"]})
        assert not result.exists

    def test_schema_mismatch_rejected(self, components):
        from repro.data.schema import DatabaseSchema, RelationSchema
        from repro.errors import AnalysisError

        other_schema = DatabaseSchema([RelationSchema("T", ("a", "b"))])
        odd = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {
                "q0": SynthesisRule(
                    UnionQuery.of(
                        ConjunctiveQuery((x, y), [Atom("T", (x, y))], (), "t")
                    )
                )
            },
            kind=SWSKind.RELATIONAL,
            db_schema=other_schema,
            input_schema=DEFAULT_PAYLOAD,
            output_arity=2,
            name="odd",
        )
        goal = _emit_service(_join_emit("R"), "goal")
        with pytest.raises(AnalysisError, match="share"):
            compose_cq_nr(goal, {"odd": odd})


class TestMediatorConstruction:
    def test_depth_one_shape(self, components):
        rewriting = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("VR", (x, y))], (), "r")
        )
        mediator = mediator_from_ucq_rewriting(rewriting, components)
        assert mediator.start == "q_root"
        assert len(mediator.states) == 2
        assert not mediator.is_recursive()

    def test_unknown_view_rejected(self, components):
        from repro.errors import AnalysisError

        rewriting = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("ZZ", (x, y))], (), "r")
        )
        with pytest.raises(AnalysisError, match="unknown components"):
            mediator_from_ucq_rewriting(rewriting, components)
