"""Tests for mediator structure and run semantics (Definition 5.1)."""

import pytest

from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import SWSDefinitionError
from repro.logic import pl
from repro.mediator.mediator import (
    Mediator,
    MediatorTransitionRule,
    run_mediator,
    run_mediator_pl,
)
from repro.workloads import travel
from repro.workloads.pl_services import HASH, encode_letters, word_service


@pytest.fixture
def components():
    alpha = ["a", "b"]
    return {
        "X": word_service(["a", HASH], alpha, "X"),
        "Y": word_service(["b", HASH], alpha, "Y"),
    }


def _chain_mediator(components, order):
    states = [f"s{i}" for i in range(len(order) + 1)]
    transitions = {}
    synthesis = {}
    for i, name in enumerate(order):
        transitions[states[i]] = MediatorTransitionRule([(states[i + 1], name)])
        synthesis[states[i]] = SynthesisRule(pl.Var("A1"))
    transitions[states[-1]] = MediatorTransitionRule()
    synthesis[states[-1]] = SynthesisRule(pl.Var("Msg"))
    return Mediator(states, states[0], transitions, synthesis, components)


class TestValidation:
    def test_unknown_component(self, components):
        with pytest.raises(SWSDefinitionError, match="unknown component"):
            Mediator(
                ("m0", "m1"),
                "m0",
                {
                    "m0": MediatorTransitionRule([("m1", "ZZZ")]),
                    "m1": MediatorTransitionRule(),
                },
                {
                    "m0": SynthesisRule(pl.Var("A1")),
                    "m1": SynthesisRule(pl.Var("Msg")),
                },
                components,
            )

    def test_start_on_rhs_rejected(self, components):
        with pytest.raises(SWSDefinitionError, match="must not appear"):
            Mediator(
                ("m0",),
                "m0",
                {"m0": MediatorTransitionRule([("m0", "X")])},
                {"m0": SynthesisRule(pl.Var("A1"))},
                components,
            )

    def test_invocation_counts(self, components):
        mediator = _chain_mediator(components, ["X", "Y", "X"])
        assert mediator.component_invocation_counts() == {"X": 2, "Y": 1}

    def test_recursion_detection(self, components):
        mediator = _chain_mediator(components, ["X"])
        assert not mediator.is_recursive()
        recursive = Mediator(
            ("m0", "m1"),
            "m0",
            {
                "m0": MediatorTransitionRule([("m1", "X")]),
                "m1": MediatorTransitionRule([("m1", "Y")]),
            },
            {
                "m0": SynthesisRule(pl.Var("A1")),
                "m1": SynthesisRule(pl.Var("A1")),
            },
            components,
        )
        assert recursive.is_recursive()


class TestPLRuns:
    def test_sequential_sessions(self, components):
        mediator = _chain_mediator(components, ["X", "Y"])
        assert run_mediator_pl(mediator, encode_letters(["a", HASH, "b", HASH])).output
        assert not run_mediator_pl(
            mediator, encode_letters(["b", HASH, "a", HASH])
        ).output
        assert not run_mediator_pl(mediator, encode_letters(["a", HASH])).output

    def test_component_failure_kills_chain(self, components):
        mediator = _chain_mediator(components, ["X", "X"])
        assert not run_mediator_pl(
            mediator, encode_letters(["a", HASH, "b", HASH])
        ).output
        assert run_mediator_pl(
            mediator, encode_letters(["a", HASH, "a", HASH])
        ).output

    def test_timestamp_advances_past_session(self, components):
        mediator = _chain_mediator(components, ["X", "Y"])
        result = run_mediator_pl(mediator, encode_letters(["a", HASH, "b", HASH]))
        child = result.tree.children[0]
        assert child.timestamp == 3  # X consumed the two-message session

    def test_trailing_input_ignored(self, components):
        mediator = _chain_mediator(components, ["X"])
        word = encode_letters(["a", HASH, "b", HASH])
        assert run_mediator_pl(mediator, word).output


class TestRelationalRuns:
    def test_travel_mediator_equals_goal(self):
        pi1 = travel.travel_mediator()
        goal = travel.travel_service()
        for kwargs in (
            {},
            {"with_tickets": False},
            {"with_cars": False},
            {"with_tickets": False, "with_cars": False},
        ):
            db = travel.sample_database(**kwargs)
            req = travel.booking_request()
            a = goal.run(db, req).output.rows
            b = run_mediator(pi1, db, req).output.rows
            assert a == b, kwargs

    def test_mediator_tree_shape(self):
        pi1 = travel.travel_mediator()
        result = run_mediator(
            pi1, travel.sample_database(), travel.booking_request()
        )
        assert len(result.tree.children) == 3

    def test_empty_input_silences_mediator(self):
        from repro.data.input_sequence import InputSequence

        pi1 = travel.travel_mediator()
        empty = InputSequence(travel.INPUT_PAYLOAD, [])
        result = run_mediator(pi1, travel.sample_database(), empty)
        assert not result.output
