"""Tests for the language-level mediator semantics (the Section 5 view)."""

import pytest

from repro.core.pl_semantics import joint_variables
from repro.core.sws import MSG, SynthesisRule
from repro.logic import pl
from repro.mediator.mediator import (
    Mediator,
    MediatorTransitionRule,
    mediator_equivalent_to_sws_pl,
    run_mediator_pl,
)
from repro.mediator.synthesis import (
    boolean_language_combination,
    mediator_language_equivalent,
    mediator_language_nfa,
)
from repro.workloads.pl_services import (
    HASH,
    encode_letters,
    union_word_service,
    word_service,
)

ALPHA = ["a", "b"]


@pytest.fixture
def components():
    return {
        "X": word_service(["a", HASH], ALPHA, "X"),
        "Y": word_service(["b", HASH], ALPHA, "Y"),
    }


def _chain(components, order):
    states = [f"s{i}" for i in range(len(order) + 1)]
    transitions = {}
    synthesis = {}
    for i, name in enumerate(order):
        transitions[states[i]] = MediatorTransitionRule([(states[i + 1], name)])
        synthesis[states[i]] = SynthesisRule(pl.Var("A1"))
    transitions[states[-1]] = MediatorTransitionRule()
    synthesis[states[-1]] = SynthesisRule(pl.Var(MSG))
    return Mediator(states, states[0], transitions, synthesis, components)


class TestMediatorLanguageNFA:
    def test_language_matches_runs(self, components):
        mediator = _chain(components, ["X", "Y"])
        variables = joint_variables(*components.values())
        nfa = mediator_language_nfa(mediator, variables)
        for word in (
            ["a", HASH, "b", HASH],
            ["b", HASH, "a", HASH],
            ["a", HASH],
        ):
            encoded = encode_letters(word)
            # The NFA describes the session core: run-level acceptance is
            # its prefix-determined closure.
            run_value = run_mediator_pl(mediator, encoded).output
            core_hit = any(
                nfa.accepts(encoded[:i]) for i in range(len(encoded) + 1)
            )
            assert run_value == core_hit, word

    def test_branching_mediator(self, components):
        transitions = {
            "r": MediatorTransitionRule([("e1", "X"), ("e2", "Y")]),
            "e1": MediatorTransitionRule(),
            "e2": MediatorTransitionRule(),
        }
        synthesis = {
            "r": SynthesisRule(pl.Var("A1") | pl.Var("A2")),
            "e1": SynthesisRule(pl.Var(MSG)),
            "e2": SynthesisRule(pl.Var(MSG)),
        }
        mediator = Mediator(("r", "e1", "e2"), "r", transitions, synthesis, components)
        variables = joint_variables(*components.values())
        nfa = mediator_language_nfa(mediator, variables)
        assert nfa.accepts(encode_letters(["a", HASH]))
        assert nfa.accepts(encode_letters(["b", HASH]))
        assert not nfa.accepts(encode_letters(["a", "b"]))


class TestLanguageEquivalence:
    def test_agrees_with_exhaustive_check(self, components):
        goal = union_word_service([["a", HASH, "b", HASH]], ALPHA, "goal")
        mediator = _chain(components, ["X", "Y"])
        wrong = _chain(components, ["Y", "X"])
        variables = sorted(joint_variables(goal, *components.values()))
        assert mediator_language_equivalent(mediator, goal, variables)
        assert not mediator_language_equivalent(wrong, goal, variables)
        # Cross-check against the run-level oracle on short words.
        ok, _ = mediator_equivalent_to_sws_pl(mediator, goal, 4, variables)
        assert ok
        bad, _ = mediator_equivalent_to_sws_pl(wrong, goal, 4, variables)
        assert not bad


class TestBooleanCombination:
    def test_conjunction_is_intersection(self):
        from repro.automata.regex import parse_regex

        left = parse_regex("a (a|b)*").to_nfa(ALPHA)  # starts with a
        right = parse_regex("(a|b)* b").to_nfa(ALPHA)  # ends with b
        both = boolean_language_combination(
            [left, right], pl.parse("A1 & A2"), ALPHA
        )
        assert both.accepts("ab")
        assert both.accepts("aab")
        assert not both.accepts("a")
        assert not both.accepts("ba")

    def test_negation_supported(self):
        from repro.automata.regex import parse_regex

        inner = parse_regex("a*").to_nfa(ALPHA)
        complement = boolean_language_combination(
            [inner], pl.parse("!A1"), ALPHA
        )
        assert not complement.accepts("aa")
        assert complement.accepts("ab")

    def test_disjunction_is_union(self):
        from repro.automata.regex import parse_regex

        left = parse_regex("a").to_nfa(ALPHA)
        right = parse_regex("b").to_nfa(ALPHA)
        either = boolean_language_combination(
            [left, right], pl.parse("A1 | A2"), ALPHA
        )
        assert either.accepts("a") and either.accepts("b")
        assert not either.accepts("ab")
