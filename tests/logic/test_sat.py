"""Tests for the DPLL SAT solver."""

import pytest

from repro.logic import pl
from repro.logic.cnf import Literal
from repro.logic.sat import (
    all_models,
    count_models,
    equivalent,
    model,
    satisfiable,
    solve_cnf,
    valid,
)


def _clause(*literals):
    return frozenset(
        Literal(name.lstrip("!"), not name.startswith("!")) for name in literals
    )


class TestSolveCNF:
    def test_empty_cnf_is_satisfiable(self):
        assert solve_cnf([]) == {}

    def test_empty_clause_is_unsat(self):
        assert solve_cnf([frozenset()]) is None

    def test_unit_propagation(self):
        clauses = [_clause("x"), _clause("!x", "y")]
        solution = solve_cnf(clauses)
        assert solution is not None
        assert solution["x"] and solution["y"]

    def test_unsat_core(self):
        clauses = [
            _clause("x", "y"),
            _clause("!x", "y"),
            _clause("x", "!y"),
            _clause("!x", "!y"),
        ]
        assert solve_cnf(clauses) is None

    def test_solution_satisfies(self):
        clauses = [
            _clause("a", "b", "c"),
            _clause("!a", "!b"),
            _clause("!b", "!c"),
            _clause("b"),
        ]
        solution = solve_cnf(clauses)
        assert solution is not None
        for clause in clauses:
            assert any(
                solution.get(lit.variable, False) == lit.positive
                for lit in clause
            )

    def test_pigeonhole_3_into_2_unsat(self):
        # Pigeons p in {1,2,3}, holes h in {1,2}: p_h says pigeon p in hole h.
        clauses = []
        for p in range(3):
            clauses.append(_clause(f"p{p}h0", f"p{p}h1"))
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    clauses.append(_clause(f"!p{p1}h{h}", f"!p{p2}h{h}"))
        assert solve_cnf(clauses) is None


class TestFormulaLevel:
    def test_satisfiable(self):
        assert satisfiable(pl.parse("x & !y"))
        assert not satisfiable(pl.parse("x & !x"))

    def test_model_is_a_model(self):
        formula = pl.parse("(x | y) & !x & (z -> y)")
        m = model(formula)
        assert m is not None
        assert formula.evaluate(m)

    def test_model_of_unsat(self):
        assert model(pl.parse("x & !x")) is None

    def test_valid(self):
        assert valid(pl.parse("x | !x"))
        assert not valid(pl.parse("x"))

    def test_equivalent(self):
        assert equivalent(pl.parse("x -> y"), pl.parse("!x | y"))
        assert equivalent(pl.parse("!(x & y)"), pl.parse("!x | !y"))
        assert not equivalent(pl.parse("x"), pl.parse("y"))


class TestModelEnumeration:
    def test_all_models(self):
        models = set(all_models(pl.parse("x | y")))
        assert models == {
            frozenset({"x"}),
            frozenset({"y"}),
            frozenset({"x", "y"}),
        }

    def test_count_models(self):
        assert count_models(pl.parse("x & y")) == 1
        assert count_models(pl.parse("x | y | z")) == 7
        assert count_models(pl.parse("x & !x")) == 0

    def test_agreement_with_dpll(self):
        import random

        from repro.workloads.random_sws import random_formula

        rng = random.Random(5)
        for _ in range(30):
            formula = random_formula(rng, ["a", "b", "c"], depth=3)
            assert satisfiable(formula) == (count_models(formula) > 0)
