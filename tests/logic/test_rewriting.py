"""Tests for answering queries using views."""

import pytest

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic.cq import Atom, ConjunctiveQuery, neq
from repro.logic.rewriting import (
    View,
    certain_answers,
    equivalent_rewriting,
    expansion,
    inverse_rules,
    maximally_contained_rewriting,
)
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery

x, y, z, u = var("x"), var("y"), var("z"), var("u")


def _view(name, head, atoms):
    return View(ConjunctiveQuery(head, atoms, (), name))


@pytest.fixture
def join_views():
    # V1(x,y) = E(x,y);  V2(x,z) = E(x,y),E(y,z)
    return [
        _view("V1", (x, y), [Atom("E", (x, y))]),
        _view("V2", (x, z), [Atom("E", (x, y)), Atom("E", (y, z))]),
    ]


class TestExpansion:
    def test_expand_replaces_view_atoms(self, join_views):
        rewriting = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("V1", (x, y))])
        )
        exp = expansion(rewriting, join_views)
        assert exp.relations() == {"E"}

    def test_expansion_semantics(self, join_views):
        db = {"E": Relation(RelationSchema("E", ("a", "b")), [(1, 2), (2, 3)])}
        rewriting = UnionQuery.of(
            ConjunctiveQuery((x, z), [Atom("V2", (x, z))])
        )
        exp = expansion(rewriting, join_views)
        assert exp.evaluate(db) == {(1, 3)}


class TestEquivalentRewriting:
    def test_identity_rewriting(self, join_views):
        query = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("E", (x, y))]))
        rewriting = equivalent_rewriting(query, join_views)
        assert rewriting is not None
        assert expansion(rewriting, join_views).equivalent_to(query)

    def test_two_hop_via_either_view(self, join_views):
        query = UnionQuery.of(
            ConjunctiveQuery((x, z), [Atom("E", (x, y)), Atom("E", (y, z))])
        )
        rewriting = equivalent_rewriting(query, join_views)
        assert rewriting is not None
        assert expansion(rewriting, join_views).equivalent_to(query)

    def test_three_hops_from_views(self, join_views):
        query = UnionQuery.of(
            ConjunctiveQuery(
                (x, u),
                [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, u))],
            )
        )
        rewriting = equivalent_rewriting(query, join_views)
        assert rewriting is not None
        assert expansion(rewriting, join_views).equivalent_to(query)

    def test_impossible_rewriting(self):
        # The only view projects away the join variable; the exact binary
        # query cannot be recovered.
        views = [_view("P", (x,), [Atom("E", (x, y))])]
        query = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("E", (x, y))]))
        assert equivalent_rewriting(query, views) is None

    def test_rewriting_of_union_query(self, join_views):
        views = join_views + [_view("W", (x, y), [Atom("F", (x, y))])]
        query = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("E", (x, y))]),
            ConjunctiveQuery((x, y), [Atom("F", (x, y))]),
        )
        rewriting = equivalent_rewriting(query, views)
        assert rewriting is not None
        assert expansion(rewriting, views).equivalent_to(query)

    def test_minimized_rewriting_is_small(self, join_views):
        query = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("E", (x, y))]))
        rewriting = equivalent_rewriting(query, join_views)
        assert rewriting is not None
        assert len(rewriting) == 1
        assert len(rewriting.disjuncts[0].atoms) == 1


class TestMaximallyContained:
    def test_all_candidates_contained(self, join_views):
        query = UnionQuery.of(
            ConjunctiveQuery((x, z), [Atom("E", (x, y)), Atom("E", (y, z))])
        )
        mcr = maximally_contained_rewriting(query, join_views)
        for disjunct in mcr.disjuncts:
            exp = expansion(UnionQuery.of(disjunct), join_views)
            assert exp.contained_in(query)

    def test_empty_when_views_useless(self):
        views = [_view("W", (x, y), [Atom("F", (x, y))])]
        query = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("E", (x, y))]))
        mcr = maximally_contained_rewriting(query, views)
        assert len(mcr) == 0


class TestInverseRules:
    def test_rule_shape(self):
        views = [_view("V2", (x, z), [Atom("E", (x, y)), Atom("E", (y, z))])]
        rules = inverse_rules(views)
        assert len(rules) == 2
        assert {r.head_relation for r in rules} == {"E"}

    def test_comparison_views_rejected(self):
        view = View(
            ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)], "V")
        )
        with pytest.raises(QueryError, match="comparison-free"):
            inverse_rules([view])

    def test_union_views_rejected(self):
        view = View(
            UnionQuery.of(
                ConjunctiveQuery((x, y), [Atom("E", (x, y))], (), "V"),
                ConjunctiveQuery((x, y), [Atom("F", (x, y))], (), "V"),
            )
        )
        with pytest.raises(QueryError, match="single-CQ"):
            inverse_rules([view])


class TestCertainAnswers:
    def test_identity_view(self):
        views = [_view("V1", (x, y), [Atom("E", (x, y))])]
        ext = {"V1": Relation(RelationSchema("V1", ("a", "b")), [(1, 2), (2, 3)])}
        query = UnionQuery.of(
            ConjunctiveQuery((x, z), [Atom("E", (x, y)), Atom("E", (y, z))])
        )
        assert certain_answers(query, views, ext) == {(1, 3)}

    def test_skolems_filtered(self):
        # V(x) = E(x,y): the y is unknown, so no certain binary answers.
        views = [_view("P", (x,), [Atom("E", (x, y))])]
        ext = {"P": Relation(RelationSchema("P", ("a",)), [(1,)])}
        query = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("E", (x, y))]))
        assert certain_answers(query, views, ext) == frozenset()

    def test_skolem_join_still_works(self):
        # Boolean certainty through a skolem: ∃y E(1,y) is certain.
        views = [_view("P", (x,), [Atom("E", (x, y))])]
        ext = {"P": Relation(RelationSchema("P", ("a",)), [(1,)])}
        query = UnionQuery.of(ConjunctiveQuery((x,), [Atom("E", (x, y))]))
        assert certain_answers(query, views, ext) == {(1,)}

    def test_certain_answers_sound(self):
        # Certain answers must hold in the materialized instance itself.
        views = [
            _view("V1", (x, y), [Atom("E", (x, y))]),
            _view("V2", (x, z), [Atom("E", (x, y)), Atom("E", (y, z))]),
        ]
        db = {"E": Relation(RelationSchema("E", ("a", "b")), [(1, 2), (2, 3)])}
        ext = {
            "V1": Relation(
                RelationSchema("V1", ("a", "b")),
                views[0].definition.evaluate(db),
            ),
            "V2": Relation(
                RelationSchema("V2", ("a", "b")),
                views[1].definition.evaluate(db),
            ),
        }
        query = UnionQuery.of(
            ConjunctiveQuery((x, z), [Atom("E", (x, y)), Atom("E", (y, z))])
        )
        certain = certain_answers(query, views, ext)
        assert certain <= query.evaluate(db)
        assert (1, 3) in certain
