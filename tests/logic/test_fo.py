"""Tests for first-order queries: evaluation and bounded model finding."""

import pytest

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic import fo
from repro.logic.cq import Atom, ConjunctiveQuery, neq
from repro.logic.terms import const, var

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def db():
    return {
        "E": Relation(RelationSchema("E", ("a", "b")), [(1, 2), (2, 3), (3, 1)])
    }


class TestEvaluation:
    def test_atom(self, db):
        q = fo.FOQuery((x, y), fo.atom("E", x, y))
        assert q.evaluate(db) == {(1, 2), (2, 3), (3, 1)}

    def test_negation(self, db):
        # Nodes with no self loop: all of them.
        q = fo.FOQuery((x,), fo.NotF(fo.atom("E", x, x)))
        assert q.evaluate(db) == {(1,), (2,), (3,)}

    def test_existential(self, db):
        q = fo.FOQuery(
            (x,), fo.Exists((y,), fo.AndF([fo.atom("E", x, y), fo.atom("E", y, x)]))
        )
        assert q.evaluate(db) == frozenset()

    def test_universal(self, db):
        # Nodes x such that every outgoing edge goes to 2: just node 1.
        q = fo.FOQuery(
            (x,),
            fo.AndF(
                [
                    fo.Exists((y,), fo.atom("E", x, y)),
                    fo.Forall(
                        (y,),
                        fo.OrF(
                            [fo.NotF(fo.atom("E", x, y)), fo.Equals(y, const(2))]
                        ),
                    ),
                ]
            ),
        )
        assert q.evaluate(db) == {(1,)}

    def test_equality(self, db):
        q = fo.FOQuery((x, y), fo.AndF([fo.atom("E", x, y), fo.Equals(x, const(1))]))
        assert q.evaluate(db) == {(1, 2)}

    def test_closed_formula_holds(self, db):
        sentence = fo.Exists((x, y), fo.atom("E", x, y))
        q = fo.FOQuery((), sentence)
        assert q.holds(db)

    def test_active_domain_semantics(self, db):
        # A negated atom ranges over the active domain only.
        q = fo.FOQuery((x,), fo.NotF(fo.Exists((y,), fo.atom("E", x, y))))
        assert q.evaluate(db) == frozenset()  # all nodes have out-edges

    def test_missing_relation_raises(self):
        q = fo.FOQuery((x,), fo.atom("Nope", x))
        with pytest.raises(QueryError):
            q.evaluate({})

    def test_duplicate_head_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            fo.FOQuery((x, x), fo.atom("E", x, x))


class TestCqToFo:
    def test_plain_translation(self, db):
        cq = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        foq = fo.cq_to_fo(cq)
        assert foq.evaluate(db) == cq.evaluate(db)

    def test_with_inequality(self, db):
        cq = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)])
        foq = fo.cq_to_fo(cq)
        assert foq.evaluate(db) == cq.evaluate(db)

    def test_with_head_constant(self, db):
        cq = ConjunctiveQuery((const("t"), x), [Atom("E", (x, y))])
        foq = fo.cq_to_fo(cq)
        assert foq.evaluate(db) == cq.evaluate(db)

    def test_with_repeated_head_variable(self, db):
        cq = ConjunctiveQuery((x, x), [Atom("E", (x, y))])
        foq = fo.cq_to_fo(cq)
        assert foq.evaluate(db) == cq.evaluate(db)


class TestGrounding:
    def test_ground_requires_closed(self):
        with pytest.raises(QueryError, match="closed"):
            fo.ground_to_sat(fo.atom("E", x, y), [0, 1])

    def test_grounding_respects_models(self):
        # ∃x E(x,x) grounded over a 2-element domain.
        sentence = fo.Exists((x,), fo.atom("E", x, x))
        grounded = fo.ground_to_sat(sentence, [0, 1])
        from repro.logic.sat import satisfiable

        assert satisfiable(grounded)
        negated = fo.NotF(sentence)
        grounded_neg = fo.ground_to_sat(negated, [0, 1])
        assert satisfiable(grounded_neg)  # the empty E is a model


class TestBoundedSatisfiability:
    def test_simple_satisfiable(self):
        sentence = fo.Exists((x, y), fo.AndF([fo.atom("E", x, y), fo.NotF(fo.Equals(x, y))]))
        found, size = fo.bounded_satisfiable(sentence, max_domain_size=3)
        assert found
        assert size == 2

    def test_unsatisfiable_within_bound(self):
        # ∃x E(x) ∧ ∀x ¬E(x) has no model at any size.
        sentence = fo.AndF(
            [
                fo.Exists((x,), fo.atom("E1", x)),
                fo.Forall((x,), fo.NotF(fo.atom("E1", x))),
            ]
        )
        found, size = fo.bounded_satisfiable(sentence, max_domain_size=3)
        assert not found
        assert size is None

    def test_needs_two_elements(self):
        # ∃x∃y x≠y needs domain size ≥ 2.
        sentence = fo.Exists((x, y), fo.NotF(fo.Equals(x, y)))
        found, size = fo.bounded_satisfiable(sentence, max_domain_size=3)
        assert found and size == 2

    def test_constants_always_in_domain(self):
        sentence = fo.Exists((x,), fo.AndF([fo.Equals(x, const("a")), fo.atom("E1", x)]))
        found, _size = fo.bounded_satisfiable(sentence, max_domain_size=1)
        assert found
