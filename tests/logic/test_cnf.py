"""Tests for CNF conversion: distributive and Tseitin."""

import itertools

import pytest

from repro.logic import pl
from repro.logic.cnf import Literal, tseitin, to_cnf


def _cnf_evaluate(clauses, assignment):
    return all(
        any(
            (lit.variable in assignment) == lit.positive
            for lit in clause
        )
        for clause in clauses
    )


def _models(variables, formula):
    out = set()
    for mask in range(2 ** len(variables)):
        env = frozenset(v for i, v in enumerate(variables) if mask >> i & 1)
        if formula.evaluate(env):
            out.add(env)
    return out


class TestLiteral:
    def test_negated(self):
        lit = Literal("x")
        assert lit.negated() == Literal("x", positive=False)
        assert lit.negated().negated() == lit

    def test_str(self):
        assert str(Literal("x")) == "x"
        assert str(Literal("x", False)) == "!x"


class TestDistributiveCNF:
    @pytest.mark.parametrize(
        "text",
        [
            "x",
            "!x",
            "x & y",
            "x | y",
            "x & (y | z)",
            "(x | y) & (!x | z)",
            "!(x & y)",
            "!(x | !y) & z",
            "x -> (y -> z)",
        ],
    )
    def test_equivalence(self, text):
        formula = pl.parse(text)
        clauses = to_cnf(formula)
        variables = sorted(formula.variables())
        for mask in range(2 ** len(variables)):
            env = frozenset(
                v for i, v in enumerate(variables) if mask >> i & 1
            )
            assert formula.evaluate(env) == _cnf_evaluate(clauses, env), env

    def test_tautology_gives_no_clauses(self):
        assert to_cnf(pl.parse("x | !x")) == []

    def test_contradiction_is_unsat(self):
        from repro.logic.sat import solve_cnf

        clauses = to_cnf(pl.parse("x & !x"))
        assert solve_cnf(clauses) is None


class TestTseitin:
    @pytest.mark.parametrize(
        "text,satisfiable",
        [
            ("x", True),
            ("x & !x", False),
            ("(x | y) & (!x | y) & (x | !y) & (!x | !y)", False),
            ("(x | y) & !x", True),
            ("!(x & y) | z", True),
            ("true", True),
            ("false", False),
        ],
    )
    def test_equisatisfiability(self, text, satisfiable):
        from repro.logic.sat import solve_cnf

        clauses, _root = tseitin(pl.parse(text))
        assert (solve_cnf(clauses) is not None) == satisfiable

    def test_models_project_correctly(self):
        from repro.logic.sat import solve_cnf

        formula = pl.parse("x & (y | z) & !y")
        clauses, _root = tseitin(formula)
        solution = solve_cnf(clauses)
        assert solution is not None
        env = frozenset(
            v for v in formula.variables() if solution.get(v, False)
        )
        assert formula.evaluate(env)

    def test_linear_size(self):
        # A formula whose distributive CNF explodes stays small via Tseitin.
        parts = [
            pl.Var(f"a{i}") & pl.Var(f"b{i}") for i in range(12)
        ]
        formula = pl.Or(parts)
        clauses, _root = tseitin(formula)
        assert len(clauses) < 200
