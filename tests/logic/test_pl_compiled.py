"""Interning, simplify dedup, and the compiled evaluators in ``pl``."""

import copy
import pickle

from repro.analysis.stats import STATS
from repro.logic import pl


class TestInterning:
    def test_constructors_return_identical_objects(self):
        assert pl.Var("p") is pl.Var("p")
        assert pl.Not(pl.Var("p")) is pl.Not(pl.Var("p"))
        assert pl.And([pl.Var("p"), pl.Var("q")]) is pl.And(
            [pl.Var("p"), pl.Var("q")]
        )
        assert pl.Or([pl.Var("p"), pl.Var("q")]) is pl.Or(
            [pl.Var("p"), pl.Var("q")]
        )
        assert pl.Const(True) is pl.TRUE
        assert pl.Const(False) is pl.FALSE

    def test_operand_order_distinguishes(self):
        assert pl.And([pl.Var("p"), pl.Var("q")]) is not pl.And(
            [pl.Var("q"), pl.Var("p")]
        )

    def test_interning_is_hit_counted(self):
        STATS.reset()
        pl.Var("fresh_counter_var")
        pl.Var("fresh_counter_var")
        assert STATS.intern_hits >= 1

    def test_variables_cached_and_correct(self):
        formula = pl.parse("(p & q) | !r")
        assert formula.variables() == frozenset({"p", "q", "r"})
        assert formula.variables() is formula.variables()

    def test_simplify_memoized(self):
        formula = pl.parse("(p & true) | (q & false)")
        assert formula.simplify() is formula.simplify()

    def test_pickle_roundtrip_preserves_identity(self):
        formula = pl.parse("(p & q) | !r")
        again = pickle.loads(pickle.dumps(formula))
        assert again is formula

    def test_copy_returns_self(self):
        formula = pl.parse("p & q")
        assert copy.copy(formula) is formula
        assert copy.deepcopy(formula) is formula

    def test_nodes_are_immutable(self):
        formula = pl.Var("p")
        try:
            formula.name = "q"
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Var should be immutable")


class TestSimplifyDedup:
    def test_and_dedupes_repeated_operands(self):
        p, q = pl.Var("p"), pl.Var("q")
        simplified = pl.And([p, q, p, q, p]).simplify()
        assert simplified == pl.And([p, q])

    def test_or_dedupes_repeated_operands(self):
        p, q = pl.Var("p"), pl.Var("q")
        simplified = pl.Or([p, q, p, q, p]).simplify()
        assert simplified == pl.Or([p, q])

    def test_dedup_is_order_preserving(self):
        p, q, r = pl.Var("p"), pl.Var("q"), pl.Var("r")
        assert pl.And([q, p, q, r, p]).simplify() == pl.And([q, p, r])

    def test_dedup_collapses_to_single_operand(self):
        p = pl.Var("p")
        assert pl.And([p, p, p]).simplify() is p
        assert pl.Or([p, p]).simplify() is p

    def test_nested_substitution_chain_stays_small(self):
        """The blow-up scenario: iterated substitution with shared parts."""
        formula = pl.Var("v0")
        for i in range(12):
            formula = pl.And([formula, formula, pl.Var(f"v{i + 1}")])
            formula = formula.simplify()
        # Without dedup this is 2^12 copies of v0; with it, a flat chain.
        assert len(formula.variables()) == 13
        assert isinstance(formula, pl.And)
        assert len(formula.operands) == 13


class TestCompiledEvaluators:
    INDEX = {"p": 0, "q": 1, "r": 2}

    def test_compile_mask_basic(self):
        fn = pl.compile_mask(pl.parse("(p & q) | !r"), self.INDEX)
        assert fn(0b011) is True
        assert fn(0b100) is False
        assert fn(0b111) is True

    def test_compile_mask_constants(self):
        assert pl.compile_mask(pl.TRUE, self.INDEX)(0) is True
        assert pl.compile_mask(pl.FALSE, self.INDEX)(0b111) is False

    def test_compile_mask_cached(self):
        formula = pl.parse("p | (q & r)")
        assert pl.compile_mask(formula, self.INDEX) is pl.compile_mask(
            formula, self.INDEX
        )

    def test_compile_row_sets_bits(self):
        row = pl.compile_row(
            ((1, pl.Var("p")), (2, pl.Var("q")), (4, pl.parse("p & q"))),
            self.INDEX,
        )
        assert row(0b00) == 0
        assert row(0b01) == 1
        assert row(0b10) == 2
        assert row(0b11) == 7

    def test_compile_row_empty(self):
        assert pl.compile_row((), self.INDEX)(0b111) == 0

    def test_compile_row_shares_subexpressions(self):
        shared = pl.parse("p & q & r")
        row = pl.compile_row(
            ((1, pl.And([shared, pl.Var("p")])), (2, pl.Not(shared))),
            self.INDEX,
        )
        assert row(0b111) == 1
        assert row(0b011) == 2
