"""Tests for datalog evaluation and sirups."""

import pytest

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic.cq import Atom, neq
from repro.logic.datalog import Program, Rule, Sirup
from repro.logic.terms import const, var

x, y, z = var("x"), var("y"), var("z")


def _edges(pairs):
    return {"E": Relation(RelationSchema("E", ("a", "b")), pairs)}


class TestRule:
    def test_safety(self):
        with pytest.raises(QueryError, match="unsafe"):
            Rule(Atom("T", (x, z)), [Atom("E", (x, y))])

    def test_as_query(self):
        rule = Rule(Atom("T", (x, y)), [Atom("E", (x, y))])
        assert rule.as_query().arity == 2

    def test_str(self):
        rule = Rule(Atom("T", (x, y)), [Atom("E", (x, y))])
        assert "T(x, y)" in str(rule)


class TestTransitiveClosure:
    @pytest.fixture
    def tc_program(self):
        return Program(
            [
                Rule(Atom("T", (x, y)), [Atom("E", (x, y))]),
                Rule(Atom("T", (x, z)), [Atom("E", (x, y)), Atom("T", (y, z))]),
            ]
        )

    def test_idb_edb_partition(self, tc_program):
        assert tc_program.idb_predicates() == {"T"}
        assert tc_program.edb_predicates() == {"E"}

    def test_chain(self, tc_program):
        result = tc_program.evaluate(_edges([(1, 2), (2, 3), (3, 4)]))
        assert result["T"] == {
            (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
        }

    def test_cycle(self, tc_program):
        result = tc_program.evaluate(_edges([(1, 2), (2, 1)]))
        assert result["T"] == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_empty_edb(self, tc_program):
        result = tc_program.evaluate(_edges([]))
        assert result["T"] == frozenset()

    def test_max_iterations_truncates(self, tc_program):
        result = tc_program.evaluate(
            _edges([(1, 2), (2, 3), (3, 4)]), max_iterations=1
        )
        assert result["T"] == {(1, 2), (2, 3), (3, 4)}


class TestComparisonsInRules:
    def test_inequality_body(self):
        program = Program(
            [
                Rule(
                    Atom("T", (x, y)),
                    [Atom("E", (x, y))],
                    [neq(x, y)],
                )
            ]
        )
        result = program.evaluate(_edges([(1, 1), (1, 2)]))
        assert result["T"] == {(1, 2)}


class TestSirup:
    def test_transitive_goal_reachable(self):
        rule = Rule(
            Atom("T", (x, z)), [Atom("T", (x, y)), Atom("E", (y, z))]
        )
        sirup = Sirup(
            rule,
            [("T", (1, 1)), ("E", (1, 2)), ("E", (2, 3))],
            ("T", (1, 3)),
        )
        assert sirup.accepts()

    def test_unreachable_goal(self):
        rule = Rule(
            Atom("T", (x, z)), [Atom("T", (x, y)), Atom("E", (y, z))]
        )
        sirup = Sirup(
            rule,
            [("T", (1, 1)), ("E", (2, 3))],
            ("T", (1, 3)),
        )
        assert not sirup.accepts()

    def test_edb_goal(self):
        rule = Rule(Atom("T", (x, y)), [Atom("E", (x, y))])
        sirup = Sirup(rule, [("E", (5, 6))], ("E", (5, 6)))
        assert sirup.accepts()
        assert not Sirup(rule, [("E", (5, 6))], ("E", (6, 5))).accepts()

    def test_double_recursion(self):
        # T(x,z) :- T(x,y), T(y,z): squaring reachability.
        rule = Rule(Atom("T", (x, z)), [Atom("T", (x, y)), Atom("T", (y, z))])
        facts = [("T", (1, 2)), ("T", (2, 3)), ("T", (3, 4))]
        assert Sirup(rule, facts, ("T", (1, 4))).accepts()
        assert not Sirup(rule, facts, ("T", (4, 1))).accepts()
