"""Tests for terms, substitutions and the partition enumerator."""

import pytest

from repro.logic.terms import (
    Constant,
    FreshVariableFactory,
    Variable,
    const,
    is_ground,
    partitions,
    term_value,
    var,
    vars_,
)


class TestTerms:
    def test_shorthands(self):
        assert var("x") == Variable("x")
        assert const(3) == Constant(3)
        assert vars_("x", "y") == (Variable("x"), Variable("y"))

    def test_term_value_constant(self):
        assert term_value(const("a"), {}) == "a"

    def test_term_value_variable(self):
        assert term_value(var("x"), {var("x"): 7}) == 7

    def test_term_value_unbound_raises(self):
        with pytest.raises(KeyError):
            term_value(var("x"), {})

    def test_is_ground(self):
        assert is_ground([const(1), const(2)])
        assert not is_ground([const(1), var("x")])


class TestFreshVariableFactory:
    def test_avoids_reserved(self):
        factory = FreshVariableFactory([var("_v0"), var("_v1")])
        fresh = factory.fresh()
        assert fresh.name not in {"_v0", "_v1"}

    def test_never_repeats(self):
        factory = FreshVariableFactory()
        names = {factory.fresh().name for _ in range(50)}
        assert len(names) == 50

    def test_rename_apart(self):
        factory = FreshVariableFactory([var("x")])
        mapping = factory.rename_apart([var("x"), var("y"), var("x")])
        assert set(mapping) == {var("x"), var("y")}
        assert len(set(mapping.values())) == 2

    def test_reserve(self):
        factory = FreshVariableFactory(prefix="z")
        factory.reserve([var("z0")])
        assert factory.fresh().name != "z0"


class TestPartitions:
    def test_counts_are_bell_numbers(self):
        bell = {0: 1, 1: 1, 2: 2, 3: 5, 4: 15}
        for n, expected in bell.items():
            assert len(list(partitions(list(range(n))))) == expected

    def test_partition_blocks_cover_items(self):
        items = ["a", "b", "c"]
        for partition in partitions(items):
            flattened = [x for block in partition for x in block]
            assert sorted(flattened) == sorted(items)

    def test_blocks_are_disjoint(self):
        for partition in partitions([1, 2, 3, 4]):
            seen = set()
            for block in partition:
                assert not (seen & set(block))
                seen |= set(block)
