"""Tests for propositional formulas: AST, parser, evaluation, substitution."""

import pytest

from repro.errors import QueryError
from repro.logic import pl


class TestEvaluation:
    def test_variable(self):
        assert pl.Var("x").evaluate({"x"})
        assert not pl.Var("x").evaluate(set())

    def test_constants(self):
        assert pl.TRUE.evaluate(set())
        assert not pl.FALSE.evaluate(set())

    def test_connectives(self):
        x, y = pl.Var("x"), pl.Var("y")
        assert (x & y).evaluate({"x", "y"})
        assert not (x & y).evaluate({"x"})
        assert (x | y).evaluate({"y"})
        assert (~x).evaluate(set())
        assert (x >> y).evaluate(set())  # false implies anything
        assert not (x >> y).evaluate({"x"})

    def test_nary_identities(self):
        assert pl.And(()).evaluate(set())  # empty conjunction is true
        assert not pl.Or(()).evaluate(set())  # empty disjunction is false

    def test_iff(self):
        f = pl.iff(pl.Var("x"), pl.Var("y"))
        assert f.evaluate(set())
        assert f.evaluate({"x", "y"})
        assert not f.evaluate({"x"})


class TestVariables:
    def test_collection(self):
        f = pl.parse("x & (y | !z)")
        assert f.variables() == {"x", "y", "z"}

    def test_constants_have_no_variables(self):
        assert pl.TRUE.variables() == frozenset()


class TestSubstitution:
    def test_variable_replacement(self):
        f = pl.Var("x") & pl.Var("y")
        g = f.substitute({"x": pl.TRUE})
        assert g.evaluate({"y"})
        assert not g.evaluate(set())

    def test_simultaneous(self):
        # x→y and y→x must swap, not chain.
        f = pl.Var("x") & pl.Not(pl.Var("y"))
        g = f.substitute({"x": pl.Var("y"), "y": pl.Var("x")})
        assert g.evaluate({"y"})
        assert not g.evaluate({"x"})

    def test_formula_replacement(self):
        f = pl.Var("x")
        g = f.substitute({"x": pl.Var("a") | pl.Var("b")})
        assert g.evaluate({"b"})


class TestSimplify:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("x & true", "x"),
            ("x & false", "false"),
            ("x | true", "true"),
            ("x | false", "x"),
            ("!!x", "x"),
            ("!true", "false"),
        ],
    )
    def test_identities(self, text, expected):
        assert str(pl.parse(text).simplify()) == expected

    def test_flattening(self):
        f = pl.And((pl.And((pl.Var("a"), pl.Var("b"))), pl.Var("c")))
        assert str(f.simplify()) == "a & b & c"

    def test_simplify_preserves_semantics(self):
        f = pl.parse("(x | false) & (true -> y) & !!z")
        g = f.simplify()
        for mask in range(8):
            env = {v for i, v in enumerate("xyz") if mask >> i & 1}
            assert f.evaluate(env) == g.evaluate(env)


class TestParser:
    def test_precedence(self):
        f = pl.parse("x | y & z")
        assert f.evaluate({"x"})
        assert not f.evaluate({"y"})
        assert f.evaluate({"y", "z"})

    def test_implication_right_associative(self):
        f = pl.parse("x -> y -> z")
        assert f.evaluate({"x"})  # x -> (y -> z) with y false

    def test_parentheses(self):
        f = pl.parse("(x | y) & z")
        assert not f.evaluate({"x"})
        assert f.evaluate({"x", "z"})

    def test_roundtrip_through_str(self):
        f = pl.parse("!x & (y | z)")
        g = pl.parse(str(f))
        for mask in range(8):
            env = {v for i, v in enumerate("xyz") if mask >> i & 1}
            assert f.evaluate(env) == g.evaluate(env)

    @pytest.mark.parametrize("bad", ["", "x &", "(x", "x y", "& x", "x @ y"])
    def test_syntax_errors(self, bad):
        with pytest.raises(QueryError):
            pl.parse(bad)


class TestHelpers:
    def test_conjoin_disjoin(self):
        assert str(pl.conjoin([])) == "true"
        assert str(pl.disjoin([])) == "false"
        assert pl.conjoin([pl.Var("x")]) == pl.Var("x")
