"""Tests for unions of conjunctive queries and composition."""

import pytest

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic.cq import Atom, ConjunctiveQuery, eq, neq
from repro.logic.terms import const, var
from repro.logic.ucq import UnionQuery, compose, compose_union

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def db():
    return {
        "E": Relation(RelationSchema("E", ("a", "b")), [(1, 2), (2, 3)]),
        "F": Relation(RelationSchema("F", ("a", "b")), [(2, 9)]),
    }


def _cq(relation):
    return ConjunctiveQuery((x, y), [Atom(relation, (x, y))])


class TestConstruction:
    def test_arity_inference(self):
        q = UnionQuery.of(_cq("E"), _cq("F"))
        assert q.arity == 2

    def test_mixed_arity_rejected(self):
        one = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        with pytest.raises(QueryError, match="mixed"):
            UnionQuery.of(one, _cq("F"))

    def test_empty_union_needs_arity(self):
        with pytest.raises(QueryError):
            UnionQuery(())
        q = UnionQuery.empty(3)
        assert q.arity == 3

    def test_union_operation(self):
        q = UnionQuery.of(_cq("E")).union(UnionQuery.of(_cq("F")))
        assert len(q) == 2


class TestEvaluation:
    def test_union_of_answers(self, db):
        q = UnionQuery.of(_cq("E"), _cq("F"))
        assert q.evaluate(db) == {(1, 2), (2, 3), (2, 9)}

    def test_empty_union_evaluates_empty(self, db):
        assert UnionQuery.empty(2).evaluate(db) == frozenset()


class TestSatisfiability:
    def test_any_disjunct(self):
        bad = ConjunctiveQuery((x,), [Atom("E", (x, x))], [neq(x, x)])
        good = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        assert UnionQuery.of(bad, good).is_satisfiable()
        assert not UnionQuery.of(bad).is_satisfiable()

    def test_satisfiable_disjuncts_drops_bad(self):
        bad = ConjunctiveQuery((x,), [Atom("E", (x, x))], [neq(x, x)])
        good = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        slim = UnionQuery.of(bad, good).satisfiable_disjuncts()
        assert len(slim) == 1


class TestContainment:
    def test_union_containment(self):
        sub = UnionQuery.of(_cq("E"))
        sup = UnionQuery.of(_cq("E"), _cq("F"))
        assert sub.contained_in(sup)
        assert not sup.contained_in(sub)

    def test_case_split_equivalence(self):
        # E(x,y) ≡ (E,x=y) ∪ (E,x≠y)
        whole = UnionQuery.of(_cq("E"))
        split = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("E", (x, y))], [eq(x, y)]),
            ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)]),
        )
        assert whole.equivalent_to(split)

    def test_arity_mismatch(self):
        with pytest.raises(QueryError):
            UnionQuery.empty(1).contained_in(UnionQuery.empty(2))


class TestMinimization:
    def test_drops_contained_disjunct(self):
        specific = ConjunctiveQuery(
            (x, y), [Atom("E", (x, y)), Atom("F", (x, z))]
        )
        q = UnionQuery.of(_cq("E"), specific)
        assert len(q.minimized()) == 1

    def test_drops_unsatisfiable_disjunct(self):
        bad = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, x)])
        q = UnionQuery.of(bad, _cq("E"))
        assert len(q.minimized()) == 1

    def test_minimized_is_equivalent(self):
        q = UnionQuery.of(
            _cq("E"),
            ConjunctiveQuery((x, y), [Atom("E", (x, y)), Atom("E", (x, z))]),
        )
        assert q.minimized().equivalent_to(q)


class TestComposition:
    def test_compose_inlines_definition(self, db):
        # Derived relation D(x,y) := E(x,z), F(z,y); query Q(x,y) :- D(x,y).
        definition = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("E", (x, z)), Atom("F", (z, y))], (), "D")
        )
        query = ConjunctiveQuery((x, y), [Atom("D", (x, y))])
        composed = compose(query, {"D": definition})
        assert composed.evaluate(db) == {(1, 9)}

    def test_compose_distributes_over_disjuncts(self, db):
        definition = UnionQuery.of(_cq("E"), _cq("F"))
        query = ConjunctiveQuery((x, y), [Atom("D", (x, y))])
        composed = compose(query, {"D": definition})
        assert len(composed) == 2
        assert composed.evaluate(db) == definition.evaluate(db)

    def test_compose_multiplies_choices(self, db):
        definition = UnionQuery.of(_cq("E"), _cq("F"))
        query = ConjunctiveQuery(
            (x, z), [Atom("D", (x, y)), Atom("D", (y, z))]
        )
        composed = compose(query, {"D": definition})
        # 2 x 2 disjunct choices, minus unsatisfiable ones (none here).
        assert len(composed) == 4
        # Semantics: D-join-D where D = E ∪ F.
        assert composed.evaluate(db) == {(1, 3), (1, 9)}

    def test_compose_keeps_base_atoms(self, db):
        definition = UnionQuery.of(_cq("E"))
        query = ConjunctiveQuery(
            (x, y), [Atom("D", (x, y)), Atom("F", (x, z))]
        )
        composed = compose(query, {"D": definition})
        assert composed.evaluate(db) == {(2, 3)}

    def test_compose_semantics_matches_materialization(self, db):
        # compose(Q, defs) == Q evaluated on db extended with D's answers.
        definition = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("E", (x, z)), Atom("E", (z, y))], (), "D")
        )
        query = ConjunctiveQuery((x,), [Atom("D", (x, y)), Atom("E", (x, z))])
        composed = compose(query, {"D": definition})
        materialized = dict(db)
        materialized["D"] = Relation(
            RelationSchema("D", ("a", "b")), definition.evaluate(db)
        )
        assert composed.evaluate(db) == query.evaluate(materialized)

    def test_compose_union(self, db):
        definition = UnionQuery.of(_cq("E"))
        query = UnionQuery.of(
            ConjunctiveQuery((x, y), [Atom("D", (x, y))]),
            _cq("F"),
        )
        composed = compose_union(query, {"D": definition})
        assert composed.evaluate(db) == {(1, 2), (2, 3), (2, 9)}

    def test_compose_arity_mismatch(self):
        definition = UnionQuery.of(ConjunctiveQuery((x,), [Atom("E", (x, y))]))
        query = ConjunctiveQuery((x, y), [Atom("D", (x, y))])
        with pytest.raises(QueryError, match="arity"):
            compose(query, {"D": definition})

    def test_compose_empty_definition_erases_disjunct(self, db):
        query = ConjunctiveQuery((x, y), [Atom("D", (x, y))])
        composed = compose(query, {"D": UnionQuery.empty(2)})
        assert len(composed) == 0
