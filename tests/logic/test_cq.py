"""Tests for conjunctive queries with equality and inequality."""

import pytest

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic.cq import Atom, ConjunctiveQuery, LabeledNull, eq, neq
from repro.logic.terms import const, var

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def edges():
    return {
        "E": Relation(
            RelationSchema("E", ("a", "b")), [(1, 2), (2, 3), (3, 3), (3, 1)]
        )
    }


class TestSafety:
    def test_safe_query(self):
        ConjunctiveQuery((x,), [Atom("E", (x, y))])

    def test_unsafe_head_variable(self):
        with pytest.raises(QueryError, match="unsafe"):
            ConjunctiveQuery((z,), [Atom("E", (x, y))])

    def test_unsafe_inequality_variable(self):
        with pytest.raises(QueryError, match="unsafe"):
            ConjunctiveQuery((x,), [Atom("E", (x, y))], [neq(z, x)])

    def test_equality_to_constant_makes_safe(self):
        # z is range-restricted by z = 'a'.
        ConjunctiveQuery((x, z), [Atom("E", (x, y))], [eq(z, const("a"))])

    def test_equality_to_atom_variable_makes_safe(self):
        ConjunctiveQuery((z,), [Atom("E", (x, y))], [eq(z, y)])

    def test_boolean_query(self):
        q = ConjunctiveQuery((), [Atom("E", (x, y))])
        assert q.arity == 0


class TestEvaluation:
    def test_projection(self, edges):
        q = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        assert q.evaluate(edges) == {(1,), (2,), (3,)}

    def test_join(self, edges):
        q = ConjunctiveQuery(
            (x, z), [Atom("E", (x, y)), Atom("E", (y, z))]
        )
        assert (1, 3) in q.evaluate(edges)
        assert (2, 3) in q.evaluate(edges)

    def test_constant_in_atom(self, edges):
        q = ConjunctiveQuery((y,), [Atom("E", (const(1), y))])
        assert q.evaluate(edges) == {(2,)}

    def test_constant_in_head(self, edges):
        q = ConjunctiveQuery((const("tag"), x), [Atom("E", (x, x))])
        assert q.evaluate(edges) == {("tag", 3)}

    def test_equality_atom(self, edges):
        q = ConjunctiveQuery((x,), [Atom("E", (x, y))], [eq(x, y)])
        assert q.evaluate(edges) == {(3,)}

    def test_inequality_atom(self, edges):
        q = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)])
        assert q.evaluate(edges) == {(1, 2), (2, 3), (3, 1)}

    def test_repeated_variable_in_atom(self, edges):
        q = ConjunctiveQuery((x,), [Atom("E", (x, x))])
        assert q.evaluate(edges) == {(3,)}

    def test_unknown_relation_raises(self, edges):
        q = ConjunctiveQuery((x,), [Atom("Nope", (x,))])
        with pytest.raises(QueryError, match="absent"):
            q.evaluate(edges)

    def test_boolean_holds(self, edges):
        q = ConjunctiveQuery((), [Atom("E", (const(1), const(2)))])
        assert q.holds(edges)
        q2 = ConjunctiveQuery((), [Atom("E", (const(2), const(1)))])
        assert not q2.holds(edges)


class TestSatisfiability:
    def test_plain_query_satisfiable(self):
        q = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        assert q.is_satisfiable()

    def test_contradictory_equality(self):
        q = ConjunctiveQuery(
            (x,), [Atom("E", (x, y))], [eq(x, const(1)), eq(x, const(2))]
        )
        assert not q.is_satisfiable()

    def test_inequality_on_same_variable(self):
        q = ConjunctiveQuery((x,), [Atom("E", (x, y))], [neq(x, x)])
        assert not q.is_satisfiable()

    def test_equality_then_inequality_conflict(self):
        q = ConjunctiveQuery(
            (x,), [Atom("E", (x, y))], [eq(x, y), neq(x, y)]
        )
        assert not q.is_satisfiable()

    def test_normalized_removes_equalities(self):
        q = ConjunctiveQuery((x, y), [Atom("E", (x, z))], [eq(y, z)])
        n = q.normalized()
        assert n is not None
        assert not n.equalities()


class TestContainment:
    def test_projection_containment(self):
        q1 = ConjunctiveQuery((x,), [Atom("E", (x, y)), Atom("E", (y, z))])
        q2 = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        assert q1.contained_in(q2)
        assert not q2.contained_in(q1)

    def test_equivalence_up_to_renaming(self):
        q1 = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        q2 = ConjunctiveQuery((z,), [Atom("E", (z, x))])
        assert q1.equivalent_to(q2)

    def test_redundant_atom_equivalence(self):
        q1 = ConjunctiveQuery((x,), [Atom("E", (x, y)), Atom("E", (x, z))])
        q2 = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        assert q1.equivalent_to(q2)

    def test_constant_containment(self):
        q1 = ConjunctiveQuery((x,), [Atom("E", (x, const(1)))])
        q2 = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        assert q1.contained_in(q2)
        assert not q2.contained_in(q1)

    def test_inequality_on_the_right_blocks_containment(self):
        # Q1(x) :- E(x,x) produces x=x rows; Q2 requires distinct endpoints.
        q1 = ConjunctiveQuery((x,), [Atom("E", (x, x))])
        q2 = ConjunctiveQuery((x,), [Atom("E", (x, y))], [neq(x, y)])
        assert not q1.contained_in(q2)
        assert q2.contained_in(
            ConjunctiveQuery((x,), [Atom("E", (x, y))])
        )

    def test_klug_constant_completeness(self):
        # Q1(x) :- E(x); Q2(x) :- E(x), x != 'a'.  NOT contained: take
        # E = {('a',)} — the variable can hit the other query's constant.
        q1 = ConjunctiveQuery((x,), [Atom("E1", (x,))])
        q2 = ConjunctiveQuery((x,), [Atom("E1", (x,))], [neq(x, const("a"))])
        assert not q1.contained_in(q2)
        assert q2.contained_in(q1)

    def test_inequality_pattern_containment_positive(self):
        # E(x,y), x≠y is contained in E(x,y) trivially, and also in the
        # union of itself with anything.
        q1 = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)])
        q2 = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)])
        assert q1.contained_in(q2)

    def test_union_containment(self):
        # E(x,y) ⊆ (E(x,y),x=y) ∪ (E(x,y),x≠y): every pattern lands in one.
        q = ConjunctiveQuery((x, y), [Atom("E", (x, y))])
        left = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [eq(x, y)])
        right = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)])
        assert q.contained_in_union([left, right])
        assert not q.contained_in(left)
        assert not q.contained_in(right)

    def test_arity_mismatch(self):
        q1 = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        q2 = ConjunctiveQuery((x, y), [Atom("E", (x, y))])
        with pytest.raises(QueryError, match="arities"):
            q1.contained_in(q2)


class TestCanonical:
    def test_canonical_instance_shape(self):
        q = ConjunctiveQuery((x,), [Atom("E", (x, y))], [neq(x, y)])
        facts, head = q.canonical_instance()
        assert set(facts) == {"E"}
        (row,) = facts["E"]
        assert all(isinstance(v, LabeledNull) for v in row)
        assert head[0] in row

    def test_unsatisfiable_has_no_canonical(self):
        q = ConjunctiveQuery((x,), [Atom("E", (x, x))], [neq(x, x)])
        assert q.canonical_instance() is None

    def test_equality_patterns_respect_inequalities(self):
        q = ConjunctiveQuery((x, y), [Atom("E", (x, y))], [neq(x, y)])
        for facts, head in q.equality_patterns():
            assert head[0] != head[1]


class TestMinimization:
    def test_removes_redundant_atom(self):
        q = ConjunctiveQuery((x,), [Atom("E", (x, y)), Atom("E", (x, z))])
        minimized = q.minimized()
        assert len(minimized.atoms) == 1
        assert minimized.equivalent_to(q)

    def test_keeps_core(self):
        q = ConjunctiveQuery((x, z), [Atom("E", (x, y)), Atom("E", (y, z))])
        assert len(q.minimized().atoms) == 2

    def test_inequality_queries_left_alone(self):
        q = ConjunctiveQuery(
            (x,), [Atom("E", (x, y)), Atom("E", (x, z))], [neq(x, y)]
        )
        assert q.minimized() == q


class TestRenaming:
    def test_rename_preserves_semantics(self, edges):
        q = ConjunctiveQuery((x,), [Atom("E", (x, y))], [neq(x, y)])
        renamed = q.rename({x: var("u"), y: var("v")})
        assert renamed.evaluate(edges) == q.evaluate(edges)

    def test_rename_apart_disjoint(self):
        from repro.logic.terms import FreshVariableFactory

        q = ConjunctiveQuery((x,), [Atom("E", (x, y))])
        fresh = q.rename_apart(FreshVariableFactory(q.variables()))
        assert not (fresh.variables() & q.variables())
