"""Tests for the textual query syntax."""

import pytest

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import QueryError
from repro.logic.parsing import (
    parse_cq,
    parse_fo,
    parse_fo_query,
    parse_program,
    parse_rule,
    parse_ucq,
)
from repro.logic.terms import Constant, Variable


@pytest.fixture
def db():
    return {
        "E": Relation(RelationSchema("E", ("a", "b")), [(1, 2), (2, 3), (3, 3)]),
        "F": Relation(RelationSchema("F", ("a",)), [("tag",)]),
    }


class TestCQParsing:
    def test_basic(self, db):
        q = parse_cq("Q(x, y) :- E(x, y)")
        assert q.name == "Q"
        assert q.evaluate(db) == {(1, 2), (2, 3), (3, 3)}

    def test_join_and_inequality(self, db):
        q = parse_cq("Q(x, z) :- E(x, y), E(y, z), x != z")
        assert q.evaluate(db) == {(1, 3), (2, 3)}

    def test_string_constant(self, db):
        q = parse_cq("Q(x) :- F(x), x = 'tag'")
        assert q.evaluate(db) == {("tag",)}

    def test_numeric_constant_in_atom(self, db):
        q = parse_cq("Q(y) :- E(1, y)")
        assert q.evaluate(db) == {(2,)}

    def test_head_constants(self, db):
        q = parse_cq("Q('lbl', x) :- E(x, x)")
        assert q.evaluate(db) == {("lbl", 3)}

    def test_equality_binding(self, db):
        q = parse_cq("Q(x, w) :- E(x, y), w = y")
        assert (1, 2) in q.evaluate(db)

    @pytest.mark.parametrize(
        "bad",
        [
            "Q(x)",  # no body
            "Q(x) :- E(x",  # unbalanced
            "Q(x) :- x",  # bare term
            ":- E(x, y)",  # no head
            "Q(x) :- E(x, y), x < y",  # unsupported operator
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(QueryError):
            parse_cq(bad)


class TestUCQParsing:
    def test_two_disjuncts(self, db):
        q = parse_ucq("Q(x) :- E(x, y) ; Q(x) :- F(x)")
        assert q.evaluate(db) == {(1,), (2,), (3,), ("tag",)}

    def test_head_mismatch_rejected(self):
        with pytest.raises(QueryError, match="different head"):
            parse_ucq("Q(x) :- E(x, y) ; P(x) :- E(x, y)")


class TestDatalogParsing:
    def test_rule(self):
        rule = parse_rule("T(x, z) :- T(x, y), E(y, z)")
        assert rule.head.relation == "T"
        assert len(rule.body) == 2

    def test_program(self, db):
        program = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- E(x, y), T(y, z)
            """
        )
        result = program.evaluate({"E": db["E"]})
        assert (1, 3) in result["T"]

    def test_comment_lines_skipped(self):
        program = parse_program("% closure\nT(x, y) :- E(x, y)")
        assert len(program) == 1


class TestFOParsing:
    def test_evaluation_matches_ast(self, db):
        q = parse_fo_query(
            "Q(x) := exists y . (E(x, y) and not x = y)"
        )
        assert q.evaluate(db) == {(1,), (2,)}

    def test_quantifier_list(self, db):
        sentence = parse_fo("exists x, y . (E(x, y) and x != y)")
        from repro.logic.fo import FOQuery

        assert FOQuery((), sentence).holds(db)

    def test_forall(self, db):
        # Every node with an out-edge to 3... only 2 and 3 point at 3.
        q = parse_fo_query(
            "Q(x) := exists y . E(x, y) and forall y . (not E(x, y) or y = 3)"
        )
        assert q.evaluate(db) == {(2,), (3,)}

    def test_precedence_and_before_or(self, db):
        f = parse_fo("E(1, 2) and E(9, 9) or E(2, 3)")
        from repro.logic.fo import FOQuery

        assert FOQuery((), f).holds(db)  # (false) or true

    def test_parentheses(self, db):
        f = parse_fo("E(1, 2) and (E(9, 9) or E(2, 3))")
        from repro.logic.fo import FOQuery

        assert FOQuery((), f).holds(db)

    def test_head_must_be_variables(self):
        with pytest.raises(QueryError, match="variables"):
            parse_fo_query("Q('c') := E(x, y)")

    def test_travel_style_synthesis(self, db):
        # The ψ0 preference pattern, parsed from text.
        q = parse_fo_query(
            "Psi(x) := E(x, x) or (not exists u . E(u, u)) and F(x)"
        )
        assert q.evaluate(db) == {(3,)}
