"""``python -m repro.delta`` end to end (in-process via main())."""

from __future__ import annotations

import json

import pytest

from repro.delta.__main__ import main

MENU = "repro.workloads.editing:menu_editing_trace"
FLIP = "repro.workloads.editing:flip_trace"
RENAME = "repro.workloads.editing:rename_trace"
GROW = "repro.workloads.editing:growing_trace"


def test_diff_prints_per_step_deltas(capsys):
    assert main(["diff", "--trace", FLIP]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 2
    assert all("local" in line and "w1" in line for line in out)


def test_diff_json_records_parse(capsys):
    assert main(["diff", "--trace", GROW, "--json"]) == 0
    (line,) = capsys.readouterr().out.strip().splitlines()
    record = json.loads(line)
    assert record["alphabet_changed"] is True
    assert record["step"] == 1


def test_replay_menu_is_fully_incremental(capsys):
    assert (
        main(
            [
                "replay",
                "--trace", MENU,
                "--compare",
                "--require-warm", "3",
                "--json",
            ]
        )
        == 0
    )
    lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    summary = lines[-1]["_summary"]
    assert summary["incremental_rechecks"] == summary["rechecks"]
    steps = [r for r in lines if "mode" in r and r["step"] > 0]
    assert all(r["mode"] in ("replay", "warm", "cached") for r in steps)
    assert all(r["verdict"] == r["expected"] for r in steps if "expected" in r)


def test_replay_flip_verdicts_match_scratch(capsys):
    assert main(["replay", "--trace", FLIP, "--compare", "--json"]) == 0
    lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    verdicts = [r["verdict"] for r in lines if "step" in r and r["step"] > 0]
    assert verdicts == ["no", "yes"]


def test_replay_rename_is_cached(capsys):
    assert main(["replay", "--trace", RENAME, "--json"]) == 0
    lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    modes = [r["mode"] for r in lines if "step" in r and r["step"] > 0]
    assert set(modes) == {"cached"}


def test_require_warm_fails_when_unmet(capsys):
    # growing_trace's single edit forces the full path — no warm work.
    assert main(["replay", "--trace", GROW, "--require-warm", "1"]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_trace_factory_args_forwarded(capsys):
    assert (
        main(["diff", "--trace", MENU, "--arg", "4", "--arg", "3", "--json"])
        == 0
    )
    lines = capsys.readouterr().out.strip().splitlines()
    # menu_editing_trace(4, 3) → default 6 edits still apply (arg 3 is
    # `length`); one JSON record per consecutive pair.
    assert len(lines) == 6


def test_disallowed_trace_module_rejected():
    with pytest.raises((SystemExit, ValueError)):
        main(["diff", "--trace", "os:getcwd"])


def test_cache_dir_persists_snapshots(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert (
        main(["replay", "--trace", MENU, "--cache-dir", cache_dir]) == 0
    )
    capsys.readouterr()
    from repro.serve.store import Store

    with Store(str(tmp_path / "cache" / "answers.sqlite3")) as store:
        assert store.search_state_count() >= 1
        assert store.answer_count() >= 1
