"""Hypothesis property: incremental re-check == from-scratch solve.

Random edit scripts over random PL services, replayed through one
:class:`repro.delta.Session`.  The contract is *verdict* equality plus
witness validity — not full ``Answer`` equality, because a replayed
re-check legitimately keeps the previous witness while a scratch solve
may find a different (equally valid) one.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import nonempty_pl, validate_pl
from repro.core.run import run_pl
from repro.delta import Session
from repro.workloads.editing import replace_rule
from repro.workloads.random_sws import random_pl_sws


@st.composite
def edit_scripts(draw):
    """A base service plus 1–4 single-state edits borrowed from a donor.

    Swapping in a donor state's (rule, synthesis) pair keeps the script
    well-formed (targets name the same state set) while freely changing
    guards, branching, and finality — including edits that change the
    verdict or shrink the inspected alphabet (which forces the full
    path; the property holds for every mode).
    """
    n_states = draw(st.integers(3, 6))
    recursive = draw(st.booleans())
    base = random_pl_sws(
        draw(st.integers(0, 150)), n_states=n_states, recursive=recursive
    )
    donor = random_pl_sws(
        draw(st.integers(151, 300)), n_states=n_states, recursive=recursive
    )
    states = sorted(base.states)
    script = [base]
    current = base
    for step in range(draw(st.integers(1, 4))):
        state = draw(st.sampled_from(states))
        current = replace_rule(
            current,
            state,
            rule=donor.transitions[state],
            synthesis=donor.synthesis.get(state),
            name=f"v{step + 1}",
        )
        script.append(current)
    return script


@given(edit_scripts())
@settings(max_examples=40, deadline=None)
def test_incremental_nonempty_matches_scratch(script):
    session = Session(script[0])
    session.check()
    for version in script[1:]:
        session.edit(version)
        result = session.recheck()
        scratch = nonempty_pl(version)
        assert result.answer.verdict is scratch.verdict
        if result.answer.is_yes:
            assert run_pl(version, list(result.answer.witness)).output


@given(edit_scripts(), st.booleans())
@settings(max_examples=20, deadline=None)
def test_incremental_validate_matches_scratch(script, output):
    session = Session(script[0], "validate_pl", output=output)
    session.check()
    for version in script[1:]:
        session.edit(version)
        result = session.recheck()
        scratch = validate_pl(version, output=output)
        assert result.answer.verdict is scratch.verdict
        if result.answer.is_yes:
            assert run_pl(version, list(result.answer.witness)).output is output
