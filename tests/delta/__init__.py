"""Tests for repro.delta — incremental re-solving for edited services."""
