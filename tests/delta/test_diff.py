"""Structural deltas: sub-fingerprint trees, classification, cones."""

from __future__ import annotations

from repro.delta.diff import affected_cone, compute_delta
from repro.serve.fingerprint import fingerprint, sub_fingerprints
from repro.workloads.editing import (
    flip_trace,
    growing_trace,
    menu_editing_trace,
    rename_trace,
    replace_rule,
)
from repro.workloads.pl_services import HASH, word_service
from repro.workloads.random_sws import random_pl_sws


class TestSubFingerprints:
    def test_root_matches_whole_instance_fingerprint_equality(self):
        a = random_pl_sws(3, n_states=5)
        b = random_pl_sws(3, n_states=5)
        c = random_pl_sws(4, n_states=5)
        assert sub_fingerprints(a).root == sub_fingerprints(b).root
        assert (fingerprint(a) == fingerprint(c)) == (
            sub_fingerprints(a).root == sub_fingerprints(c).root
        )
        assert sub_fingerprints(a).root != sub_fingerprints(c).root

    def test_rename_is_invariant(self):
        base, renamed = rename_trace(steps=1)[:2]
        assert base.name != renamed.name
        assert sub_fingerprints(base).root == sub_fingerprints(renamed).root

    def test_leaf_digests_localize_the_edit(self):
        trace = menu_editing_trace(edits=1)
        base_tree, new_tree = (sub_fingerprints(sws) for sws in trace)
        changed = base_tree.changed_states(new_tree)
        assert len(changed) == 1
        (state,) = changed
        for other, digest in base_tree.states.items():
            if other != state:
                assert new_tree.states[other] == digest

    def test_changed_states_covers_one_sided_states(self):
        base = word_service(["a", HASH], "ab")
        grown = word_service(["a", "b", HASH], "ab")
        tree, grown_tree = sub_fingerprints(base), sub_fingerprints(grown)
        # States present on only one side count as changed.
        assert set(grown.states) - set(base.states) <= set(
            tree.changed_states(grown_tree)
        )


class TestComputeDelta:
    def test_identical_versions_are_empty(self):
        sws = random_pl_sws(7)
        delta = compute_delta(sws, sws)
        assert delta.is_empty and not delta.is_local
        assert not delta.invalidates(None)
        assert not delta.invalidates(frozenset(sws.states))

    def test_rename_only_is_empty(self):
        base, renamed = rename_trace(steps=1)[:2]
        assert compute_delta(base, renamed).is_empty

    def test_single_rule_edit_is_local(self):
        base, edited = menu_editing_trace(edits=1)
        delta = compute_delta(base, edited)
        assert delta.is_local and not delta.is_empty
        assert len(delta.changed_states) == 1
        (state,) = delta.changed_states
        assert delta.invalidates(frozenset({state}))
        assert delta.invalidates(None)  # global support
        assert not delta.invalidates(frozenset(base.states) - {state})

    def test_added_and_removed_states_are_global(self):
        short = word_service(["a", HASH], "ab")
        long = word_service(["a", "b", HASH], "ab")
        delta = compute_delta(short, long)
        assert not delta.is_local and not delta.is_empty
        assert delta.added_states
        assert delta.invalidates(frozenset({"w0"}))
        reverse = compute_delta(long, short)
        assert reverse.removed_states == delta.added_states

    def test_alphabet_growth_is_global(self):
        base, grown = growing_trace()
        delta = compute_delta(base, grown)
        assert delta.alphabet_changed and not delta.is_local

    def test_flip_edit_is_local_both_ways(self):
        base, dead, back = flip_trace()
        assert compute_delta(base, dead).is_local
        assert compute_delta(dead, back).is_local
        # Restoring the guard returns to the original root.
        assert compute_delta(base, back).is_empty


class TestAffectedCone:
    def test_chain_cone_is_the_prefix(self):
        sws = word_service(["a", "b", "c", HASH], "abc")
        cone = affected_cone(sws, frozenset({"w1"}))
        assert "w0" in cone and "w1" in cone
        assert "w2" not in cone and "w3" not in cone

    def test_cone_of_start_is_start(self):
        sws = word_service(["a", HASH], "ab")
        assert affected_cone(sws, frozenset({sws.start})) == {sws.start}

    def test_edit_outside_cone_preserves_leaf_digests(self):
        # The cone is diagnostic; the Merkle tree is authoritative.  An
        # edit to one branch leaves every other branch's digest intact.
        trace = menu_editing_trace(branches=4, edits=1)
        tree0, tree1 = (sub_fingerprints(sws) for sws in trace)
        changed = compute_delta(*trace, tree0, tree1).changed_states
        cone = affected_cone(trace[1], changed)
        assert changed <= cone
        for state in set(trace[0].states) - cone:
            assert tree0.states[state] == tree1.states[state]


def test_rule_object_sharing_hits_the_digest_memo():
    """Edited copies share rule objects, so leaf digests are memo hits."""
    import importlib

    # `repro.serve` re-exports the `fingerprint` *function*, which
    # shadows the submodule on attribute-style imports.
    fp_mod = importlib.import_module("repro.serve.fingerprint")

    base = menu_editing_trace(edits=0)[0]
    sub_fingerprints(base)  # prime the memo
    before = len(fp_mod._STATE_DIGEST_MEMO)
    edited = replace_rule(base, base.start, name="copy")
    sub_fingerprints(edited)
    after = len(fp_mod._STATE_DIGEST_MEMO)
    assert after == before  # every leaf came out of the memo
