"""Session lifecycle: cache/store wiring, cold restarts, service hook."""

from __future__ import annotations

import pytest

from repro.analysis import nonempty_pl
from repro.delta import Session
from repro.serve.cache import AnswerCache
from repro.serve.fingerprint import job_fingerprint
from repro.serve.scheduler import SolverService
from repro.workloads.editing import menu_editing_trace
from repro.workloads.scaling import pl_counter_sws


@pytest.fixture
def cache(tmp_path):
    cache = AnswerCache(directory=str(tmp_path / "cache"))
    yield cache
    cache.close()


class TestPersistence:
    def test_decided_answers_flow_into_the_cache(self, cache):
        trace = menu_editing_trace(edits=2)
        session = Session(trace[0], cache=cache)
        session.check()
        key = job_fingerprint("nonempty_pl", (trace[0],), {})
        assert cache.get(key, "nonempty_pl") is not None
        session.edit(trace[1])
        session.recheck()
        edited_key = job_fingerprint("nonempty_pl", (trace[1],), {})
        assert edited_key != key
        assert cache.get(edited_key, "nonempty_pl") is not None

    def test_snapshots_persist_in_the_store(self, cache):
        sws = menu_editing_trace(edits=0)[0]
        session = Session(sws, cache=cache)
        session.check()
        assert cache.store.search_state_count() >= 1
        hit = cache.store.get_search_state("nonempty_pl", session.fingerprint)
        assert hit is not None and hit.root == session.tree.root

    def test_cold_reopen_rechecks_incrementally(self, cache):
        trace = menu_editing_trace(edits=1)
        Session(trace[0], cache=cache).check()
        # A new Session (fresh process in real life) restores the
        # snapshot from the store: no AFA yet, but the edit still avoids
        # the full path because the snapshot carries the witness.
        reopened = Session(trace[0], cache=cache)
        answer = reopened.check()
        assert answer is not None and answer.is_yes
        assert reopened.state is not None
        reopened.edit(trace[1])
        result = reopened.recheck()
        assert result.mode in ("replay", "warm")
        assert result.answer.verdict is nonempty_pl(trace[1]).verdict

    def test_stale_snapshot_for_other_version_is_ignored(self, cache):
        trace = menu_editing_trace(edits=1)
        first = Session(trace[0], cache=cache)
        first.check()
        # Same procedure, different version: fingerprints differ, so the
        # store lookup misses and check() solves fresh.
        other = Session(trace[1], cache=cache)
        assert other.fingerprint != first.fingerprint
        assert other.check().verdict is nonempty_pl(trace[1]).verdict


class TestSessionBehavior:
    def test_edit_is_idempotent_before_recheck(self):
        trace = menu_editing_trace(edits=2)
        session = Session(trace[0])
        session.check()
        session.edit(trace[1])
        delta = session.edit(trace[2])  # replaces the staged version
        assert delta.base_root == session.tree.root
        result = session.recheck()
        assert session.current is trace[2]
        assert result.answer.verdict is nonempty_pl(trace[2]).verdict

    def test_recheck_without_edit_is_cached(self):
        sws = menu_editing_trace(edits=0)[0]
        session = Session(sws)
        first = session.check()
        result = session.recheck()
        assert result.mode == "cached" and result.answer is first

    def test_recheck_before_check_solves_first(self):
        trace = menu_editing_trace(edits=1)
        session = Session(trace[0])
        session.edit(trace[1])
        result = session.recheck()  # implicit initial check
        assert result.answer.verdict is nonempty_pl(trace[1]).verdict
        assert session.rechecks == 1

    def test_kwargs_are_part_of_the_fingerprint(self):
        sws = menu_editing_trace(edits=0)[0]
        plain = Session(sws, "validate_pl", output=True)
        negated = Session(sws, "validate_pl", output=False)
        assert plain.fingerprint != negated.fingerprint

    def test_stats_shape(self):
        trace = menu_editing_trace(edits=1)
        session = Session(trace[0])
        session.check()
        session.edit(trace[1])
        session.recheck()
        stats = session.stats()
        assert stats["rechecks"] == 1
        assert sum(stats["modes"].values()) == 1
        assert stats["procedure"] == "nonempty_pl"
        assert stats["states"] == len(trace[1].states)


class TestServiceHook:
    def test_service_session_shares_the_cache(self, tmp_path):
        service = SolverService(cache=AnswerCache(directory=str(tmp_path)))
        try:
            trace = menu_editing_trace(edits=1)
            session = service.session(trace[0])
            session.check()
            session.edit(trace[1])
            session.recheck()
            # The session published under the scheduler's fingerprints:
            # submitting the same edited instance is a pure cache hit.
            handle = service.submit("nonempty_pl", trace[1])
            service.drain()
            assert handle.result().is_yes
            assert handle.from_cache
        finally:
            service.close()

    def test_service_session_rejects_unsupported(self, tmp_path):
        from repro.delta import DeltaError

        service = SolverService()
        try:
            with pytest.raises(DeltaError):
                service.session(pl_counter_sws(3), "equivalent_pl")
        finally:
            service.close()
