"""Delta engine: re-check modes, patched rows, and soundness edges."""

from __future__ import annotations

import pytest

from repro.analysis import nonempty_pl, validate_pl
from repro.automata.afa import patch_engine
from repro.core.pl_semantics import pair_states, to_afa, to_afa_incremental
from repro.core.run import run_pl
from repro.delta import DeltaError, Session, compute_delta
from repro.workloads.editing import (
    flip_trace,
    growing_trace,
    menu_editing_trace,
    rename_trace,
    replace_rule,
)
from repro.workloads.random_sws import random_pl_sws
from repro.workloads.scaling import pl_counter_sws


def _scratch_verdicts(trace):
    return [nonempty_pl(sws).verdict for sws in trace]


class TestRecheckModes:
    def test_menu_trace_rechecks_incrementally(self):
        trace = menu_editing_trace(edits=5)
        session = Session(trace[0])
        assert session.check().is_yes
        expected = _scratch_verdicts(trace)
        for step, version in enumerate(trace[1:], start=1):
            delta = session.edit(version)
            assert delta.is_local
            result = session.recheck()
            assert result.mode in ("replay", "warm")
            assert result.answer.verdict is expected[step]
            if result.answer.is_yes:
                assert run_pl(version, list(result.answer.witness)).output
        assert session.stats()["incremental_rechecks"] == 5
        assert session.stats()["modes"].get("full", 0) == 0

    def test_rename_only_edit_invalidates_nothing(self):
        trace = rename_trace(steps=2)
        session = Session(trace[0])
        first = session.check()
        for version in trace[1:]:
            session.edit(version)
            result = session.recheck()
            assert result.mode == "cached"
            assert result.delta.is_empty
            assert result.answer is first
            # Every snapshot component survives a rename.
            assert set(result.surviving) == {
                "answer", "witness", "reached", "frontier",
                "rows", "quotient", "clauses",
            }

    def test_yes_to_no_flip_is_sound(self):
        """A stale YES frontier must not leak into the dead version."""
        base, dead, back = flip_trace()
        session = Session(base)
        assert session.check().is_yes
        session.edit(dead)
        no = session.recheck()
        assert no.mode == "warm"  # witness replay fails, search reruns
        assert no.answer.is_no
        session.edit(back)
        yes = session.recheck()
        assert yes.answer.is_yes
        assert run_pl(back, list(yes.answer.witness)).output

    def test_alphabet_growth_forces_full_resolve(self):
        base, grown = growing_trace()
        session = Session(base)
        session.check()
        delta = session.edit(grown)
        assert delta.alphabet_changed
        result = session.recheck()
        assert result.mode == "full"
        assert result.answer.verdict is nonempty_pl(grown).verdict

    def test_state_count_change_forces_full_resolve(self):
        from repro.workloads.pl_services import HASH, word_service

        base = word_service(["a", HASH], "ab")
        longer = word_service(["a", "b", HASH], "ab")
        session = Session(base)
        session.check()
        session.edit(longer)
        result = session.recheck()
        assert result.mode == "full"
        assert result.answer.is_yes

    def test_resume_continues_a_tripped_search(self):
        # Guards only check at the every-256-pop checkpoints, so the
        # counter must be big enough to reach one before finishing.
        bits = 10
        sws = pl_counter_sws(bits)
        session = Session(sws, budget=30)  # trips at the first checkpoint
        first = session.check()
        assert first.is_unknown
        result = session.recheck(budget=10**8)
        assert result.mode == "resume"
        assert result.answer.is_yes
        # The counter's unique witness; run_pl replay is skipped here
        # because forward simulation of the counter is exponential.
        assert len(result.answer.witness) == 2**bits

    def test_recheck_after_resume_is_decided_and_cached(self):
        sws = pl_counter_sws(9)
        session = Session(sws, budget=5)
        assert session.check().is_unknown
        assert session.recheck(budget=10**8).answer.is_yes
        again = session.recheck()
        assert again.mode == "cached" and again.answer.is_yes


class TestValidate:
    def test_validate_pl_rechecks_both_polarities(self):
        trace = menu_editing_trace(edits=3)
        for output in (True, False):
            session = Session(trace[0], "validate_pl", output=output)
            session.check()
            for version in trace[1:]:
                session.edit(version)
                result = session.recheck()
                scratch = validate_pl(version, output=output)
                assert result.answer.verdict is scratch.verdict
                assert result.mode != "full"

    def test_unsupported_procedure_is_rejected(self):
        with pytest.raises(DeltaError):
            Session(random_pl_sws(0), "equivalent_pl")


class TestIncrementalAFA:
    def _edited_pair(self, seed=11):
        base = random_pl_sws(seed, n_states=5, n_variables=2)
        donor = random_pl_sws(seed + 50, n_states=5, n_variables=2)
        state = sorted(base.states)[2]
        edited = replace_rule(
            base,
            state,
            rule=donor.transitions[state],
            synthesis=donor.synthesis.get(state),
            name="edited",
        )
        return base, edited, state

    def test_incremental_rebuild_matches_scratch(self):
        base, edited, state = self._edited_pair()
        delta = compute_delta(base, edited)
        if not delta.is_local:
            pytest.skip("donor edit changed the alphabet for this seed")
        base_afa = to_afa(base)
        incremental = to_afa_incremental(
            edited, base, base_afa, delta.changed_states
        )
        scratch = to_afa(edited)
        assert incremental is not None
        assert incremental.states == scratch.states
        assert incremental.finals == scratch.finals
        assert set(incremental.transitions) == set(scratch.transitions)
        for key, formula in scratch.transitions.items():
            assert incremental.transitions[key] == formula

    def test_incremental_rebuild_refuses_layout_changes(self):
        base, grown = growing_trace()
        base_afa = to_afa(base)
        assert (
            to_afa_incremental(grown, base, base_afa, frozenset({"w1"}))
            is None
        )

    def test_patched_engine_rows_match_full_compile(self):
        base, edited, state = self._edited_pair(seed=23)
        delta = compute_delta(base, edited)
        if not delta.is_local:
            pytest.skip("donor edit changed the alphabet for this seed")
        base_afa = to_afa(base)
        base_engine = base_afa._engine()
        incremental = to_afa_incremental(
            edited, base, base_afa, delta.changed_states
        )
        assert incremental is not None
        dirty = {
            pair for s in delta.changed_states for pair in pair_states(s)
        }
        patched = patch_engine(base_engine, incremental, dirty)
        assert patched is not None
        full = to_afa(edited)._engine()
        assert patched.order == full.order
        assert patched.final_mask == full.final_mask
        n = len(full.order)
        masks = [0, (1 << n) - 1, full.final_mask]
        masks += [(0x9E3779B9 * i) & ((1 << n) - 1) for i in range(1, 40)]
        for symbol in full.reps:
            f_row = full.rows[full.rep_of[symbol]]
            p_row = patched.rows[patched.rep_of[symbol]]
            for mask in masks:
                assert p_row(mask) == f_row(mask)
