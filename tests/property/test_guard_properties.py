"""Soundness of budget-tripped answers (Hypothesis).

Two properties the guard must never violate:

* a tripped guard only ever *weakens* an answer to UNKNOWN — it never
  flips a YES to NO or vice versa, so bounded runs stay sound;
* an untripped guard is invisible: the guarded answer is identical to
  the unguarded one, witnesses included.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.equivalence import equivalent_pl
from repro.analysis.nonemptiness import nonempty_pl
from repro.analysis.verdict import Verdict
from repro.guard import Guard
from repro.workloads.random_sws import random_pl_sws

seeds = st.integers(min_value=0, max_value=60)
tight_budgets = st.integers(min_value=1, max_value=64)


class TestTrippedAnswersNeverContradict:
    @given(seed=seeds, budget=tight_budgets)
    @settings(max_examples=15, deadline=None)
    def test_bounded_nonemptiness_is_sound(self, seed, budget):
        sws = random_pl_sws(seed, n_states=3, n_variables=2)
        unbounded = nonempty_pl(sws)
        bounded = nonempty_pl(sws, guard=Guard(step_budget=budget))
        assert bounded.verdict in (unbounded.verdict, Verdict.UNKNOWN)

    @given(seed=seeds, budget=tight_budgets)
    @settings(max_examples=15, deadline=None)
    def test_bounded_equivalence_is_sound(self, seed, budget):
        tau1 = random_pl_sws(seed, n_states=3, n_variables=2)
        tau2 = random_pl_sws(seed + 1, n_states=3, n_variables=2)
        unbounded = equivalent_pl(tau1, tau2)
        bounded = equivalent_pl(tau1, tau2, guard=budget)  # legacy int spec
        assert bounded.verdict in (unbounded.verdict, Verdict.UNKNOWN)


class TestUntrippedGuardsAreInvisible:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_generous_guard_changes_nothing(self, seed):
        sws = random_pl_sws(seed, n_states=3, n_variables=2)
        plain = nonempty_pl(sws)
        guarded_answer = nonempty_pl(sws, guard=Guard(step_budget=10**9))
        assert guarded_answer.verdict is plain.verdict
        assert guarded_answer.witness == plain.witness

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_generous_equivalence_guard_changes_nothing(self, seed):
        tau1 = random_pl_sws(seed, n_states=3, n_variables=2)
        tau2 = random_pl_sws(seed + 7, n_states=3, n_variables=2)
        plain = equivalent_pl(tau1, tau2)
        guarded_answer = equivalent_pl(
            tau1, tau2, guard=Guard(deadline_s=3600.0, step_budget=10**9)
        )
        assert guarded_answer.verdict is plain.verdict
        assert guarded_answer.witness == plain.witness
