"""Hypothesis property tests for the automata stack."""

from hypothesis import given, settings, strategies as st

from repro.automata.regex import Concat, Epsilon, Regex, Star, Sym, Union_

ALPHABET = ["a", "b"]


@st.composite
def regexes(draw, depth=3) -> Regex:
    if depth == 0 or draw(st.booleans()):
        if draw(st.integers(0, 4)) == 0:
            return Epsilon()
        return Sym(draw(st.sampled_from(ALPHABET)))
    kind = draw(st.sampled_from(["concat", "union", "star"]))
    if kind == "star":
        return Star(draw(regexes(depth=depth - 1)))
    parts = draw(st.lists(regexes(depth=depth - 1), min_size=2, max_size=3))
    return Concat(parts) if kind == "concat" else Union_(parts)


def words(max_size=5):
    return st.lists(st.sampled_from(ALPHABET), max_size=max_size)


class TestDeterminization:
    @given(regexes(), words())
    @settings(max_examples=80, deadline=None)
    def test_dfa_equals_nfa(self, regex, word):
        nfa = regex.to_nfa(ALPHABET)
        dfa = nfa.determinize()
        assert dfa.accepts(word) == nfa.accepts(word)

    @given(regexes(), words())
    @settings(max_examples=60, deadline=None)
    def test_minimization_preserves_language(self, regex, word):
        dfa = regex.to_nfa(ALPHABET).determinize()
        assert dfa.minimized().accepts(word) == dfa.accepts(word)

    @given(regexes(), words())
    @settings(max_examples=60, deadline=None)
    def test_complement(self, regex, word):
        dfa = regex.to_nfa(ALPHABET).determinize()
        assert dfa.complement().accepts(word) != dfa.accepts(word)


class TestBooleanOperations:
    @given(regexes(), regexes(), words())
    @settings(max_examples=60, deadline=None)
    def test_union(self, r1, r2, word):
        n1, n2 = r1.to_nfa(ALPHABET), r2.to_nfa(ALPHABET)
        assert n1.union(n2).accepts(word) == (n1.accepts(word) or n2.accepts(word))

    @given(regexes(), regexes(), words(max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_concat_soundness(self, r1, r2, word):
        n1, n2 = r1.to_nfa(ALPHABET), r2.to_nfa(ALPHABET)
        cat = n1.concat(n2)
        expected = any(
            n1.accepts(word[:i]) and n2.accepts(word[i:])
            for i in range(len(word) + 1)
        )
        assert cat.accepts(word) == expected


class TestPrefixFree:
    @given(regexes(), words())
    @settings(max_examples=60, deadline=None)
    def test_core_subset_of_language(self, regex, word):
        nfa = regex.to_nfa(ALPHABET)
        core = nfa.prefix_free_restriction()
        if core.accepts(word):
            assert nfa.accepts(word)

    @given(regexes(), words(max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_core_is_prefix_free(self, regex, word):
        core = regex.to_nfa(ALPHABET).prefix_free_restriction()
        if core.accepts(word):
            for i in range(len(word)):
                assert not core.accepts(word[:i])


class TestAfaRoundtrip:
    @given(regexes(), words(max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_nfa_afa_nfa(self, regex, word):
        from repro.automata.afa import AFA

        nfa = regex.to_nfa(ALPHABET).determinize().to_nfa()
        afa = AFA.from_nfa(nfa)
        assert afa.accepts(word) == nfa.accepts(word)
        back = afa.to_nfa()
        assert back.accepts(word) == nfa.accepts(word)
