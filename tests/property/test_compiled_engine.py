"""Compiled bitmask evaluation vs. AST interpretation.

The compiled engine (``pl.compile_mask``/``pl.compile_row`` and the AFA's
``_CompiledAFA``) must be observationally identical to the interpreted
path: same truth values, same accepted words, same (shortest) witnesses.
These tests drive both paths on random formulas and random PL services.
"""

from hypothesis import given, settings, strategies as st

from repro.automata import afa as afa_mod
from repro.core.pl_semantics import to_afa
from repro.core.run import run_pl
from repro.logic import pl
from repro.workloads.random_sws import random_pl_sws

VARIABLES = ["p", "q", "r", "s"]


@st.composite
def formulas(draw, depth=4):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, len(VARIABLES)))
        if choice == len(VARIABLES):
            return pl.TRUE if draw(st.booleans()) else pl.FALSE
        leaf = pl.Var(VARIABLES[choice])
        return pl.Not(leaf) if draw(st.booleans()) else leaf
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return pl.Not(draw(formulas(depth=depth - 1)))
    parts = draw(st.lists(formulas(depth=depth - 1), min_size=2, max_size=3))
    return pl.And(parts) if kind == "and" else pl.Or(parts)


def _assignments():
    return st.sets(st.sampled_from(VARIABLES)).map(frozenset)


INDEX = {name: i for i, name in enumerate(VARIABLES)}


def _mask_of(env):
    return sum(1 << INDEX[v] for v in env if v in INDEX)


class TestCompiledMask:
    @given(formulas(), _assignments())
    @settings(max_examples=150, deadline=None)
    def test_compile_mask_agrees_with_evaluate(self, formula, env):
        fn = pl.compile_mask(formula, INDEX)
        assert fn(_mask_of(env)) == formula.evaluate(env)

    @given(st.lists(formulas(depth=3), min_size=1, max_size=5), _assignments())
    @settings(max_examples=100, deadline=None)
    def test_compile_row_agrees_with_per_state_evaluate(self, parts, env):
        entries = tuple((1 << i, f) for i, f in enumerate(parts))
        row = pl.compile_row(entries, INDEX)
        expected = sum(
            1 << i for i, f in enumerate(parts) if f.evaluate(env)
        )
        assert row(_mask_of(env)) == expected

    @given(formulas(), _assignments())
    @settings(max_examples=80, deadline=None)
    def test_simplify_preserved_under_compilation(self, formula, env):
        fn = pl.compile_mask(formula.simplify(), INDEX)
        assert fn(_mask_of(env)) == formula.evaluate(env)


def pl_words(max_size=4):
    symbol = st.sets(st.sampled_from(["x0", "x1"])).map(frozenset)
    return st.lists(symbol, max_size=max_size)


class TestCompiledAFA:
    @given(st.integers(0, 40), pl_words(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_accepts_agrees_with_ast_fallback(self, seed, word, recursive):
        sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=recursive)
        afa = to_afa(sws)
        compiled = afa.accepts(word)
        with afa_mod.ast_fallback():
            interpreted = afa.accepts(word)
        assert compiled == interpreted == run_pl(sws, word).output

    @given(st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_witness_identical_to_ast_fallback(self, seed):
        """Symbol dedup may only skip *duplicate rows*, never change words."""
        sws = random_pl_sws(seed, n_states=4, n_variables=2)
        afa = to_afa(sws)
        compiled = afa.accepting_witness()
        with afa_mod.ast_fallback():
            interpreted = afa.accepting_witness()
        assert compiled == interpreted

    @given(st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_reachable_vectors_agree(self, seed):
        sws = random_pl_sws(seed, n_states=3, n_variables=2)
        afa = to_afa(sws)
        compiled = afa.reachable_vectors()
        with afa_mod.ast_fallback():
            interpreted = afa.reachable_vectors()
        assert compiled == interpreted

    @given(st.integers(0, 30), st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_difference_witness_agrees(self, seed_a, seed_b):
        from repro.core.pl_semantics import joint_variables

        sws_a = random_pl_sws(seed_a, n_states=3, n_variables=2)
        sws_b = random_pl_sws(seed_b, n_states=3, n_variables=2)
        variables = joint_variables(sws_a, sws_b)
        a = to_afa(sws_a, variables)
        b = to_afa(sws_b, variables)
        compiled = a.difference_witness(b)
        with afa_mod.ast_fallback():
            interpreted = a.difference_witness(b)
        assert compiled == interpreted
        if compiled is not None:
            assert a.accepts(compiled) != b.accepts(compiled)
