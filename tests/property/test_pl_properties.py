"""Hypothesis property tests for the PL stack."""

from hypothesis import given, settings, strategies as st

from repro.logic import pl
from repro.logic.cnf import to_cnf, tseitin
from repro.logic.sat import count_models, satisfiable, solve_cnf

VARIABLES = ["p", "q", "r"]


@st.composite
def formulas(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, len(VARIABLES)))
        if choice == len(VARIABLES):
            return pl.TRUE if draw(st.booleans()) else pl.FALSE
        leaf = pl.Var(VARIABLES[choice])
        return pl.Not(leaf) if draw(st.booleans()) else leaf
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return pl.Not(draw(formulas(depth=depth - 1)))
    parts = draw(st.lists(formulas(depth=depth - 1), min_size=2, max_size=3))
    return pl.And(parts) if kind == "and" else pl.Or(parts)


def _assignments():
    return st.sets(st.sampled_from(VARIABLES)).map(frozenset)


class TestFormulaProperties:
    @given(formulas(), _assignments())
    @settings(max_examples=100, deadline=None)
    def test_simplify_preserves_semantics(self, formula, env):
        assert formula.evaluate(env) == formula.simplify().evaluate(env)

    @given(formulas(), _assignments())
    @settings(max_examples=100, deadline=None)
    def test_parse_str_roundtrip(self, formula, env):
        again = pl.parse(str(formula.simplify()))
        assert again.evaluate(env) == formula.evaluate(env)

    @given(formulas(), _assignments())
    @settings(max_examples=50, deadline=None)
    def test_double_negation(self, formula, env):
        assert pl.Not(pl.Not(formula)).evaluate(env) == formula.evaluate(env)

    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_substitute_identity(self, formula):
        identity = {v: pl.Var(v) for v in formula.variables()}
        for env in [frozenset(), frozenset(VARIABLES)]:
            assert formula.substitute(identity).evaluate(env) == formula.evaluate(env)


class TestCnfProperties:
    @given(formulas(), _assignments())
    @settings(max_examples=60, deadline=None)
    def test_distributive_cnf_equivalent(self, formula, env):
        clauses = to_cnf(formula)
        value = all(
            any((lit.variable in env) == lit.positive for lit in clause)
            for clause in clauses
        )
        assert value == formula.evaluate(env)

    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_tseitin_equisatisfiable(self, formula):
        clauses, _root = tseitin(formula)
        assert (solve_cnf(clauses) is not None) == (count_models(formula) > 0)


class TestSatProperties:
    @given(formulas())
    @settings(max_examples=80, deadline=None)
    def test_dpll_agrees_with_enumeration(self, formula):
        assert satisfiable(formula) == (count_models(formula) > 0)

    @given(formulas())
    @settings(max_examples=50, deadline=None)
    def test_formula_or_negation_satisfiable(self, formula):
        assert satisfiable(formula) or satisfiable(pl.Not(formula))
