"""Hypothesis property tests for SWS semantics and analyses."""

from hypothesis import given, settings, strategies as st

from repro.core.pl_semantics import language_value, to_afa
from repro.core.run import run_pl, run_relational
from repro.core.unfold import evaluate_expansion, expand, saturation_length
from repro.data.generators import InstanceGenerator
from repro.workloads.random_sws import random_cq_sws, random_pl_sws

VARIABLES = ["x0", "x1"]


def pl_words(max_size=3):
    symbol = st.sets(st.sampled_from(VARIABLES)).map(frozenset)
    return st.lists(symbol, max_size=max_size)


class TestPLSemanticsProperties:
    @given(st.integers(0, 30), pl_words(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_three_semantics_agree(self, seed, word, recursive):
        sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=recursive)
        via_run = run_pl(sws, word).output
        via_value = language_value(sws, word)
        via_afa = to_afa(sws).accepts(word)
        assert via_run == via_value == via_afa

    @given(st.integers(0, 30), pl_words())
    @settings(max_examples=50, deadline=None)
    def test_prefix_dependence_of_nonrecursive(self, seed, word):
        """A nonrecursive service never looks past depth+1 messages."""
        sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=False)
        k = sws.depth() + 1
        padded = list(word) + [frozenset({"x0"})] * 2
        if len(word) >= k:
            assert run_pl(sws, word).output == run_pl(sws, padded).output


class TestExpansionProperties:
    @given(st.integers(0, 15), st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_expansion_equals_run(self, seed, extra):
        sws = random_cq_sws(seed, n_states=3, recursive=False)
        n = min(saturation_length(sws), 1 + extra)
        expansion = expand(sws, n)
        gen = InstanceGenerator(seed=seed, domain_size=3)
        database = gen.database(sws.db_schema, 3)
        inputs = gen.input_sequence(sws.input_schema, n, 2)
        direct = run_relational(sws, database, inputs).output.rows
        via_q = (
            evaluate_expansion(expansion, sws, database, inputs, n)
            if expansion.disjuncts
            else frozenset()
        )
        assert direct == via_q

    @given(st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_output_monotone_in_database(self, seed):
        """Positivity: adding database tuples never removes output."""
        sws = random_cq_sws(seed, n_states=3, recursive=False)
        gen = InstanceGenerator(seed=seed + 1, domain_size=3)
        small = gen.database(sws.db_schema, 2)
        inputs = gen.input_sequence(sws.input_schema, sws.depth() + 1, 2)
        extra = gen.database(sws.db_schema, 2)
        big = small
        for name in extra:
            big = big.insert(name, extra[name].rows)
        out_small = run_relational(sws, small, inputs).output.rows
        out_big = run_relational(sws, big, inputs).output.rows
        assert out_small <= out_big


class TestAnalysisSoundness:
    @given(st.integers(0, 25))
    @settings(max_examples=25, deadline=None)
    def test_nonemptiness_witness_is_real(self, seed):
        from repro.analysis import nonempty_pl

        sws = random_pl_sws(seed, n_states=4, n_variables=2)
        answer = nonempty_pl(sws)
        if answer.is_yes:
            assert run_pl(sws, answer.witness).output

    @given(st.integers(0, 15))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_reflexive(self, seed):
        from repro.analysis import equivalent_pl

        sws = random_pl_sws(seed, n_states=4, n_variables=2)
        assert equivalent_pl(sws, sws).is_yes

    @given(st.integers(0, 10))
    @settings(max_examples=10, deadline=None)
    def test_cq_nonemptiness_witness_is_real(self, seed):
        from repro.analysis import nonempty_cq_nr

        sws = random_cq_sws(seed, n_states=3, recursive=False)
        answer = nonempty_cq_nr(sws)
        if answer.is_yes:
            database, inputs = answer.witness
            assert run_relational(sws, database, inputs).output
