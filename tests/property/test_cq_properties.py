"""Hypothesis property tests for CQ/UCQ: containment is a preorder,
evaluation respects containment, composition is sound."""

from hypothesis import given, settings, strategies as st

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.logic.cq import Atom, ConjunctiveQuery, neq
from repro.logic.terms import Variable
from repro.logic.ucq import UnionQuery

RELATIONS = ["E", "F"]
VARIABLES = [Variable(n) for n in ("x", "y", "z")]


@st.composite
def conjunctive_queries(draw):
    n_atoms = draw(st.integers(1, 3))
    atoms = []
    for _ in range(n_atoms):
        rel = draw(st.sampled_from(RELATIONS))
        terms = (
            draw(st.sampled_from(VARIABLES)),
            draw(st.sampled_from(VARIABLES)),
        )
        atoms.append(Atom(rel, terms))
    used = sorted({v for a in atoms for v in a.variables()}, key=lambda v: v.name)
    head = tuple(
        draw(st.sampled_from(used)) for _ in range(draw(st.integers(1, 2)))
    )
    comparisons = []
    if draw(st.booleans()) and len(used) >= 2:
        comparisons.append(neq(used[0], used[-1]))
    return ConjunctiveQuery(head, atoms, comparisons)


@st.composite
def databases(draw):
    values = st.integers(0, 2)
    rows = st.lists(st.tuples(values, values), max_size=5)
    return {
        name: Relation(RelationSchema(name, ("a", "b")), draw(rows))
        for name in RELATIONS
    }


def _pad(query, arity):
    """Unify head arity for containment comparisons."""
    if query.arity == arity:
        return query
    head = query.head + (query.head[-1],) * (arity - query.arity)
    return ConjunctiveQuery(head, query.atoms, query.comparisons)


class TestContainmentProperties:
    @given(conjunctive_queries())
    @settings(max_examples=50, deadline=None)
    def test_reflexive(self, query):
        assert query.contained_in(query)

    @given(conjunctive_queries(), conjunctive_queries(), databases())
    @settings(max_examples=50, deadline=None)
    def test_containment_implies_answer_inclusion(self, q1, q2, db):
        arity = max(q1.arity, q2.arity)
        q1, q2 = _pad(q1, arity), _pad(q2, arity)
        if q1.contained_in(q2):
            assert q1.evaluate(db) <= q2.evaluate(db)

    @given(conjunctive_queries(), databases())
    @settings(max_examples=50, deadline=None)
    def test_unsatisfiable_evaluates_empty(self, query, db):
        if not query.is_satisfiable():
            assert query.evaluate(db) == frozenset()

    @given(conjunctive_queries(), databases())
    @settings(max_examples=40, deadline=None)
    def test_minimization_preserves_answers(self, query, db):
        assert query.minimized().evaluate(db) == query.evaluate(db)


class TestUnionProperties:
    @given(conjunctive_queries(), conjunctive_queries(), databases())
    @settings(max_examples=40, deadline=None)
    def test_union_evaluation(self, q1, q2, db):
        arity = max(q1.arity, q2.arity)
        q1, q2 = _pad(q1, arity), _pad(q2, arity)
        union = UnionQuery.of(q1, q2)
        assert union.evaluate(db) == q1.evaluate(db) | q2.evaluate(db)

    @given(conjunctive_queries(), conjunctive_queries())
    @settings(max_examples=30, deadline=None)
    def test_disjuncts_contained_in_union(self, q1, q2):
        arity = max(q1.arity, q2.arity)
        q1, q2 = _pad(q1, arity), _pad(q2, arity)
        union = UnionQuery.of(q1, q2)
        assert UnionQuery.of(q1).contained_in(union)
        assert UnionQuery.of(q2).contained_in(union)

    @given(conjunctive_queries(), databases())
    @settings(max_examples=30, deadline=None)
    def test_union_minimization_preserves_answers(self, query, db):
        doubled = UnionQuery.of(query, query)
        assert doubled.minimized().evaluate(db) == query.evaluate(db)
