"""Tests for the exception hierarchy and the public package surface."""

import pytest

from repro.errors import (
    AnalysisError,
    BudgetExceededError,
    QueryError,
    ReproError,
    RunError,
    SchemaError,
    SWSDefinitionError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            SchemaError,
            QueryError,
            SWSDefinitionError,
            RunError,
            AnalysisError,
            BudgetExceededError,
        ],
    )
    def test_single_base(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_budget_attribute(self):
        error = BudgetExceededError("out of gas", budget=100)
        assert error.budget == 100
        assert "out of gas" in str(error)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SchemaError("boom")


class TestPublicSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__

    @pytest.mark.parametrize(
        "module",
        [
            "repro.analysis",
            "repro.automata",
            "repro.core",
            "repro.data",
            "repro.extensions",
            "repro.logic",
            "repro.mediator",
            "repro.models",
            "repro.reductions",
            "repro.workloads",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name, None) is not None, (module, name)
