"""Metrics tests must never leak an enabled registry into other tests."""

import pytest

from repro import metrics


@pytest.fixture(autouse=True)
def _metrics_off():
    """Force metrics off and empty before and after every test here."""
    if metrics.is_enabled():
        metrics.configure(enabled=False)
    metrics.REGISTRY.reset()
    yield
    if metrics.is_enabled():
        metrics.configure(enabled=False)
    metrics.REGISTRY.reset()
