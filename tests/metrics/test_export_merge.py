"""Snapshot export, spool files, and cross-process merge semantics."""

import json

import pytest

from repro import metrics
from repro.metrics import Registry


def _populated_registry() -> Registry:
    r = Registry()
    r.counter("jobs").inc(4)
    r.counter("hits", tier="memory").inc(2)
    r.gauge("queue.depth").set(3)
    r.histogram("latency_s", procedure="pl").observe(0.01)
    r.histogram("latency_s", procedure="pl").observe(0.02)
    return r


class TestSnapshot:
    def test_snapshot_shape(self):
        snap = _populated_registry().snapshot()
        assert snap["event"] == "metrics"
        assert snap["v"] == metrics.METRICS_SCHEMA_VERSION
        assert snap["seq"] == 1
        assert snap["counters"] == {"jobs": 4, "hits{tier=memory}": 2}
        assert snap["gauges"] == {"queue.depth": 3.0}
        hist = snap["histograms"]["latency_s{procedure=pl}"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.03)

    def test_seq_increments_per_snapshot(self):
        r = _populated_registry()
        assert [r.snapshot()["seq"] for _ in range(3)] == [1, 2, 3]

    def test_snapshot_is_json_serializable(self):
        snap = _populated_registry().snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestExportFiles:
    def test_write_snapshot_appends_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        metrics.configure(path=str(path), mode="w", interval_s=3600)
        metrics.counter("c").inc()
        metrics.write_snapshot()
        metrics.counter("c").inc()
        metrics.write_snapshot()
        snaps = list(metrics.iter_snapshots(str(path)))
        assert len(snaps) == 2
        assert snaps[0]["counters"]["c"] == 1
        assert snaps[1]["counters"]["c"] == 2
        assert metrics.last_snapshot(str(path))["counters"]["c"] == 2

    def test_spool_mode_replaces_single_snapshot(self, tmp_path):
        spool = tmp_path / "metrics-123.json"
        metrics.configure(spool_path=str(spool))
        metrics.counter("c").inc()
        metrics.write_snapshot()
        metrics.counter("c").inc()
        metrics.write_snapshot()
        with open(spool) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1  # replaced, not appended
        assert json.loads(lines[0])["counters"]["c"] == 2

    def test_write_snapshot_none_when_disabled(self):
        assert metrics.write_snapshot() is None

    def test_iter_snapshots_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "metrics"}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            list(metrics.iter_snapshots(str(path)))

    def test_iter_snapshots_skips_foreign_events(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text('{"event": "span"}\n\n{"event": "metrics", "seq": 1}\n')
        assert [s["seq"] for s in metrics.iter_snapshots(str(path))] == [1]


class TestMergeSnapshot:
    def test_counters_merge_delta_wise(self):
        worker = _populated_registry()
        parent = Registry()
        parent.merge_snapshot(worker.snapshot(), source="w1")
        worker.counter("jobs").inc(2)
        parent.merge_snapshot(worker.snapshot(), source="w1")
        assert parent.counter("jobs").value == 6

    def test_remerge_is_idempotent(self):
        worker = _populated_registry()
        snap = worker.snapshot()
        parent = Registry()
        for _ in range(3):
            parent.merge_snapshot(snap, source="w1")
        assert parent.counter("jobs").value == 4
        assert parent.histogram("latency_s", procedure="pl").count == 2

    def test_distinct_sources_accumulate(self):
        parent = Registry()
        parent.merge_snapshot(_populated_registry().snapshot(), source="w1")
        parent.merge_snapshot(_populated_registry().snapshot(), source="w2")
        assert parent.counter("jobs").value == 8

    def test_restarted_source_contributes_fresh_counts(self):
        worker = _populated_registry()
        parent = Registry()
        parent.merge_snapshot(worker.snapshot(), source="w1")
        fresh = Registry()  # same pid re-used, counts restarted from zero
        fresh.counter("jobs").inc(1)
        fresh.histogram("latency_s", procedure="pl").observe(0.04)
        parent.merge_snapshot(fresh.snapshot(), source="w1")
        assert parent.counter("jobs").value == 5
        assert parent.histogram("latency_s", procedure="pl").count == 3

    def test_gauges_get_worker_label(self):
        parent = Registry()
        parent.merge_snapshot(_populated_registry().snapshot(), source="71")
        instruments = parent.instruments()
        assert instruments["queue.depth{worker=71}"].value == 3.0

    def test_histogram_merge_preserves_quantiles(self):
        worker = _populated_registry()
        parent = Registry()
        parent.merge_snapshot(worker.snapshot(), source="w1")
        merged = parent.histogram("latency_s", procedure="pl")
        assert merged.count == 2
        assert 0.01 <= merged.quantile(0.99) <= 0.02


class TestHistogramReadoutFromDump:
    def test_roundtrip_through_dump(self):
        r = Registry()
        h = r.histogram("h")
        for v in (0.001, 0.004, 0.2):
            h.observe(v)
        readout = metrics.histogram_readout(h.dump())
        assert readout["count"] == 3
        assert readout["min"] == 0.001
        assert readout["max"] == 0.2
        assert 0.001 <= readout["p50"] <= 0.2


class TestResetAfterFork:
    def test_spool_rearm(self, tmp_path):
        metrics.configure(enabled=True)
        metrics.counter("inherited").inc(9)
        spool = tmp_path / "metrics-child.json"
        metrics.reset_after_fork(str(spool))
        assert metrics.is_enabled()
        assert metrics.REGISTRY.instruments() == {}  # parent owns old counts
        metrics.counter("child").inc()
        metrics.write_snapshot()
        snap = json.loads(spool.read_text())
        assert snap["counters"] == {"child": 1}

    def test_disable_when_no_spool(self):
        metrics.configure(enabled=True)
        metrics.reset_after_fork(None)
        assert not metrics.is_enabled()
