"""Instrument semantics: counters, gauges, histograms, keys, no-op mode."""

import threading

import pytest

from repro import metrics
from repro.metrics import (
    BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NOOP_INSTRUMENT,
    Registry,
    bucket_bounds,
    bucket_index,
    decode_key,
    encode_key,
)


class TestKeys:
    def test_unlabeled_key_is_the_name(self):
        assert encode_key("serve.jobs.executed", {}) == "serve.jobs.executed"

    def test_labels_sort_into_the_key(self):
        key = encode_key("lat", {"tier": "disk", "procedure": "pl"})
        assert key == "lat{procedure=pl,tier=disk}"

    def test_decode_inverts_encode(self):
        key = encode_key("lat", {"procedure": "pl", "tier": "disk"})
        assert decode_key(key) == ("lat", {"procedure": "pl", "tier": "disk"})

    def test_decode_plain_name(self):
        assert decode_key("serve.jobs.executed") == ("serve.jobs.executed", {})


class TestCounter:
    def test_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_dump_is_int_when_whole(self):
        c = Counter("c")
        c.inc(3)
        assert c.dump() == 3
        assert isinstance(c.dump(), int)

    def test_thread_safety(self):
        c = Counter("c")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0


class TestBuckets:
    def test_underflow_goes_to_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-9) == 0

    def test_indices_monotone_in_value(self):
        values = [1e-6, 1e-5, 1e-3, 0.1, 1.0, 60.0]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_index(1e30) == BUCKETS

    def test_bounds_contain_their_values(self):
        for value in (1e-6, 3e-4, 0.02, 1.5, 900.0):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi


class TestHistogram:
    def test_readout_counts_and_sum(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        readout = h.readout()
        assert readout["count"] == 3
        assert readout["sum"] == pytest.approx(0.007)
        assert readout["min"] == 0.001
        assert readout["max"] == 0.004

    def test_empty_readout(self):
        readout = Histogram("h").readout()
        assert readout["count"] == 0
        assert readout["p99"] is None
        assert readout["mean"] is None

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram("h")
        for v in (0.010, 0.011, 0.012, 0.013):
            h.observe(v)
        for q in (0.5, 0.9, 0.99):
            assert 0.010 <= h.quantile(q) <= 0.013
        assert h.quantile(1.0) == 0.013

    def test_p99_bounded_relative_error(self):
        # 100 samples at 1ms, one at 1s: p99 must land near the body,
        # p-1.0 at the exact tail.
        h = Histogram("h")
        for _ in range(100):
            h.observe(0.001)
        h.observe(1.0)
        assert h.quantile(0.50) <= 0.002
        assert h.quantile(1.0) == 1.0

    def test_dump_sparse_buckets(self):
        h = Histogram("h")
        h.observe(0.004)
        dump = h.dump()
        assert dump["count"] == 1
        assert sum(dump["buckets"].values()) == 1
        assert all(isinstance(k, str) for k in dump["buckets"])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = Registry()
        assert r.counter("c") is r.counter("c")
        assert r.counter("c", a=1) is not r.counter("c")

    def test_kind_conflict_raises(self):
        r = Registry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x")

    def test_reset_empties(self):
        r = Registry()
        r.counter("c").inc()
        r.reset()
        assert r.instruments() == {}


class TestNoopMode:
    def test_disabled_accessors_return_shared_noop(self):
        assert not metrics.is_enabled()
        assert metrics.counter("c") is NOOP_INSTRUMENT
        assert metrics.gauge("g") is NOOP_INSTRUMENT
        assert metrics.histogram("h") is NOOP_INSTRUMENT

    def test_noop_absorbs_every_operation(self):
        noop = metrics.counter("c")
        noop.inc()
        noop.dec()
        noop.set(3)
        noop.observe(0.5)
        assert noop.quantile(0.99) is None
        assert metrics.REGISTRY.instruments() == {}

    def test_observe_shorthand_noop_when_disabled(self):
        metrics.observe("h", 0.25)
        assert metrics.REGISTRY.instruments() == {}

    def test_enabling_records_for_real(self):
        metrics.configure(enabled=True)
        metrics.counter("c").inc()
        metrics.observe("h", 0.25, procedure="pl")
        instruments = metrics.REGISTRY.instruments()
        assert instruments["c"].value == 1
        assert instruments["h{procedure=pl}"].count == 1


class TestDerivedStats:
    def test_counter_total_rolls_up_labels(self):
        counters = {
            "serve.cache.hits{tier=memory}": 3,
            "serve.cache.hits{tier=disk}": 1,
            "serve.cache.misses": 4,
        }
        assert metrics.counter_total(counters, "serve.cache.hits") == 4
        assert metrics.cache_hit_rate(counters) == 0.5

    def test_cache_hit_rate_none_without_traffic(self):
        assert metrics.cache_hit_rate({}) is None

    def test_bench_context_none_when_disabled(self):
        assert metrics.bench_context() is None

    def test_bench_context_shape(self):
        metrics.configure(enabled=True)
        metrics.counter("serve.cache.hits", tier="memory").inc(3)
        metrics.counter("serve.cache.misses").inc()
        metrics.observe("serve.job.latency_s", 0.01, procedure="pl")
        context = metrics.bench_context()
        assert context["cache_hit_rate"] == 0.75
        hist = context["histograms"]["serve.job.latency_s{procedure=pl}"]
        assert hist["count"] == 1
        assert hist["p99_s"] == pytest.approx(0.01)
