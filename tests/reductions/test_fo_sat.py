"""Tests for the FO-satisfiability → SWS_nr(FO, FO) reduction."""

import pytest

from repro.analysis import nonempty_fo_bounded
from repro.core.classes import SWSClass, classify
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic import fo
from repro.logic.terms import var
from repro.reductions.fo_sat_to_sws import fo_sat_to_sws

x, y = var("x"), var("y")
SCHEMA = DatabaseSchema([RelationSchema("R", ("a", "b"))])


class TestReduction:
    def test_satisfiable_sentence_gives_nonempty_service(self):
        sentence = fo.Exists((x, y), fo.atom("R", x, y))
        sws = fo_sat_to_sws(sentence, SCHEMA)
        answer = nonempty_fo_bounded(sws, max_domain=1, max_session_length=0)
        assert answer.is_yes

    def test_unsatisfiable_sentence_never_yes(self):
        sentence = fo.AndF(
            [
                fo.Exists((x,), fo.atom("R", x, x)),
                fo.Forall((x, y), fo.NotF(fo.atom("R", x, y))),
            ]
        )
        sws = fo_sat_to_sws(sentence, SCHEMA)
        answer = nonempty_fo_bounded(sws, max_domain=2, max_rows=1, max_session_length=0)
        assert not answer.is_yes

    def test_needs_two_elements(self):
        sentence = fo.Exists(
            (x, y), fo.AndF([fo.atom("R", x, y), fo.NotF(fo.Equals(x, y))])
        )
        sws = fo_sat_to_sws(sentence, SCHEMA)
        # Note: the reduction's guard constant 'ok' joins the search
        # domain, so even max_domain=1 gives two distinct values; the
        # bounded search legitimately finds a model either way.
        big_enough = nonempty_fo_bounded(
            sws, max_domain=2, max_rows=1, max_session_length=0
        )
        assert big_enough.is_yes
        # The pure model finder confirms two elements are truly needed.
        found_at_one = fo.bounded_satisfiable(sentence, max_domain_size=1)
        assert not found_at_one[0]
        found_at_two = fo.bounded_satisfiable(sentence, max_domain_size=2)
        assert found_at_two == (True, 2)

    def test_target_class(self):
        sentence = fo.Exists((x,), fo.atom("R", x, x))
        sws = fo_sat_to_sws(sentence, SCHEMA)
        assert classify(sws) is SWSClass.FO_FO_NR

    def test_open_formula_rejected(self):
        with pytest.raises(ValueError, match="closed"):
            fo_sat_to_sws(fo.atom("R", x, y), SCHEMA)

    def test_agreement_with_bounded_model_finder(self):
        sentences = [
            fo.Exists((x,), fo.atom("R", x, x)),
            fo.Exists((x, y), fo.AndF([fo.atom("R", x, y), fo.NotF(fo.Equals(x, y))])),
            fo.AndF(
                [
                    fo.Exists((x,), fo.atom("R", x, x)),
                    fo.Forall((x,), fo.NotF(fo.atom("R", x, x))),
                ]
            ),
        ]
        for sentence in sentences:
            found, _ = fo.bounded_satisfiable(sentence, max_domain_size=2)
            sws = fo_sat_to_sws(sentence, SCHEMA)
            answer = nonempty_fo_bounded(
                sws, max_domain=2, max_rows=1, max_session_length=0
            )
            assert answer.is_yes == found
