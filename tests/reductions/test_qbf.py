"""Tests for the QBF evaluator (Q3SAT substrate)."""

import pytest

from repro.logic import pl
from repro.logic.sat import satisfiable
from repro.reductions.qbf import QBF, evaluate_qbf, random_qbf


class TestConstruction:
    def test_unquantified_variable_rejected(self):
        with pytest.raises(ValueError, match="unquantified"):
            QBF((("E", "x"),), pl.parse("x & y"))

    def test_bad_quantifier_rejected(self):
        with pytest.raises(ValueError, match="quantifiers"):
            QBF((("Z", "x"),), pl.parse("x"))


class TestEvaluation:
    def test_exists_forall_asymmetry(self):
        matrix = pl.parse("(x & y) | (!x & !y)")  # x <-> y
        assert evaluate_qbf(QBF((("A", "x"), ("E", "y")), matrix))
        assert not evaluate_qbf(QBF((("E", "x"), ("A", "y")), matrix))

    def test_all_existential_matches_sat(self):
        import random

        from repro.workloads.random_sws import random_formula

        rng = random.Random(3)
        for _ in range(20):
            matrix = random_formula(rng, ["a", "b", "c"], depth=3)
            prefix = tuple(("E", v) for v in sorted(matrix.variables()))
            assert evaluate_qbf(QBF(prefix, matrix)) == satisfiable(matrix)

    def test_all_universal_matches_validity(self):
        from repro.logic.sat import valid

        matrix = pl.parse("x | !x")
        assert evaluate_qbf(QBF((("A", "x"),), matrix)) == valid(matrix)
        matrix2 = pl.parse("x | y")
        prefix2 = (("A", "x"), ("A", "y"))
        assert evaluate_qbf(QBF(prefix2, matrix2)) == valid(matrix2)

    def test_closed_constant(self):
        assert evaluate_qbf(QBF((), pl.TRUE))
        assert not evaluate_qbf(QBF((), pl.FALSE))

    def test_quantifier_order_matters(self):
        # ∃x∀y (x ∨ y) is false; ∀y∃x (x ∨ y) is true.
        matrix = pl.parse("x | y")
        assert not evaluate_qbf(QBF((("E", "x"), ("A", "y")), matrix)) or True
        # careful: ∃x∀y (x|y) IS true with x=true.
        assert evaluate_qbf(QBF((("E", "x"), ("A", "y")), matrix))
        matrix2 = pl.parse("(x & !y) | (!x & y)")  # x xor y
        assert not evaluate_qbf(QBF((("E", "x"), ("A", "y")), matrix2))
        assert evaluate_qbf(QBF((("A", "y"), ("E", "x")), matrix2))


class TestRandomQBF:
    def test_deterministic_in_seed(self):
        a, b = random_qbf(4, 4, 6), random_qbf(4, 4, 6)
        assert a == b
        assert evaluate_qbf(a) == evaluate_qbf(b)

    def test_prefix_alternates(self):
        qbf = random_qbf(0, 4, 4)
        quantifiers = [q for q, _v in qbf.prefix]
        assert quantifiers == ["E", "A", "E", "A"]
