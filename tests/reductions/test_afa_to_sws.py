"""Tests for the AFA → SWS(PL, PL) reduction (PSPACE lower bound)."""

import itertools

import pytest

from repro.analysis import nonempty_pl
from repro.automata import parse_regex
from repro.automata.afa import AFA
from repro.core.classes import SWSClass, classify
from repro.core.run import run_pl
from repro.logic import pl
from repro.reductions.afa_to_sws import afa_to_sws, encode_afa_word
from repro.workloads.scaling import afa_counter


class TestWordLevelAgreement:
    @pytest.mark.slow
    def test_counter_family(self):
        for bits in (1, 2, 3):
            afa = afa_counter(bits)
            sws = afa_to_sws(afa)
            for m in range(0, 2**bits + 3):
                word = ["a"] * m
                assert afa.accepts(word) == run_pl(
                    sws, encode_afa_word(word)
                ).output, (bits, m)

    def test_regex_derived_afa(self):
        nfa = parse_regex("a (b|c)* d").to_nfa().determinize().to_nfa()
        afa = AFA.from_nfa(nfa)
        sws = afa_to_sws(afa)
        for n in range(0, 4):
            for word in itertools.product("abcd", repeat=n):
                assert afa.accepts(word) == run_pl(
                    sws, encode_afa_word(list(word))
                ).output, word

    def test_alternating_afa(self):
        # Conjunction of two conditions (see tests/automata/test_afa.py).
        endb, noc, emp = pl.Var("endb"), pl.Var("noc"), pl.Var("emp")
        afa = AFA(
            {"endb", "noc", "emp", "init"},
            {"a", "b", "c"},
            {
                ("endb", "a"): endb,
                ("endb", "c"): endb,
                ("endb", "b"): endb | emp,
                ("noc", "a"): noc,
                ("noc", "b"): noc,
                ("init", "a"): endb & noc,
            },
            pl.Var("init"),
            {"emp", "noc"},
        )
        sws = afa_to_sws(afa)
        for n in range(0, 4):
            for word in itertools.product("abc", repeat=n):
                assert afa.accepts(word) == run_pl(
                    sws, encode_afa_word(list(word))
                ).output, word


class TestReductionProperties:
    def test_nonemptiness_agreement(self):
        for bits in (1, 2):
            afa = afa_counter(bits)
            sws = afa_to_sws(afa)
            assert nonempty_pl(sws).is_yes == (not afa.is_empty())

    def test_empty_afa_gives_empty_sws(self):
        afa = AFA({"q"}, {"a"}, {("q", "a"): pl.Var("q")}, pl.Var("q"), set())
        sws = afa_to_sws(afa)
        assert nonempty_pl(sws).is_no

    def test_target_class_recursive(self):
        sws = afa_to_sws(afa_counter(2))
        assert classify(sws) is SWSClass.PL_PL

    def test_polynomial_size(self):
        sizes = [len(afa_to_sws(afa_counter(bits)).states) for bits in (2, 4, 8)]
        # Linear in the AFA state count: start + (bits+1) AFA states +
        # |Σ|+1 indicators = bits + 4.
        assert sizes == [2 + 4, 4 + 4, 8 + 4]

    def test_garbage_input_rejected(self):
        afa = afa_counter(1)
        sws = afa_to_sws(afa)
        garbage = [frozenset({"sym_a", "hash"})]
        assert not run_pl(sws, garbage).output
