"""Tests for the SAT → SWS_nr(PL, PL) reduction."""

import pytest

from repro.analysis import nonempty_pl, nonempty_pl_nr_sat
from repro.core.classes import SWSClass, classify
from repro.logic import pl
from repro.logic.sat import satisfiable, solve_cnf
from repro.reductions.sat_to_sws import (
    clauses_from_tuples,
    cnf_to_sws,
    sat_instance_to_sws,
)
from repro.workloads.scaling import random_3cnf


class TestFormulaReduction:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("x & y", True),
            ("x & !x", False),
            ("(x | y) & (!x | !y)", True),
            ("false", False),
            ("true", True),
        ],
    )
    def test_nonemptiness_iff_satisfiable(self, text, expected):
        sws = sat_instance_to_sws(pl.parse(text))
        assert nonempty_pl_nr_sat(sws).is_yes == expected
        assert nonempty_pl(sws).is_yes == expected

    def test_target_class(self):
        sws = sat_instance_to_sws(pl.parse("x | y"))
        assert classify(sws) is SWSClass.PL_PL_NR


class TestCnfReduction:
    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_with_dpll(self, seed):
        clauses = clauses_from_tuples(random_3cnf(seed, 4, 8))
        sws = cnf_to_sws(clauses)
        direct = solve_cnf(clauses) is not None
        assert nonempty_pl_nr_sat(sws).is_yes == direct
        assert nonempty_pl(sws).is_yes == direct

    def test_parallel_shape(self):
        clauses = clauses_from_tuples(random_3cnf(0, 3, 5))
        sws = cnf_to_sws(clauses)
        # One state per clause, all checked in one parallel round.
        assert len(sws.transitions["q0"]) == 5
        assert not sws.is_recursive()
        assert sws.depth() == 1

    def test_empty_cnf_nonempty(self):
        sws = cnf_to_sws([])
        assert nonempty_pl(sws).is_yes

    def test_polynomial_size(self):
        # |τ| linear in the clause count.
        sizes = []
        for n_clauses in (5, 10, 20):
            clauses = clauses_from_tuples(random_3cnf(1, 6, n_clauses))
            sws = cnf_to_sws(clauses)
            sizes.append(len(sws.states))
        assert sizes == [7, 12, 22]
