"""End-to-end integration tests spanning multiple subsystems."""

import itertools

import pytest

from repro.analysis import equivalent_pl, nonempty_pl
from repro.core.pl_semantics import joint_variables
from repro.core.run import run_pl, run_relational
from repro.data.actions import ActionKind, commit_actions, tag_interpretation
from repro.data.generators import InstanceGenerator
from repro.mediator import (
    compose_cq_nr,
    compose_pl_regular,
    mediator_equivalent_to_sws_pl,
    run_mediator,
)
from repro.models.roman import RomanService, encode_roman_word, roman_to_sws
from repro.workloads import travel
from repro.workloads.pl_services import HASH, union_word_service, word_service


class TestTravelEndToEnd:
    """Figure 1's scenario: run, synthesize, commit."""

    def test_run_then_commit(self):
        t1 = travel.travel_service()
        db = travel.sample_database()
        result = run_relational(t1, db, travel.booking_request())
        bookings_schema = travel.DB_SCHEMA.extended(
            __import__(
                "repro.data.schema", fromlist=["RelationSchema"]
            ).RelationSchema("Bookings", ("flight", "room", "ticket", "car"))
        )
        from repro.data.database import Database

        store = Database(bookings_schema)
        interpretation = tag_interpretation(
            tag_position=0,
            kind_by_tag={"book": ActionKind.INSERT},
            target_by_tag={"book": "Bookings"},
        )
        from repro.data.relation import Relation
        from repro.data.schema import RelationSchema

        tagged_schema = RelationSchema(
            "Act", ("tag", "flight", "room", "ticket", "car")
        )
        tagged = Relation(
            tagged_schema, [("book",) + row for row in result.output]
        )
        updated, log = commit_actions(store, tagged, interpretation)
        assert len(updated["Bookings"]) == len(result.output)
        assert not log.is_empty()

    def test_mediator_substitutes_for_goal(self):
        """A client cannot tell π1 from τ1 on any tested scenario."""
        pi1 = travel.travel_mediator()
        t1 = travel.travel_service()
        gen = InstanceGenerator(seed=5, domain_size=2)
        for trial in range(4):
            db = gen.database(travel.DB_SCHEMA, 3)
            # Rebuild keys so joins can fire.
            db = db.with_relation("Ra", [("k", f"F{trial}")])
            db = db.with_relation("Rh", [("k", "H")])
            req_rows = [(tag, "k") for tag in travel.TAGS]
            from repro.data.input_sequence import InputSequence

            req = InputSequence(travel.INPUT_PAYLOAD, [req_rows])
            assert (
                run_mediator(pi1, db, req).output.rows
                == run_relational(t1, db, req).output.rows
            )


class TestRomanPipeline:
    """Roman model → SWS → analysis → composition, end to end."""

    def test_translate_analyze(self):
        service = RomanService(travel.travel_fsa(), "travel")
        sws = roman_to_sws(service)
        answer = nonempty_pl(sws)
        assert answer.is_yes
        assert run_pl(sws, answer.witness).output

    def test_equivalence_of_translations(self):
        from repro.automata import parse_regex

        one = parse_regex("a (b | c)").to_nfa().determinize().to_nfa()
        two = parse_regex("a b | a c").to_nfa().determinize().to_nfa()
        sws1 = roman_to_sws(RomanService(one, "one"))
        sws2 = roman_to_sws(RomanService(two, "two"))
        assert equivalent_pl(sws1, sws2).is_yes


class TestPLCompositionPipeline:
    def test_synthesize_then_replay(self):
        alpha = ["a", "b", "c"]
        components = {
            "A": word_service(["a", HASH], alpha, "A"),
            "B": word_service(["b", HASH], alpha, "B"),
            "C": word_service(["c", HASH], alpha, "C"),
        }
        goal = union_word_service(
            [["a", HASH, "b", HASH], ["a", HASH, "c", HASH]], alpha, "goal"
        )
        result = compose_pl_regular(goal, components)
        assert result.exists
        variables = sorted(joint_variables(goal, *components.values()))
        # Exhaustive run-level verification over short words: mediator runs
        # involve real component executions, not language abstractions.
        ok, witness = mediator_equivalent_to_sws_pl(
            result.mediator, goal, 4, variables
        )
        assert ok, witness


class TestCQCompositionPipeline:
    def test_synthesize_run_compare(self):
        from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
        from repro.logic.cq import Atom, ConjunctiveQuery
        from repro.logic.terms import var
        from repro.logic.ucq import UnionQuery
        from repro.workloads.random_sws import DEFAULT_CQ_SCHEMA, DEFAULT_PAYLOAD

        x, y, z = var("x"), var("y"), var("z")

        def emit_service(emit, name):
            first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "copy")
            up = UnionQuery.of(
                ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "up")
            )
            return SWS(
                ("q0", "q1"),
                "q0",
                {"q0": TransitionRule([("q1", first)]), "q1": TransitionRule()},
                {"q0": SynthesisRule(up), "q1": SynthesisRule(emit)},
                kind=SWSKind.RELATIONAL,
                db_schema=DEFAULT_CQ_SCHEMA,
                input_schema=DEFAULT_PAYLOAD,
                output_arity=2,
                name=name,
            )

        join_r = UnionQuery.of(
            ConjunctiveQuery(
                (x, z), [Atom(MSG, (x, y)), Atom("R", (y, z))], (), "jr"
            )
        )
        join_s = UnionQuery.of(
            ConjunctiveQuery(
                (x, z), [Atom(MSG, (x, y)), Atom("S", (y, z))], (), "js"
            )
        )
        goal = emit_service(join_r.union(join_s), "goal")
        components = {
            "VR": emit_service(join_r, "VR"),
            "VS": emit_service(join_s, "VS"),
        }
        result = compose_cq_nr(goal, components)
        assert result.exists
        gen = InstanceGenerator(seed=2, domain_size=3)
        for _ in range(4):
            db = gen.database(goal.db_schema, 4)
            inputs = gen.input_sequence(goal.input_schema, 2, 2)
            assert (
                run_mediator(result.mediator, db, inputs).output.rows
                == run_relational(goal, db, inputs).output.rows
            )
