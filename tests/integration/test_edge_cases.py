"""Assorted edge-case coverage across subsystems."""

import pytest

from repro.core.run import run_pl, run_relational
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import RunError
from repro.logic import pl
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery

x, y = var("x"), var("y")
PAYLOAD = RelationSchema("Rin", ("v",))
DB = DatabaseSchema([RelationSchema("R", ("a", "b"))])


class TestRunEdgeCases:
    def test_single_final_start_state_on_empty_input(self):
        emit = UnionQuery.of(ConjunctiveQuery((x,), [Atom("R", (x, y))]))
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(emit)},
            kind=SWSKind.RELATIONAL,
            db_schema=DB,
            input_schema=PAYLOAD,
            output_arity=1,
        )
        db = Database(DB, {"R": [(1, 2)]})
        # A final start state synthesizes even with no input at all.
        result = run_relational(sws, db, InputSequence(PAYLOAD, []))
        assert result.output.rows == {(1,)}
        assert result.tree.size() == 1

    def test_pl_empty_word_final_start(self):
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(pl.Not(pl.Var("x")))},
            kind=SWSKind.PL,
        )
        # Beyond the word the assignment is empty, so !x holds.
        assert run_pl(sws, []).output
        assert not run_pl(sws, [frozenset({"x"})]).output

    def test_duplicate_successors_get_distinct_registers(self):
        copy_in = ConjunctiveQuery((x,), [Atom("In", (x,))])
        from repro.logic.cq import eq
        from repro.logic.terms import const

        select1 = ConjunctiveQuery((x,), [Atom("In", (x,))], [eq(x, const(1))])
        emit = UnionQuery.of(ConjunctiveQuery((x,), [Atom("Msg", (x,))]))
        keep_second = UnionQuery.of(
            ConjunctiveQuery((x,), [Atom("A2", (x,))])
        )
        sws = SWS(
            ("q0", "leaf"),
            "q0",
            {
                "q0": TransitionRule([("leaf", copy_in), ("leaf", select1)]),
                "leaf": TransitionRule(),
            },
            {
                "q0": SynthesisRule(keep_second),
                "leaf": SynthesisRule(emit),
            },
            kind=SWSKind.RELATIONAL,
            db_schema=DB,
            input_schema=PAYLOAD,
            output_arity=1,
        )
        db = Database.empty(DB)
        result = run_relational(sws, db, InputSequence(PAYLOAD, [[(1,), (2,)]]))
        # Only the filtered (second) child's register flows up.
        assert result.output.rows == {(1,)}

    def test_run_requires_matching_payload(self):
        emit = UnionQuery.of(ConjunctiveQuery((x,), [Atom("In", (x,))]))
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(emit)},
            kind=SWSKind.RELATIONAL,
            db_schema=DB,
            input_schema=PAYLOAD,
            output_arity=1,
        )
        wrong = InputSequence(RelationSchema("Rin", ("a", "b")), [[(1, 2)]])
        with pytest.raises(RunError, match="arity"):
            run_relational(sws, Database.empty(DB), wrong)


class TestMediatorEdgeCases:
    def test_nonempty_seed_arity_mismatch_rejected(self):
        from repro.mediator._component_run import run_component_relational
        from repro.workloads.travel import travel_service, sample_database

        component = travel_service()
        seed = Relation(RelationSchema("Msg", ("a",)), [(1,)])
        with pytest.raises(RunError, match="seed"):
            run_component_relational(
                component,
                sample_database(),
                InputSequence(component.input_schema, []),
                seed,
            )

    def test_empty_seed_any_arity_ok(self):
        from repro.mediator._component_run import run_component_relational
        from repro.workloads.travel import travel_service, sample_database, booking_request

        component = travel_service()
        seed = Relation(RelationSchema("Msg", ("a",)), [])
        output, consumed = run_component_relational(
            component, sample_database(), booking_request(), seed
        )
        assert output
        assert consumed == 2  # root + leaves


class TestValidationDispatch:
    def test_recursive_cq_validation_bounded(self):
        from repro.analysis import validate
        from repro.workloads.scaling import cq_chain_sws

        chain = cq_chain_sws(0)
        answer = validate(
            chain, [], max_session_length=1, max_domain=1, max_rows=0, budget=50
        )
        # The empty output is produced by the empty instance.
        assert answer.is_yes

    def test_validation_budget_exhaustion(self):
        from repro.analysis import validate
        from repro.workloads.scaling import cq_chain_sws

        chain = cq_chain_sws(0)
        answer = validate(
            chain,
            [(99, 98)],
            max_session_length=1,
            max_domain=1,
            max_rows=0,
            budget=5,
        )
        assert not answer.is_yes


class TestExpansionEdgeCases:
    def test_session_length_zero(self):
        from repro.core.unfold import expand
        from repro.workloads.scaling import cq_diamond_sws

        expansion = expand(cq_diamond_sws(1), 0)
        # The diamond's root is internal: starved at n=0, empty expansion.
        assert len(expansion.disjuncts) == 0

    def test_final_root_survives_session_length_zero(self):
        from repro.core.unfold import expand

        emit = UnionQuery.of(ConjunctiveQuery((x,), [Atom("R", (x, y))]))
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(emit)},
            kind=SWSKind.RELATIONAL,
            db_schema=DB,
            input_schema=PAYLOAD,
            output_arity=1,
        )
        expansion = expand(sws, 0)
        assert len(expansion.disjuncts) == 1
