"""Tests for database instances."""

import pytest

from repro.data.database import Database, single_relation_database
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import SchemaError


@pytest.fixture
def schema() -> DatabaseSchema:
    return DatabaseSchema(
        [RelationSchema("R", ("a", "b")), RelationSchema("S", ("x",))]
    )


class TestConstruction:
    def test_missing_relations_default_empty(self, schema):
        db = Database(schema, {"R": [(1, 2)]})
        assert len(db["R"]) == 1
        assert len(db["S"]) == 0

    def test_unknown_relation_rejected(self, schema):
        with pytest.raises(SchemaError, match="unknown relations"):
            Database(schema, {"T": [(1,)]})

    def test_empty(self, schema):
        db = Database.empty(schema)
        assert db.total_rows() == 0

    def test_unknown_lookup(self, schema):
        db = Database.empty(schema)
        with pytest.raises(SchemaError):
            db["T"]

    def test_single_relation_database(self):
        db = single_relation_database(RelationSchema("R", ("a",)), [(1,)])
        assert set(db) == {"R"}


class TestImmutableUpdates:
    def test_insert_returns_copy(self, schema):
        db = Database(schema, {"R": [(1, 2)]})
        db2 = db.insert("R", [(3, 4)])
        assert len(db["R"]) == 1
        assert len(db2["R"]) == 2

    def test_delete(self, schema):
        db = Database(schema, {"R": [(1, 2), (3, 4)]})
        db2 = db.delete("R", [(1, 2)])
        assert set(db2["R"]) == {(3, 4)}

    def test_delete_absent_row_is_noop(self, schema):
        db = Database(schema, {"R": [(1, 2)]})
        assert db.delete("R", [(9, 9)]) == db

    def test_with_relation_replaces(self, schema):
        db = Database(schema, {"R": [(1, 2)]})
        db2 = db.with_relation("R", [(5, 6)])
        assert set(db2["R"]) == {(5, 6)}


class TestQueries:
    def test_active_domain(self, schema):
        db = Database(schema, {"R": [(1, 2)], "S": [(7,)]})
        assert db.active_domain() == frozenset({1, 2, 7})

    def test_total_rows(self, schema):
        db = Database(schema, {"R": [(1, 2), (3, 4)], "S": [(7,)]})
        assert db.total_rows() == 3

    def test_equality(self, schema):
        a = Database(schema, {"R": [(1, 2)]})
        b = Database(schema, {"R": [(1, 2)]})
        assert a == b
        assert hash(a) == hash(b)
