"""Tests for relation instances and relational algebra."""

import pytest

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.errors import SchemaError


@pytest.fixture
def r() -> Relation:
    return Relation(RelationSchema("R", ("a", "b")), [(1, 2), (2, 3), (3, 3)])


class TestConstruction:
    def test_rows_frozen_and_deduplicated(self):
        rel = Relation(RelationSchema("R", ("a",)), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError, match="arity"):
            Relation(RelationSchema("R", ("a",)), [(1, 2)])

    def test_empty(self):
        rel = Relation.empty(RelationSchema("R", ("a",)))
        assert not rel
        assert len(rel) == 0

    def test_with_rows(self, r: Relation):
        bigger = r.with_rows([(9, 9)])
        assert len(bigger) == 4
        assert len(r) == 3  # immutable

    def test_contains(self, r: Relation):
        assert (1, 2) in r
        assert (9, 9) not in r


class TestAlgebra:
    def test_select_eq(self, r: Relation):
        assert set(r.select_eq("b", 3)) == {(2, 3), (3, 3)}

    def test_select_predicate(self, r: Relation):
        result = r.select(lambda row: row["a"] == row["b"])
        assert set(result) == {(3, 3)}

    def test_project(self, r: Relation):
        result = r.project(["b"])
        assert set(result) == {(2,), (3,)}
        assert result.schema.attributes == ("b",)

    def test_project_reorders(self, r: Relation):
        result = r.project(["b", "a"])
        assert (2, 1) in result

    def test_rename(self, r: Relation):
        renamed = r.rename("S")
        assert renamed.schema.name == "S"
        assert renamed.rows == r.rows

    def test_union(self, r: Relation):
        other = Relation(r.schema, [(7, 7)])
        assert len(r.union(other)) == 4

    def test_union_schema_mismatch(self, r: Relation):
        other = Relation(RelationSchema("S", ("x", "y")), [(1, 2)])
        with pytest.raises(SchemaError):
            r.union(other)

    def test_difference(self, r: Relation):
        other = Relation(r.schema, [(1, 2)])
        assert set(r.difference(other)) == {(2, 3), (3, 3)}

    def test_intersection(self, r: Relation):
        other = Relation(r.schema, [(1, 2), (9, 9)])
        assert set(r.intersection(other)) == {(1, 2)}

    def test_natural_join_on_shared_attribute(self):
        left = Relation(RelationSchema("L", ("a", "b")), [(1, 2), (2, 3)])
        right = Relation(RelationSchema("R", ("b", "c")), [(2, 9), (3, 8)])
        joined = left.natural_join(right)
        assert set(joined) == {(1, 2, 9), (2, 3, 8)}
        assert joined.schema.attributes == ("a", "b", "c")

    def test_natural_join_no_shared_is_product(self):
        left = Relation(RelationSchema("L", ("a",)), [(1,), (2,)])
        right = Relation(RelationSchema("R", ("b",)), [(7,)])
        joined = left.natural_join(right)
        assert set(joined) == {(1, 7), (2, 7)}

    def test_active_domain(self, r: Relation):
        assert r.active_domain() == frozenset({1, 2, 3})


class TestValueSemantics:
    def test_equality_ignores_relation_name(self, r: Relation):
        same = Relation(RelationSchema("Other", ("a", "b")), r.rows)
        assert r == same
        assert hash(r) == hash(same)

    def test_equality_respects_attributes(self, r: Relation):
        other = Relation(RelationSchema("R", ("x", "y")), r.rows)
        assert r != other

    def test_bool(self, r: Relation):
        assert r
        assert not Relation.empty(r.schema)
