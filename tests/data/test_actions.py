"""Tests for action classification and commit."""

import pytest

from repro.data.actions import (
    ActionKind,
    classify_actions,
    commit_actions,
    tag_interpretation,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import RunError


@pytest.fixture
def db() -> Database:
    schema = DatabaseSchema([RelationSchema("Orders", ("id", "item"))])
    return Database(schema, {"Orders": [(1, "book")]})


@pytest.fixture
def interpretation():
    return tag_interpretation(
        tag_position=0,
        kind_by_tag={
            "ins": ActionKind.INSERT,
            "del": ActionKind.DELETE,
            "msg": ActionKind.MESSAGE,
        },
        target_by_tag={"ins": "Orders", "del": "Orders", "msg": "customer"},
    )


def _output(rows):
    schema = RelationSchema("Act", ("tag", "id", "item"))
    return Relation(schema, rows)


class TestClassify:
    def test_partition_by_kind(self, interpretation):
        output = _output(
            [("ins", 2, "cd"), ("del", 1, "book"), ("msg", 0, "hello")]
        )
        log = classify_actions(output, interpretation)
        assert log.inserts == {"Orders": {(2, "cd")}}
        assert log.deletes == {"Orders": {(1, "book")}}
        assert log.messages == {"customer": {(0, "hello")}}

    def test_unknown_tag_raises(self, interpretation):
        with pytest.raises(RunError, match="unknown action tag"):
            classify_actions(_output([("boom", 1, "x")]), interpretation)

    def test_empty_log(self, interpretation):
        log = classify_actions(_output([]), interpretation)
        assert log.is_empty()


class TestCommit:
    def test_commit_applies_deletes_then_inserts(self, db, interpretation):
        output = _output([("ins", 2, "cd"), ("del", 1, "book")])
        updated, log = commit_actions(db, output, interpretation)
        assert set(updated["Orders"]) == {(2, "cd")}
        assert not log.is_empty()

    def test_insert_wins_over_delete_of_same_row(self, db, interpretation):
        output = _output([("ins", 1, "book"), ("del", 1, "book")])
        updated, _log = commit_actions(db, output, interpretation)
        assert (1, "book") in updated["Orders"]

    def test_original_database_untouched(self, db, interpretation):
        commit_actions(db, _output([("del", 1, "book")]), interpretation)
        assert (1, "book") in db["Orders"]

    def test_unknown_target_relation(self, db):
        bad = tag_interpretation(
            0, {"ins": ActionKind.INSERT}, {"ins": "Nope"}
        )
        with pytest.raises(RunError, match="unknown relation"):
            commit_actions(db, _output([("ins", 1, "x")]), bad)

    def test_messages_do_not_touch_database(self, db, interpretation):
        updated, log = commit_actions(
            db, _output([("msg", 9, "ping")]), interpretation
        )
        assert updated == db
        assert log.messages == {"customer": {(9, "ping")}}
