"""Tests for the seeded instance generators."""

from repro.data.generators import InstanceGenerator
from repro.data.schema import DatabaseSchema, RelationSchema


class TestDeterminism:
    def test_same_seed_same_database(self):
        schema = DatabaseSchema([RelationSchema("R", ("a", "b"))])
        a = InstanceGenerator(seed=7).database(schema, 5)
        b = InstanceGenerator(seed=7).database(schema, 5)
        assert a == b

    def test_different_seeds_usually_differ(self):
        schema = DatabaseSchema([RelationSchema("R", ("a", "b"))])
        a = InstanceGenerator(seed=1).database(schema, 8)
        b = InstanceGenerator(seed=2).database(schema, 8)
        assert a != b


class TestShapes:
    def test_relation_size_bounded(self):
        gen = InstanceGenerator(seed=0, domain_size=2)
        rel = gen.relation(RelationSchema("R", ("a",)), 10)
        assert len(rel) <= 10
        assert rel.active_domain() <= {0, 1}

    def test_input_sequence_shape(self):
        gen = InstanceGenerator(seed=0)
        payload = RelationSchema("Rin", ("x", "y"))
        seq = gen.input_sequence(payload, 3, 2)
        assert len(seq) == 3
        assert all(len(m) <= 2 for m in seq)

    def test_truth_assignment_subset(self):
        gen = InstanceGenerator(seed=0)
        assignment = gen.truth_assignment(["a", "b", "c"])
        assert assignment <= {"a", "b", "c"}

    def test_pl_word_length(self):
        gen = InstanceGenerator(seed=0)
        word = gen.pl_input_word(["a"], 5)
        assert len(word) == 5

    def test_domain_values(self):
        gen = InstanceGenerator(seed=0, domain_size=3)
        assert all(gen.value() in {0, 1, 2} for _ in range(20))
