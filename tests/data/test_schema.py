"""Tests for relation and database schemas."""

import pytest

from repro.data.schema import (
    DatabaseSchema,
    RelationSchema,
    TS_ATTRIBUTE,
    input_schema,
    payload_schema,
)
from repro.errors import SchemaError


class TestRelationSchema:
    def test_basic_construction(self):
        schema = RelationSchema("R", ("a", "b", "c"))
        assert schema.name == "R"
        assert schema.arity == 3
        assert schema.attributes == ("a", "b", "c")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("R", ("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            RelationSchema("", ("a",))

    def test_zero_arity_allowed(self):
        schema = RelationSchema("B", ())
        assert schema.arity == 0

    def test_position_lookup(self):
        schema = RelationSchema("R", ("a", "b"))
        assert schema.position("a") == 0
        assert schema.position("b") == 1

    def test_position_unknown_attribute(self):
        schema = RelationSchema("R", ("a",))
        with pytest.raises(SchemaError, match="no attribute"):
            schema.position("zzz")

    def test_has_attribute(self):
        schema = RelationSchema("R", ("a", "b"))
        assert schema.has_attribute("a")
        assert not schema.has_attribute("z")

    def test_drop(self):
        schema = RelationSchema("R", ("a", "b", "c"))
        dropped = schema.drop("b")
        assert dropped.attributes == ("a", "c")
        assert dropped.name == "R"

    def test_drop_missing(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a",)).drop("b")

    def test_renamed(self):
        schema = RelationSchema("R", ("a",)).renamed("S")
        assert schema.name == "S"
        assert schema.attributes == ("a",)

    def test_equality_is_structural(self):
        assert RelationSchema("R", ("a",)) == RelationSchema("R", ("a",))
        assert RelationSchema("R", ("a",)) != RelationSchema("R", ("b",))

    def test_str(self):
        assert str(RelationSchema("R", ("a", "b"))) == "R(a, b)"


class TestDatabaseSchema:
    def test_lookup(self):
        schema = DatabaseSchema([RelationSchema("R", ("a",))])
        assert schema["R"].arity == 1

    def test_unknown_relation(self):
        schema = DatabaseSchema([])
        with pytest.raises(SchemaError, match="no relation"):
            schema["R"]

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            DatabaseSchema(
                [RelationSchema("R", ("a",)), RelationSchema("R", ("b",))]
            )

    def test_mapping_protocol(self):
        schema = DatabaseSchema(
            [RelationSchema("R", ("a",)), RelationSchema("S", ("b",))]
        )
        assert set(schema) == {"R", "S"}
        assert len(schema) == 2
        assert schema.relation_names() == ("R", "S")

    def test_extended(self):
        schema = DatabaseSchema([RelationSchema("R", ("a",))])
        extended = schema.extended(RelationSchema("S", ("b",)))
        assert set(extended) == {"R", "S"}
        assert set(schema) == {"R"}  # original untouched

    def test_equality_and_hash(self):
        a = DatabaseSchema([RelationSchema("R", ("a",))])
        b = DatabaseSchema([RelationSchema("R", ("a",))])
        assert a == b
        assert hash(a) == hash(b)


class TestInputSchema:
    def test_input_schema_prepends_ts(self):
        schema = input_schema("Rin", ("x", "y"))
        assert schema.attributes == (TS_ATTRIBUTE, "x", "y")

    def test_reserved_ts_rejected(self):
        with pytest.raises(SchemaError, match="reserved"):
            input_schema("Rin", ("ts",))

    def test_payload_schema_strips_ts(self):
        schema = input_schema("Rin", ("x",))
        payload = payload_schema(schema)
        assert payload.attributes == ("x",)

    def test_payload_schema_requires_ts(self):
        with pytest.raises(SchemaError, match="not an input schema"):
            payload_schema(RelationSchema("R", ("a",)))
