"""Tests for input message sequences and the timestamped encoding."""

import pytest

from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.data.schema import RelationSchema, input_schema
from repro.errors import RunError, SchemaError


@pytest.fixture
def payload() -> RelationSchema:
    return RelationSchema("Rin", ("x", "y"))


class TestConstruction:
    def test_basic(self, payload):
        seq = InputSequence(payload, [[(1, 2)], [(3, 4), (5, 6)]])
        assert len(seq) == 2
        assert len(seq.message(1)) == 1
        assert len(seq.message(2)) == 2

    def test_ts_schema_rejected(self):
        with pytest.raises(SchemaError, match="payload schema"):
            InputSequence(input_schema("Rin", ("x",)), [])

    def test_empty_sequence(self, payload):
        seq = InputSequence.empty(payload)
        assert len(seq) == 0

    def test_empty_message_positions(self, payload):
        seq = InputSequence(payload, [[], [(1, 2)]])
        assert len(seq.message(1)) == 0
        assert len(seq.message(2)) == 1


class TestMessageAccess:
    def test_beyond_length_is_empty(self, payload):
        seq = InputSequence(payload, [[(1, 2)]])
        assert len(seq.message(99)) == 0

    def test_zero_position_rejected(self, payload):
        seq = InputSequence(payload, [[(1, 2)]])
        with pytest.raises(RunError, match="1-based"):
            seq.message(0)


class TestTimestampedEncoding:
    def test_roundtrip(self, payload):
        seq = InputSequence(payload, [[(1, 2)], [], [(3, 4)]])
        encoded = seq.to_timestamped()
        assert encoded.schema.attributes == ("ts", "x", "y")
        decoded = InputSequence.from_timestamped(encoded)
        assert decoded == seq

    def test_from_timestamped_orders_by_ts(self):
        schema = input_schema("Rin", ("x",))
        rel = Relation(schema, [(2, "b"), (1, "a")])
        seq = InputSequence.from_timestamped(rel)
        assert set(seq.message(1)) == {("a",)}
        assert set(seq.message(2)) == {("b",)}

    def test_bad_timestamp_rejected(self):
        schema = input_schema("Rin", ("x",))
        rel = Relation(schema, [(0, "a")])
        with pytest.raises(RunError, match="positive integer"):
            InputSequence.from_timestamped(rel)

    def test_missing_ts_rejected(self, payload):
        rel = Relation(payload, [(1, 2)])
        with pytest.raises(SchemaError):
            InputSequence.from_timestamped(rel)


class TestSlicing:
    def test_prefix(self, payload):
        seq = InputSequence(payload, [[(1, 1)], [(2, 2)], [(3, 3)]])
        assert len(seq.prefix(2)) == 2
        assert set(seq.prefix(2).message(2)) == {(2, 2)}

    def test_suffix(self, payload):
        seq = InputSequence(payload, [[(1, 1)], [(2, 2)], [(3, 3)]])
        suffix = seq.suffix(2)
        assert len(suffix) == 2
        assert set(suffix.message(1)) == {(2, 2)}

    def test_suffix_from_one_is_identity(self, payload):
        seq = InputSequence(payload, [[(1, 1)]])
        assert seq.suffix(1) == seq

    def test_concat(self, payload):
        a = InputSequence(payload, [[(1, 1)]])
        b = InputSequence(payload, [[(2, 2)]])
        joined = a.concat(b)
        assert len(joined) == 2
        assert set(joined.message(2)) == {(2, 2)}

    def test_active_domain(self, payload):
        seq = InputSequence(payload, [[(1, 2)], [(3, 4)]])
        assert seq.active_domain() == frozenset({1, 2, 3, 4})
