"""Store semantics: schema, pragmas, artifacts, and multi-process safety."""

from __future__ import annotations

import base64
import json
import multiprocessing
import pickle
import sqlite3

import pytest

from repro.analysis.verdict import Answer
from repro.serve import JobSpec, SolverService
from repro.serve.store import (
    STORE_SCHEMA_VERSION,
    Store,
    StoreArtifactProvider,
    StoreError,
)
from repro.workloads.scaling import pl_counter_sws


def test_answer_roundtrip(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    assert store.put_answer(
        "k", Answer.yes(witness=("a", "b"), detail="d"), procedure="p"
    )
    hit = store.get_answer("k")
    assert hit is not None and hit.is_yes and hit.witness == ("a", "b")
    assert store.has_answer("k") and not store.has_answer("absent")
    assert store.answer_count() == 1
    assert list(store.answer_keys()) == ["k"]
    assert store.get_answer("absent") is None
    store.close()


def test_reopen_sees_prior_writes(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    with Store(path) as store:
        store.put_answer("k", Answer.no(detail="first"))
        store.put_answer("k", Answer.no(detail="second"))  # replace
    with Store(path) as store:
        assert store.answer_count() == 1
        assert store.get_answer("k").detail == "second"


def test_wal_mode_and_tuned_pragmas(tmp_path):
    with Store(str(tmp_path / "s.sqlite3")) as store:
        stats = store.stats()
    assert stats["schema_version"] == STORE_SCHEMA_VERSION
    assert stats["journal_mode"] == "wal"
    assert stats["page_size"] == 4096
    assert stats["busy_timeout_ms"] == 10_000
    assert stats["file_bytes"] > 0


def test_newer_schema_version_is_refused(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    Store(path).close()
    with sqlite3.connect(path) as conn:
        conn.execute("UPDATE schema_version SET version = ?", (STORE_SCHEMA_VERSION + 1,))
    with pytest.raises(StoreError):
        Store(path)


def test_corrupt_payload_is_dropped_not_fatal(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    store = Store(path)
    store.put_answer("good", Answer.yes())
    with sqlite3.connect(path) as conn:
        conn.execute(
            "UPDATE answers SET payload = ? WHERE fingerprint = 'good'",
            (b"not a pickle",),
        )
    assert store.get_answer("good") is None  # dropped, not raised
    assert not store.has_answer("good")  # the corrupt row was deleted
    store.close()


def test_artifact_roundtrip_and_counts(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    assert store.put_artifact("kind.a", "k1", {"v": 1}, meta={"n": 1})
    assert store.put_artifact("kind.a", "k2", {"v": 2})
    assert store.put_artifact("kind.b", "k1", [1, 2, 3])
    assert store.get_artifact("kind.a", "k1") == {"v": 1}
    assert store.get_artifact("kind.b", "k1") == [1, 2, 3]
    assert store.get_artifact("kind.a", "absent") is None
    assert store.artifact_counts() == {"kind.a": 2, "kind.b": 1}
    # Same fingerprint under different kinds are distinct records.
    assert not store.put_artifact("kind.a", "k3", lambda: None)  # unpicklable
    store.close()


def test_meta_roundtrip_and_vacuum(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    assert store.get_meta("marker") is None
    store.set_meta("marker", "v1")
    store.set_meta("marker", "v2")
    assert store.get_meta("marker") == "v2"
    store.vacuum()  # must not raise
    store.close()
    with pytest.raises(StoreError):
        store.put_answer("k", Answer.yes())


def test_import_jsonl_ignore_vs_replace(tmp_path):
    def record(key: str, detail: str) -> str:
        payload = base64.b64encode(pickle.dumps(Answer.yes(detail=detail)))
        return json.dumps(
            {"key": key, "verdict": "yes", "pickle": payload.decode("ascii")}
        )

    legacy = tmp_path / "answers.jsonl"
    legacy.write_text(
        "garbage line\n"
        + record("k1", "from-jsonl")
        + "\n"
        + json.dumps({"key": "no-pickle"})
        + "\n"
    )
    store = Store(str(tmp_path / "s.sqlite3"))
    store.put_answer("k1", Answer.yes(detail="from-store"))
    assert store.import_jsonl(str(legacy)) == 0  # store row wins by default
    assert store.get_answer("k1").detail == "from-store"
    assert store.import_jsonl(str(legacy), replace=True) == 1
    assert store.get_answer("k1").detail == "from-jsonl"
    assert store.import_jsonl(str(tmp_path / "missing.jsonl")) == 0
    store.close()


def test_artifact_provider_string_and_structural_keys(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    provider = StoreArtifactProvider(store)
    # String keys are used verbatim (job-scoped slot keys).
    assert provider.store_artifact("kind", "job/slot/0", "value")
    assert provider.load_artifact("kind", "job/slot/0") == "value"
    # Structural keys are fingerprinted; equal structures alias.
    key_a = ("ucq", ("x", "y"), 3)
    key_b = ("ucq", ("x", "y"), 3)
    assert provider.store_artifact("kind", key_a, {"expanded": True})
    assert provider.load_artifact("kind", key_b) == {"expanded": True}
    # Unfingerprintable keys degrade to a miss, never an exception.
    assert provider.load_artifact("kind", object()) is None
    assert not provider.store_artifact("kind", object(), "value")
    store.close()


# -- multi-process safety ----------------------------------------------------------

_WRITES_PER_WORKER = 25


def _writer_process(path: str, worker_id: int) -> None:
    store = Store(path)
    for i in range(_WRITES_PER_WORKER):
        key = f"w{worker_id}-{i}"
        assert store.put_answer(
            key, Answer.yes(detail=key), procedure="concurrency-test"
        )
        assert store.put_artifact("test.kind", key, {"worker": worker_id, "i": i})
        # Every worker also hammers one shared key — contention must
        # serialize, never corrupt.
        assert store.put_answer("shared", Answer.yes(detail=f"worker-{worker_id}"))
    store.close()


def test_concurrent_writer_processes_lose_nothing(tmp_path):
    """The acceptance criterion: >=4 writer processes, zero lost records."""
    workers = 5
    path = str(tmp_path / "shared.sqlite3")
    Store(path).close()  # schema exists before the stampede
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()
    processes = [
        ctx.Process(target=_writer_process, args=(path, w)) for w in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    assert all(process.exitcode == 0 for process in processes)

    store = Store(path)
    assert store.answer_count() == workers * _WRITES_PER_WORKER + 1
    for w in range(workers):
        for i in range(_WRITES_PER_WORKER):
            key = f"w{w}-{i}"
            answer = store.get_answer(key)
            assert answer is not None and answer.detail == key
            assert store.get_artifact("test.kind", key) == {"worker": w, "i": i}
    shared = store.get_answer("shared")
    assert shared is not None and shared.detail.startswith("worker-")
    store.close()


# -- warm start through the artifact hook ------------------------------------------


def test_artifacts_warm_start_cold_process(tmp_path):
    """A fresh process (simulated: cleared module caches) reuses stored
    AFA searcher artifacts instead of regenerating them."""
    import repro.automata.afa as afa_mod
    from repro._stats import STATS

    directory = str(tmp_path / "cache")
    sws = pl_counter_sws(6)
    # Searcher artifacts persist when compiled inside a job scope; start
    # from a genuinely cold compile cache so this process stores them.
    afa_mod._SEARCHER_CACHE.clear()
    afa_mod._DIFF_SEARCHER_CACHE.clear()
    with SolverService(cache_dir=directory) as service:
        first = service.run_batch([JobSpec("nonempty_pl", (sws,))])[0]
        counts = service.cache.store.artifact_counts()
        store_path = service.cache.store.path
    assert counts.get("afa.searchers", 0) >= 1
    assert counts.get("afa.quotient", 0) >= 1

    # Wipe the answers (to force re-execution) but keep the artifacts,
    # and clear the in-process compile caches — the cold-process state.
    with sqlite3.connect(store_path) as conn:
        conn.execute("DELETE FROM answers")
    afa_mod._SEARCHER_CACHE.clear()
    afa_mod._DIFF_SEARCHER_CACHE.clear()

    hits_before = STATS.artifact_hits
    with SolverService(cache_dir=directory) as service:
        second = service.run_batch([JobSpec("nonempty_pl", (sws,))])[0]
    assert second.verdict == first.verdict
    assert STATS.artifact_hits > hits_before


# -- dead-letter table -------------------------------------------------------------


def _dlq_record(fingerprint="fp-1", **overrides):
    from repro.serve import DLQRecord

    defaults = dict(
        fingerprint=fingerprint,
        procedure="nonempty_pl",
        label="job",
        reason="retries exhausted",
        attempts=3,
        trips=[{"limit": "steps", "site": "afa.search_witness"}],
        last_budget={"step_budget": 64},
        payload=DLQRecord.encode_job((1, "x"), {"k": 2}),
    )
    defaults.update(overrides)
    return DLQRecord(**defaults)


def test_dlq_roundtrip(tmp_path):
    with Store(str(tmp_path / "s.sqlite3")) as store:
        store.put_dlq(_dlq_record("fp-a"))
        store.put_dlq(_dlq_record("fp-b", payload=None, last_budget=None))
        assert store.dlq_count() == 2
        assert store.stats()["dlq"] == 2
        loaded = store.get_dlq("fp-a")
        assert loaded.procedure == "nonempty_pl"
        assert loaded.attempts == 3
        assert loaded.trips == [{"limit": "steps", "site": "afa.search_witness"}]
        assert loaded.last_budget == {"step_budget": 64}
        assert loaded.job() == ((1, "x"), {"k": 2})
        bare = store.get_dlq("fp-b")
        assert bare.payload is None and bare.last_budget is None
        assert store.get_dlq("absent") is None
        # Upsert: one record per fingerprint, updated in place.
        store.put_dlq(_dlq_record("fp-a", attempts=5))
        assert store.dlq_count() == 2
        assert store.get_dlq("fp-a").attempts == 5
        assert store.delete_dlq("fp-a") and not store.delete_dlq("fp-a")
        assert store.purge_dlq() == 1
        assert store.list_dlq() == []


def test_dlq_survives_reopen(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    with Store(path) as store:
        store.put_dlq(_dlq_record("fp-a"))
    with Store(path) as store:
        assert [r.fingerprint for r in store.list_dlq()] == ["fp-a"]


def test_v1_store_upgrades_in_place(tmp_path):
    """A pre-dlq store opens cleanly: the table is added, version bumped."""
    path = str(tmp_path / "s.sqlite3")
    with Store(path) as store:
        store.put_answer("keep", Answer.yes(detail="survives the upgrade"))
    with sqlite3.connect(path) as conn:
        conn.execute("DROP TABLE dlq")
        conn.execute("UPDATE schema_version SET version = 1")
    with Store(path) as store:
        assert store.stats()["schema_version"] == STORE_SCHEMA_VERSION
        assert store.get_answer("keep").detail == "survives the upgrade"
        store.put_dlq(_dlq_record("fp-new"))
        assert store.dlq_count() == 1


# -- search-state snapshots (schema v3) --------------------------------------------


def test_search_state_roundtrip(tmp_path):
    with Store(str(tmp_path / "s.sqlite3")) as store:
        payload = {"frontier": (1, 2, 3), "answer": Answer.yes(witness=("a",))}
        assert store.put_search_state(
            "nonempty_pl", "fp-1", payload, meta={"pops": 3}
        )
        hit = store.get_search_state("nonempty_pl", "fp-1")
        assert hit == payload
        # Keyed by (procedure, fingerprint) — same fingerprint, other
        # procedure is a distinct row.
        assert store.get_search_state("validate_pl", "fp-1") is None
        assert store.search_state_count() == 1
        assert store.stats()["search_states"] == 1
        assert store.delete_search_state("nonempty_pl", "fp-1")
        assert not store.delete_search_state("nonempty_pl", "fp-1")
        assert store.search_state_count() == 0


def test_search_state_upsert_and_unpicklable(tmp_path):
    with Store(str(tmp_path / "s.sqlite3")) as store:
        store.put_search_state("p", "fp", {"version": 1})
        store.put_search_state("p", "fp", {"version": 2})
        assert store.get_search_state("p", "fp") == {"version": 2}
        assert store.search_state_count() == 1
        # Unpicklable snapshots stay memory-only; the store reports it.
        assert not store.put_search_state("p", "fp2", lambda: None)
        assert store.search_state_count() == 1


def test_search_state_corrupt_payload_is_dropped(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    with Store(path) as store:
        store.put_search_state("p", "fp", {"ok": True})
    with sqlite3.connect(path) as conn:
        conn.execute(
            "UPDATE search_states SET payload = ?", (b"not a pickle",)
        )
    with Store(path) as store:
        assert store.get_search_state("p", "fp") is None
        assert store.search_state_count() == 0  # the bad row was deleted


def test_v2_store_upgrades_to_v3_in_place(tmp_path):
    """A pre-delta (v2) store opens cleanly: ``search_states`` is added,
    version bumped, and the dlq table carries over untouched."""
    path = str(tmp_path / "s.sqlite3")
    with Store(path) as store:
        store.put_answer("keep", Answer.yes(detail="survives the upgrade"))
        store.put_dlq(_dlq_record("fp-old"))
    with sqlite3.connect(path) as conn:
        conn.execute("DROP TABLE search_states")
        conn.execute("UPDATE schema_version SET version = 2")
    with Store(path) as store:
        assert store.stats()["schema_version"] == STORE_SCHEMA_VERSION
        assert store.get_answer("keep").detail == "survives the upgrade"
        assert store.dlq_count() == 1
        assert store.put_search_state("p", "fp", {"fresh": True})
        assert store.get_search_state("p", "fp") == {"fresh": True}


def test_v1_store_upgrades_to_v3_chained(tmp_path):
    """A v1 store (no dlq, no search_states) chains straight to v3."""
    path = str(tmp_path / "s.sqlite3")
    with Store(path) as store:
        store.put_answer("keep", Answer.no(detail="v1 payload"))
    with sqlite3.connect(path) as conn:
        conn.execute("DROP TABLE dlq")
        conn.execute("DROP TABLE search_states")
        conn.execute("UPDATE schema_version SET version = 1")
    with Store(path) as store:
        assert store.stats()["schema_version"] == STORE_SCHEMA_VERSION
        assert store.get_answer("keep").detail == "v1 payload"
        store.put_dlq(_dlq_record("fp-new"))
        assert store.dlq_count() == 1
        assert store.put_search_state("p", "fp", {"fresh": True})
        assert store.get_search_state("p", "fp") == {"fresh": True}


# -- decorrelated retry backoff ----------------------------------------------------


def test_retry_backoff_bounds():
    import random

    from repro.serve.store import (
        _RETRY_BASE_SLEEP_S,
        _RETRY_CAP_SLEEP_S,
        retry_backoff_s,
    )

    rng = random.Random(42)
    previous = None
    for _ in range(200):
        wait = retry_backoff_s(previous, rng)
        assert _RETRY_BASE_SLEEP_S <= wait <= _RETRY_CAP_SLEEP_S
        window = max(_RETRY_BASE_SLEEP_S, 3.0 * (previous or _RETRY_BASE_SLEEP_S))
        assert wait <= window + 1e-9
        previous = wait


def test_retry_backoff_is_not_lockstep():
    """The old ``base * 2**attempt`` schedule retried every writer in
    phase; decorrelated jitter must give distinct schedules to writers
    with distinct rngs."""
    import random

    from repro.serve.store import retry_backoff_s

    def schedule(seed):
        rng, previous, waits = random.Random(seed), None, []
        for _ in range(5):
            previous = retry_backoff_s(previous, rng)
            waits.append(previous)
        return waits

    assert schedule(1) != schedule(2)
    assert len(set(schedule(3))) > 1  # and is not constant within a writer


def test_injected_store_fault_recovers_via_retry(tmp_path):
    """A chaos-injected first-attempt lock error never loses the write."""
    from repro import metrics
    from repro.guard import inject

    metrics.configure(enabled=True)
    with Store(str(tmp_path / "s.sqlite3")) as store:
        with inject.chaos(inject.ChaosSpec(store_error_rate=1.0)):
            assert store.put_answer("k", Answer.yes(detail="landed"))
            assert store.get_answer("k").detail == "landed"
    counters = metrics.snapshot()["counters"]
    assert metrics.counter_total(counters, "serve.store.retries") >= 2


def test_five_concurrent_writers_under_injected_faults(tmp_path):
    """Five writer threads on one store file, every first attempt failing
    with a transient lock error: all writes land, none raise (the S2
    backoff-regression scenario)."""
    import threading

    from repro.guard import inject

    path = str(tmp_path / "s.sqlite3")
    writers, writes_each = 5, 10
    errors: list[Exception] = []

    def writer(w: int) -> None:
        try:
            with Store(path) as store:
                for i in range(writes_each):
                    store.put_answer(f"w{w}-{i}", Answer.no(detail=f"w{w}-{i}"))
        except Exception as error:  # noqa: BLE001 - the assertion below reports it
            errors.append(error)

    with inject.chaos(inject.ChaosSpec(store_error_rate=0.5, seed=5)):
        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    assert not errors, f"writer raised: {errors[0]!r}"
    with Store(path) as store:
        assert store.answer_count() == writers * writes_each
        for w in range(writers):
            for i in range(writes_each):
                assert store.get_answer(f"w{w}-{i}").detail == f"w{w}-{i}"
