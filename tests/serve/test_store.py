"""Store semantics: schema, pragmas, artifacts, and multi-process safety."""

from __future__ import annotations

import base64
import json
import multiprocessing
import pickle
import sqlite3

import pytest

from repro.analysis.verdict import Answer
from repro.serve import JobSpec, SolverService
from repro.serve.store import (
    STORE_SCHEMA_VERSION,
    Store,
    StoreArtifactProvider,
    StoreError,
)
from repro.workloads.scaling import pl_counter_sws


def test_answer_roundtrip(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    assert store.put_answer(
        "k", Answer.yes(witness=("a", "b"), detail="d"), procedure="p"
    )
    hit = store.get_answer("k")
    assert hit is not None and hit.is_yes and hit.witness == ("a", "b")
    assert store.has_answer("k") and not store.has_answer("absent")
    assert store.answer_count() == 1
    assert list(store.answer_keys()) == ["k"]
    assert store.get_answer("absent") is None
    store.close()


def test_reopen_sees_prior_writes(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    with Store(path) as store:
        store.put_answer("k", Answer.no(detail="first"))
        store.put_answer("k", Answer.no(detail="second"))  # replace
    with Store(path) as store:
        assert store.answer_count() == 1
        assert store.get_answer("k").detail == "second"


def test_wal_mode_and_tuned_pragmas(tmp_path):
    with Store(str(tmp_path / "s.sqlite3")) as store:
        stats = store.stats()
    assert stats["schema_version"] == STORE_SCHEMA_VERSION
    assert stats["journal_mode"] == "wal"
    assert stats["page_size"] == 4096
    assert stats["busy_timeout_ms"] == 10_000
    assert stats["file_bytes"] > 0


def test_newer_schema_version_is_refused(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    Store(path).close()
    with sqlite3.connect(path) as conn:
        conn.execute("UPDATE schema_version SET version = ?", (STORE_SCHEMA_VERSION + 1,))
    with pytest.raises(StoreError):
        Store(path)


def test_corrupt_payload_is_dropped_not_fatal(tmp_path):
    path = str(tmp_path / "s.sqlite3")
    store = Store(path)
    store.put_answer("good", Answer.yes())
    with sqlite3.connect(path) as conn:
        conn.execute(
            "UPDATE answers SET payload = ? WHERE fingerprint = 'good'",
            (b"not a pickle",),
        )
    assert store.get_answer("good") is None  # dropped, not raised
    assert not store.has_answer("good")  # the corrupt row was deleted
    store.close()


def test_artifact_roundtrip_and_counts(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    assert store.put_artifact("kind.a", "k1", {"v": 1}, meta={"n": 1})
    assert store.put_artifact("kind.a", "k2", {"v": 2})
    assert store.put_artifact("kind.b", "k1", [1, 2, 3])
    assert store.get_artifact("kind.a", "k1") == {"v": 1}
    assert store.get_artifact("kind.b", "k1") == [1, 2, 3]
    assert store.get_artifact("kind.a", "absent") is None
    assert store.artifact_counts() == {"kind.a": 2, "kind.b": 1}
    # Same fingerprint under different kinds are distinct records.
    assert not store.put_artifact("kind.a", "k3", lambda: None)  # unpicklable
    store.close()


def test_meta_roundtrip_and_vacuum(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    assert store.get_meta("marker") is None
    store.set_meta("marker", "v1")
    store.set_meta("marker", "v2")
    assert store.get_meta("marker") == "v2"
    store.vacuum()  # must not raise
    store.close()
    with pytest.raises(StoreError):
        store.put_answer("k", Answer.yes())


def test_import_jsonl_ignore_vs_replace(tmp_path):
    def record(key: str, detail: str) -> str:
        payload = base64.b64encode(pickle.dumps(Answer.yes(detail=detail)))
        return json.dumps(
            {"key": key, "verdict": "yes", "pickle": payload.decode("ascii")}
        )

    legacy = tmp_path / "answers.jsonl"
    legacy.write_text(
        "garbage line\n"
        + record("k1", "from-jsonl")
        + "\n"
        + json.dumps({"key": "no-pickle"})
        + "\n"
    )
    store = Store(str(tmp_path / "s.sqlite3"))
    store.put_answer("k1", Answer.yes(detail="from-store"))
    assert store.import_jsonl(str(legacy)) == 0  # store row wins by default
    assert store.get_answer("k1").detail == "from-store"
    assert store.import_jsonl(str(legacy), replace=True) == 1
    assert store.get_answer("k1").detail == "from-jsonl"
    assert store.import_jsonl(str(tmp_path / "missing.jsonl")) == 0
    store.close()


def test_artifact_provider_string_and_structural_keys(tmp_path):
    store = Store(str(tmp_path / "s.sqlite3"))
    provider = StoreArtifactProvider(store)
    # String keys are used verbatim (job-scoped slot keys).
    assert provider.store_artifact("kind", "job/slot/0", "value")
    assert provider.load_artifact("kind", "job/slot/0") == "value"
    # Structural keys are fingerprinted; equal structures alias.
    key_a = ("ucq", ("x", "y"), 3)
    key_b = ("ucq", ("x", "y"), 3)
    assert provider.store_artifact("kind", key_a, {"expanded": True})
    assert provider.load_artifact("kind", key_b) == {"expanded": True}
    # Unfingerprintable keys degrade to a miss, never an exception.
    assert provider.load_artifact("kind", object()) is None
    assert not provider.store_artifact("kind", object(), "value")
    store.close()


# -- multi-process safety ----------------------------------------------------------

_WRITES_PER_WORKER = 25


def _writer_process(path: str, worker_id: int) -> None:
    store = Store(path)
    for i in range(_WRITES_PER_WORKER):
        key = f"w{worker_id}-{i}"
        assert store.put_answer(
            key, Answer.yes(detail=key), procedure="concurrency-test"
        )
        assert store.put_artifact("test.kind", key, {"worker": worker_id, "i": i})
        # Every worker also hammers one shared key — contention must
        # serialize, never corrupt.
        assert store.put_answer("shared", Answer.yes(detail=f"worker-{worker_id}"))
    store.close()


def test_concurrent_writer_processes_lose_nothing(tmp_path):
    """The acceptance criterion: >=4 writer processes, zero lost records."""
    workers = 5
    path = str(tmp_path / "shared.sqlite3")
    Store(path).close()  # schema exists before the stampede
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()
    processes = [
        ctx.Process(target=_writer_process, args=(path, w)) for w in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    assert all(process.exitcode == 0 for process in processes)

    store = Store(path)
    assert store.answer_count() == workers * _WRITES_PER_WORKER + 1
    for w in range(workers):
        for i in range(_WRITES_PER_WORKER):
            key = f"w{w}-{i}"
            answer = store.get_answer(key)
            assert answer is not None and answer.detail == key
            assert store.get_artifact("test.kind", key) == {"worker": w, "i": i}
    shared = store.get_answer("shared")
    assert shared is not None and shared.detail.startswith("worker-")
    store.close()


# -- warm start through the artifact hook ------------------------------------------


def test_artifacts_warm_start_cold_process(tmp_path):
    """A fresh process (simulated: cleared module caches) reuses stored
    AFA searcher artifacts instead of regenerating them."""
    import repro.automata.afa as afa_mod
    from repro._stats import STATS

    directory = str(tmp_path / "cache")
    sws = pl_counter_sws(6)
    # Searcher artifacts persist when compiled inside a job scope; start
    # from a genuinely cold compile cache so this process stores them.
    afa_mod._SEARCHER_CACHE.clear()
    afa_mod._DIFF_SEARCHER_CACHE.clear()
    with SolverService(cache_dir=directory) as service:
        first = service.run_batch([JobSpec("nonempty_pl", (sws,))])[0]
        counts = service.cache.store.artifact_counts()
        store_path = service.cache.store.path
    assert counts.get("afa.searchers", 0) >= 1
    assert counts.get("afa.quotient", 0) >= 1

    # Wipe the answers (to force re-execution) but keep the artifacts,
    # and clear the in-process compile caches — the cold-process state.
    with sqlite3.connect(store_path) as conn:
        conn.execute("DELETE FROM answers")
    afa_mod._SEARCHER_CACHE.clear()
    afa_mod._DIFF_SEARCHER_CACHE.clear()

    hits_before = STATS.artifact_hits
    with SolverService(cache_dir=directory) as service:
        second = service.run_batch([JobSpec("nonempty_pl", (sws,))])[0]
    assert second.verdict == first.verdict
    assert STATS.artifact_hits > hits_before
