"""Answer cache semantics: LRU, the UNKNOWN taboo, and the disk tier."""

from __future__ import annotations

import json

from repro.analysis.verdict import Answer
from repro.guard import Trip
from repro.serve.cache import AnswerCache, cacheable


def test_basic_hit_miss():
    cache = AnswerCache(capacity=8)
    assert cache.get("k") is None
    assert cache.put("k", Answer.yes(detail="x"))
    hit = cache.get("k")
    assert hit is not None and hit.is_yes
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)


def test_lru_eviction_order():
    cache = AnswerCache(capacity=2)
    cache.put("a", Answer.yes())
    cache.put("b", Answer.no())
    assert cache.get("a") is not None  # refresh a; b is now LRU
    cache.put("c", Answer.yes())
    assert "b" not in cache
    assert cache.get("b") is None
    assert cache.get("a") is not None and cache.get("c") is not None
    assert cache.stats.evictions == 1


def test_unknown_never_cached():
    cache = AnswerCache()
    plain_unknown = Answer.unknown(detail="ran out")
    tripped = Answer.unknown(
        detail="deadline",
        trip=Trip(limit="deadline_s", site="afa.search", steps=10, elapsed_s=0.1),
    )
    assert not cacheable(plain_unknown)
    assert not cacheable(tripped)
    assert not cache.put("u1", plain_unknown)
    assert not cache.put("u2", tripped)
    assert cache.get("u1") is None and cache.get("u2") is None
    assert cache.stats.rejected_unknown == 2
    assert cache.stats.stores == 0


def test_decided_answers_are_cacheable():
    assert cacheable(Answer.yes())
    assert cacheable(Answer.no(witness="w"))
    assert cacheable({"verdict-free": True})  # plain values count as decided


def test_disk_tier_roundtrip(tmp_path):
    d = str(tmp_path / "cache")
    first = AnswerCache(directory=d)
    first.put("k1", Answer.yes(witness=("a", "b"), detail="afa"), procedure="nonempty_pl")
    first.put("k2", Answer.no(detail="empty"))

    second = AnswerCache(directory=d)  # fresh process, same directory
    assert second.stats.disk_loaded == 2
    hit = second.get("k1")
    assert hit is not None and hit.is_yes and hit.witness == ("a", "b")
    # The hit was promoted to memory; record metadata is readable JSON.
    records = [
        json.loads(line)
        for line in (tmp_path / "cache" / "answers.jsonl").read_text().splitlines()
    ]
    assert records[0]["verdict"] == "yes"
    assert records[0]["procedure"] == "nonempty_pl"


def test_disk_tier_tolerates_garbage(tmp_path):
    d = tmp_path / "cache"
    d.mkdir()
    (d / "answers.jsonl").write_text("not json\n\n{\"key\": \"x\"}\n")
    cache = AnswerCache(directory=str(d))  # must not raise
    assert cache.get("x") is None  # record without pickle payload ignored


def test_last_record_wins_on_reload(tmp_path):
    d = str(tmp_path / "cache")
    cache = AnswerCache(directory=d)
    cache.put("k", Answer.yes(detail="first"))
    cache.put("k", Answer.yes(detail="second"))
    reloaded = AnswerCache(directory=d)
    assert reloaded.get("k").detail == "second"
