"""Answer cache semantics: LRU, the UNKNOWN taboo, and the disk tier."""

from __future__ import annotations

import json
import sqlite3
import threading

from repro.analysis.verdict import Answer
from repro.guard import Trip
from repro.serve.cache import AnswerCache, cacheable


def test_basic_hit_miss():
    cache = AnswerCache(capacity=8)
    assert cache.get("k") is None
    assert cache.put("k", Answer.yes(detail="x"))
    hit = cache.get("k")
    assert hit is not None and hit.is_yes
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)


def test_lru_eviction_order():
    cache = AnswerCache(capacity=2)
    cache.put("a", Answer.yes())
    cache.put("b", Answer.no())
    assert cache.get("a") is not None  # refresh a; b is now LRU
    cache.put("c", Answer.yes())
    assert "b" not in cache
    assert cache.get("b") is None
    assert cache.get("a") is not None and cache.get("c") is not None
    assert cache.stats.evictions == 1


def test_unknown_never_cached():
    cache = AnswerCache()
    plain_unknown = Answer.unknown(detail="ran out")
    tripped = Answer.unknown(
        detail="deadline",
        trip=Trip(limit="deadline_s", site="afa.search", steps=10, elapsed_s=0.1),
    )
    assert not cacheable(plain_unknown)
    assert not cacheable(tripped)
    assert not cache.put("u1", plain_unknown)
    assert not cache.put("u2", tripped)
    assert cache.get("u1") is None and cache.get("u2") is None
    assert cache.stats.rejected_unknown == 2
    assert cache.stats.stores == 0


def test_decided_answers_are_cacheable():
    assert cacheable(Answer.yes())
    assert cacheable(Answer.no(witness="w"))
    assert cacheable({"verdict-free": True})  # plain values count as decided


def test_disk_tier_roundtrip(tmp_path):
    d = str(tmp_path / "cache")
    first = AnswerCache(directory=d)
    first.put("k1", Answer.yes(witness=("a", "b"), detail="afa"), procedure="nonempty_pl")
    first.put("k2", Answer.no(detail="empty"))
    first.close()

    second = AnswerCache(directory=d)  # fresh process, same directory
    assert second.stats.disk_loaded == 2
    hit = second.get("k1")
    assert hit is not None and hit.is_yes and hit.witness == ("a", "b")
    # Record metadata (verdict, procedure) is queryable without pickle.
    with sqlite3.connect(second.store.path) as conn:
        verdict, procedure = conn.execute(
            "SELECT verdict, procedure FROM answers WHERE fingerprint = 'k1'"
        ).fetchone()
    assert verdict == "yes"
    assert procedure == "nonempty_pl"
    second.close()


def test_disk_tier_tolerates_garbage_legacy_jsonl(tmp_path):
    d = tmp_path / "cache"
    d.mkdir()
    (d / "answers.jsonl").write_text("not json\n\n{\"key\": \"x\"}\n")
    cache = AnswerCache(directory=str(d))  # must not raise
    assert cache.get("x") is None  # record without pickle payload ignored
    cache.close()


def test_last_record_wins_on_reload(tmp_path):
    d = str(tmp_path / "cache")
    cache = AnswerCache(directory=d)
    cache.put("k", Answer.yes(detail="first"))
    cache.put("k", Answer.yes(detail="second"))
    cache.close()
    reloaded = AnswerCache(directory=d)
    assert reloaded.get("k").detail == "second"
    reloaded.close()


def test_unpicklable_result_is_memory_only(tmp_path):
    cache = AnswerCache(directory=str(tmp_path / "cache"))
    unpicklable = {"verdict-free": True, "lock": threading.Lock()}
    # Contract: True iff *every* configured tier holds the result.
    assert not cache.put("k", unpicklable)
    assert cache.stats.disk_skipped == 1
    assert cache.get("k") is unpicklable  # memory tier still serves it
    assert not cache.store.has_answer("k")
    cache.close()
    # Without a disk tier there is nothing to skip: put is fully stored.
    memory_only = AnswerCache()
    assert memory_only.put("k", {"verdict-free": True, "lock": threading.Lock()})
    assert memory_only.stats.disk_skipped == 0


def test_len_counts_disk_resident_keys(tmp_path):
    d = str(tmp_path / "cache")
    seed = AnswerCache(directory=d)
    seed.put("k1", Answer.yes())
    seed.put("k2", Answer.no())
    seed.close()

    cache = AnswerCache(capacity=1, directory=d)
    cache.put("k3", Answer.yes())  # memory holds only k3 (capacity 1)
    # __len__ must agree with __contains__: all three keys are visible.
    assert "k1" in cache and "k2" in cache and "k3" in cache
    assert len(cache) == 3
    cache.clear_memory()
    assert len(cache) == 3  # k3 reached disk; nothing was lost
    cache.close()


def test_legacy_jsonl_migration_roundtrip(tmp_path):
    import base64
    import pickle

    d = tmp_path / "cache"
    d.mkdir()
    # A legacy-format JSONL tier, as written before the SQLite store.
    record = {
        "key": "legacy-k",
        "verdict": "yes",
        "procedure": "nonempty_pl",
        "pickle": base64.b64encode(pickle.dumps(Answer.yes(detail="legacy"))).decode(
            "ascii"
        ),
    }
    (d / "answers.jsonl").write_text(json.dumps(record) + "\n")

    cache = AnswerCache(directory=str(d))
    assert cache.stats.disk_loaded == 1
    hit = cache.get("legacy-k")
    assert hit is not None and hit.is_yes and hit.detail == "legacy"
    cache.close()

    # Import is one-time: a store-side update survives reopening even
    # though the (unchanged) JSONL file still holds the old record.
    cache = AnswerCache(directory=str(d))
    cache.put("legacy-k", Answer.yes(detail="updated"))
    cache.close()
    reopened = AnswerCache(directory=str(d))
    assert reopened.get("legacy-k").detail == "updated"
    reopened.close()


def test_disk_tier_io_errors_degrade_to_misses(tmp_path):
    """A broken store behind the cache means misses, never crashes."""
    from repro import metrics

    metrics.configure(enabled=True)
    d = str(tmp_path / "cache")
    cache = AnswerCache(directory=d)
    assert cache.put("k", Answer.yes(detail="stored"))
    # Break the disk tier out from under the cache (not via cache.close,
    # which would detach it) and drop the memory tier.
    cache.store.close()
    cache._memory.clear()
    assert cache.get("k") is None  # disk read fails -> miss
    assert cache.put("k2", Answer.no()) is False  # disk write fails -> skipped
    counters = metrics.snapshot()["counters"]
    assert metrics.counter_total(counters, "serve.store.io_errors") >= 2
