"""``python -m repro.serve`` end to end (in-process via main())."""

from __future__ import annotations

import base64
import json
import pickle

import pytest

from repro.serve.__main__ import main
from repro.workloads.scaling import pl_counter_sws


def write_jobs(path, lines):
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))


@pytest.fixture
def jobs_file(tmp_path):
    path = tmp_path / "jobs.jsonl"
    write_jobs(
        path,
        [
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.scaling:pl_counter_sws",
                        "args": [6],
                    }
                ],
                "label": "counter-6",
            },
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.scaling:pl_counter_sws",
                        "args": [6],
                    }
                ],
                "budget": {"deadline_s": 30.0},
                "label": "counter-6-dup",
            },
        ],
    )
    return path


def test_run_writes_results_in_order(tmp_path, jobs_file):
    out = tmp_path / "results.jsonl"
    assert main(["run", str(jobs_file), "--out", str(out)]) == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    *results, summary = records
    assert [r["label"] for r in results] == ["counter-6", "counter-6-dup"]
    assert all(r["verdict"] == "yes" for r in results)
    assert results[0]["fingerprint"] == results[1]["fingerprint"]
    assert results[1]["deduped"] is True
    assert summary["_summary"]["jobs_executed"] == 1


def test_run_with_cache_dir_hits_on_second_run(tmp_path, jobs_file):
    out = tmp_path / "results.jsonl"
    cache_dir = str(tmp_path / "cache")
    assert main(["run", str(jobs_file), "--out", str(out), "--cache-dir", cache_dir]) == 0
    assert main(["run", str(jobs_file), "--out", str(out), "--cache-dir", cache_dir]) == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    *results, summary = records
    assert all(r["from_cache"] for r in results[:1])  # first job hits disk cache
    assert summary["_summary"]["jobs_executed"] == 0
    assert summary["_summary"]["cache"]["hits"] >= 1


def test_pickled_instance_spec(tmp_path):
    payload = base64.b64encode(pickle.dumps(pl_counter_sws(5))).decode("ascii")
    path = tmp_path / "jobs.jsonl"
    write_jobs(
        path,
        [{"procedure": "nonempty_pl", "instances": [{"pickle": payload}]}],
    )
    out = tmp_path / "results.jsonl"
    assert main(["run", str(path), "--out", str(out)]) == 0
    first = json.loads(out.read_text().splitlines()[0])
    assert first["verdict"] == "yes"


def test_fingerprint_command(capsys, jobs_file):
    assert main(["fingerprint", str(jobs_file)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    # Same instance => same fingerprint, regardless of label/budget.
    assert lines[0].split()[0] == lines[1].split()[0]


def test_procedures_command(capsys):
    assert main(["procedures"]) == 0
    names = capsys.readouterr().out.split()
    assert "nonempty_pl" in names and "compose_mdtb_pl" in names


def test_store_stats_vacuum_import_commands(tmp_path, jobs_file, capsys):
    cache_dir = str(tmp_path / "cache")
    out = tmp_path / "results.jsonl"
    assert main(["run", str(jobs_file), "--out", str(out), "--cache-dir", cache_dir]) == 0

    assert main(["store", "stats", cache_dir]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["answers"] == 1
    assert stats["journal_mode"] == "wal"
    # The quotient artifact is job-scoped, so it stores even when this
    # process's compile caches were already warm.
    assert "afa.quotient" in stats["artifacts"]

    assert main(["store", "vacuum", cache_dir]) == 0

    # Importing a legacy JSONL file adds its records to the store.
    from repro.analysis.verdict import Answer

    legacy = tmp_path / "legacy.jsonl"
    payload = base64.b64encode(pickle.dumps(Answer.yes(detail="legacy")))
    legacy.write_text(
        json.dumps({"key": "legacy-k", "pickle": payload.decode("ascii")}) + "\n"
    )
    assert main(["store", "import", cache_dir, str(legacy)]) == 0
    assert "imported 1" in capsys.readouterr().out
    assert main(["store", "stats", cache_dir]) == 0
    assert json.loads(capsys.readouterr().out)["answers"] == 2


def test_store_stats_missing_store_errors(tmp_path):
    with pytest.raises(SystemExit):
        main(["store", "stats", str(tmp_path / "nowhere")])


def test_disallowed_factory_module(tmp_path):
    path = tmp_path / "jobs.jsonl"
    write_jobs(
        path,
        [
            {
                "procedure": "nonempty_pl",
                "instances": [{"factory": "os:getcwd"}],
            }
        ],
    )
    with pytest.raises(SystemExit):
        main(["run", str(path)])


def test_bad_json_line(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text('{"procedure": "nonempty_pl"\n')
    with pytest.raises(SystemExit):
        main(["fingerprint", str(path)])


def test_comments_and_blanks_skipped(tmp_path, capsys):
    path = tmp_path / "jobs.jsonl"
    path.write_text(
        "# a comment\n\n"
        + json.dumps(
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {"factory": "repro.workloads.scaling:pl_counter_sws", "args": [4]}
                ],
            }
        )
        + "\n"
    )
    assert main(["fingerprint", str(path)]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 1
