"""``python -m repro.serve`` end to end (in-process via main())."""

from __future__ import annotations

import base64
import json
import pickle

import pytest

from repro.serve.__main__ import main
from repro.workloads.scaling import pl_counter_sws


def write_jobs(path, lines):
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))


@pytest.fixture
def jobs_file(tmp_path):
    path = tmp_path / "jobs.jsonl"
    write_jobs(
        path,
        [
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.scaling:pl_counter_sws",
                        "args": [6],
                    }
                ],
                "label": "counter-6",
            },
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.scaling:pl_counter_sws",
                        "args": [6],
                    }
                ],
                "budget": {"deadline_s": 30.0},
                "label": "counter-6-dup",
            },
        ],
    )
    return path


def test_run_writes_results_in_order(tmp_path, jobs_file):
    out = tmp_path / "results.jsonl"
    assert main(["run", str(jobs_file), "--out", str(out)]) == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    *results, summary = records
    assert [r["label"] for r in results] == ["counter-6", "counter-6-dup"]
    assert all(r["verdict"] == "yes" for r in results)
    assert results[0]["fingerprint"] == results[1]["fingerprint"]
    assert results[1]["deduped"] is True
    assert summary["_summary"]["jobs_executed"] == 1


def test_repeat_reuses_delta_sessions(tmp_path, capsys):
    """--repeat routes PL jobs through one Session per fingerprint; the
    `"@round"` placeholder builds an edited instance each round, so the
    edited spec re-checks incrementally instead of resubmitting."""
    path = tmp_path / "jobs.jsonl"
    write_jobs(
        path,
        [
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.editing:edited_menu",
                        "kwargs": {"step": "@round", "edits": 4},
                    }
                ],
                "label": "edited-menu",
            },
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.scaling:pl_counter_sws",
                        "args": [5],
                    }
                ],
                "label": "counter-5",
            },
        ],
    )
    out = tmp_path / "results.jsonl"
    assert main(["run", str(path), "--repeat", "3", "--out", str(out)]) == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    *results, summary = records
    assert summary["delta"]["sessions"] == 2
    assert summary["delta"]["rechecks"] == 4  # 2 jobs x 2 later rounds
    menu = [r for r in results if r["label"] == "edited-menu"]
    assert menu[0]["delta_mode"] == "solve"
    assert all(r["delta_mode"] in ("replay", "warm") for r in menu[1:])
    counter = [r for r in results if r["label"] == "counter-5"]
    # The unchanged spec re-checks as an empty delta every round.
    assert [r["delta_mode"] for r in counter[1:]] == ["cached", "cached"]
    assert all(r["verdict"] == "yes" for r in results)
    assert "delta: 2 session(s)" in capsys.readouterr().err


def test_run_with_cache_dir_hits_on_second_run(tmp_path, jobs_file):
    out = tmp_path / "results.jsonl"
    cache_dir = str(tmp_path / "cache")
    assert main(["run", str(jobs_file), "--out", str(out), "--cache-dir", cache_dir]) == 0
    assert main(["run", str(jobs_file), "--out", str(out), "--cache-dir", cache_dir]) == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    *results, summary = records
    assert all(r["from_cache"] for r in results[:1])  # first job hits disk cache
    assert summary["_summary"]["jobs_executed"] == 0
    assert summary["_summary"]["cache"]["hits"] >= 1


def test_pickled_instance_spec(tmp_path):
    payload = base64.b64encode(pickle.dumps(pl_counter_sws(5))).decode("ascii")
    path = tmp_path / "jobs.jsonl"
    write_jobs(
        path,
        [{"procedure": "nonempty_pl", "instances": [{"pickle": payload}]}],
    )
    out = tmp_path / "results.jsonl"
    assert main(["run", str(path), "--out", str(out)]) == 0
    first = json.loads(out.read_text().splitlines()[0])
    assert first["verdict"] == "yes"


def test_fingerprint_command(capsys, jobs_file):
    assert main(["fingerprint", str(jobs_file)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    # Same instance => same fingerprint, regardless of label/budget.
    assert lines[0].split()[0] == lines[1].split()[0]


def test_procedures_command(capsys):
    assert main(["procedures"]) == 0
    names = capsys.readouterr().out.split()
    assert "nonempty_pl" in names and "compose_mdtb_pl" in names


def test_store_stats_vacuum_import_commands(tmp_path, jobs_file, capsys):
    cache_dir = str(tmp_path / "cache")
    out = tmp_path / "results.jsonl"
    assert main(["run", str(jobs_file), "--out", str(out), "--cache-dir", cache_dir]) == 0

    assert main(["store", "stats", cache_dir]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["answers"] == 1
    assert stats["journal_mode"] == "wal"
    # The quotient artifact is job-scoped, so it stores even when this
    # process's compile caches were already warm.
    assert "afa.quotient" in stats["artifacts"]

    assert main(["store", "vacuum", cache_dir]) == 0

    # Importing a legacy JSONL file adds its records to the store.
    from repro.analysis.verdict import Answer

    legacy = tmp_path / "legacy.jsonl"
    payload = base64.b64encode(pickle.dumps(Answer.yes(detail="legacy")))
    legacy.write_text(
        json.dumps({"key": "legacy-k", "pickle": payload.decode("ascii")}) + "\n"
    )
    assert main(["store", "import", cache_dir, str(legacy)]) == 0
    assert "imported 1" in capsys.readouterr().out
    assert main(["store", "stats", cache_dir]) == 0
    assert json.loads(capsys.readouterr().out)["answers"] == 2


def test_store_stats_missing_store_errors(tmp_path):
    with pytest.raises(SystemExit):
        main(["store", "stats", str(tmp_path / "nowhere")])


def test_disallowed_factory_module(tmp_path):
    path = tmp_path / "jobs.jsonl"
    write_jobs(
        path,
        [
            {
                "procedure": "nonempty_pl",
                "instances": [{"factory": "os:getcwd"}],
            }
        ],
    )
    with pytest.raises(SystemExit):
        main(["run", str(path)])


def test_bad_json_line(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text('{"procedure": "nonempty_pl"\n')
    with pytest.raises(SystemExit):
        main(["fingerprint", str(path)])


def test_comments_and_blanks_skipped(tmp_path, capsys):
    path = tmp_path / "jobs.jsonl"
    path.write_text(
        "# a comment\n\n"
        + json.dumps(
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {"factory": "repro.workloads.scaling:pl_counter_sws", "args": [4]}
                ],
            }
        )
        + "\n"
    )
    assert main(["fingerprint", str(path)]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 1


# -- resilience flags and the dlq subcommand ---------------------------------------


def _starved_jobs_file(tmp_path, step_budget, label="counter-12"):
    """One job that needs >1024 steps under a too-small step budget."""
    path = tmp_path / "starved.jsonl"
    write_jobs(
        path,
        [
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.scaling:pl_counter_sws",
                        "args": [12],
                    }
                ],
                "budget": {"step_budget": step_budget},
                "label": label,
            }
        ],
    )
    return path


def test_run_prints_outcomes_and_strict_fails_unknown(tmp_path, capsys):
    jobs = _starved_jobs_file(tmp_path, step_budget=256)
    out = tmp_path / "results.jsonl"
    # A tripped job is a sound UNKNOWN: exit 0 without --strict...
    assert main(["run", str(jobs), "--out", str(out)]) == 0
    stderr = capsys.readouterr().err
    assert "outcomes: 0 decided, 1 unknown, 0 rejected, 0 dead_lettered" in stderr
    # ...and exit 1 with it.
    assert main(["run", str(jobs), "--out", str(out), "--strict"]) == 1
    assert "FAIL (--strict): 1 unknown" in capsys.readouterr().err


def test_run_retries_convert_unknown_to_decided(tmp_path, capsys):
    jobs = _starved_jobs_file(tmp_path, step_budget=256)
    out = tmp_path / "results.jsonl"
    code = main(
        ["run", str(jobs), "--out", str(out), "--strict", "--retries", "3",
         "--budget-multiplier", "4"]
    )
    assert code == 0
    record = json.loads(out.read_text().splitlines()[0])
    assert record["outcome"] == "decided"
    assert record["verdict"] == "yes"
    assert record["attempts"] == 3  # 256 -> 1024 -> 4096 steps
    stderr = capsys.readouterr().err
    assert "outcomes: 1 decided" in stderr
    assert "2 retried" in stderr


def test_run_admission_rejects_and_strict_fails(tmp_path, capsys):
    path = tmp_path / "two.jsonl"
    write_jobs(
        path,
        [
            {
                "procedure": "nonempty_pl",
                "instances": [
                    {
                        "factory": "repro.workloads.scaling:pl_counter_sws",
                        "args": [bits],
                    }
                ],
                "label": f"counter-{bits}",
            }
            for bits in (4, 5)
        ],
    )
    out = tmp_path / "results.jsonl"
    assert main(["run", str(path), "--out", str(out), "--max-queue-depth", "1"]) == 0
    records = [json.loads(line) for line in out.read_text().splitlines()[:-1]]
    assert [r["outcome"] for r in records] == ["decided", "rejected"]
    assert "1 rejected" in capsys.readouterr().err
    assert (
        main(
            ["run", str(path), "--out", str(out), "--max-queue-depth", "1",
             "--strict"]
        )
        == 1
    )


def test_dead_letter_run_then_dlq_list_retry_purge(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    # 4 -> 8 steps after one escalation: still starved => dead-lettered.
    jobs = _starved_jobs_file(tmp_path, step_budget=4)
    out = tmp_path / "results.jsonl"
    code = main(
        ["run", str(jobs), "--out", str(out), "--cache-dir", cache_dir,
         "--retries", "2", "--budget-multiplier", "2"]
    )
    assert code == 1
    stderr = capsys.readouterr().err
    assert "1 dead_lettered" in stderr and "FAIL: 1 job(s) dead-lettered" in stderr
    record = json.loads(out.read_text().splitlines()[0])
    assert record["outcome"] == "dead_lettered"

    # list: one record, both human and JSON forms.
    assert main(["dlq", "list", cache_dir]) == 0
    human = capsys.readouterr().out
    assert "nonempty_pl" in human and "counter-12" in human
    assert main(["dlq", "list", cache_dir, "--json"]) == 0
    dlq_record = json.loads(capsys.readouterr().out)
    assert dlq_record["attempts"] == 2
    assert dlq_record["last_budget"] == {"step_budget": 8}
    assert dlq_record["has_payload"] is True

    # retry with more escalation room: 8 -> 256 -> 8192 steps decides.
    code = main(
        ["dlq", "retry", cache_dir, "--retries", "3", "--budget-multiplier", "32"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "recovered" in captured.out
    assert "1 recovered, 0 still dead" in captured.err
    assert main(["dlq", "list", cache_dir]) == 0
    assert "dlq: empty" in capsys.readouterr().err

    # purge on an empty queue is a clean no-op.
    assert main(["dlq", "purge", cache_dir]) == 0
    assert "purged 0" in capsys.readouterr().err


def test_dlq_retry_without_escalation_stays_dead(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    jobs = _starved_jobs_file(tmp_path, step_budget=4)
    assert main(
        ["run", str(jobs), "--out", str(tmp_path / "r.jsonl"), "--cache-dir",
         cache_dir, "--retries", "2", "--budget-multiplier", "2"]
    ) == 1
    capsys.readouterr()
    # Re-running at the recorded (still-starved) budget cannot recover.
    assert main(["dlq", "retry", cache_dir]) == 1
    captured = capsys.readouterr()
    assert "0 recovered, 1 still dead" in captured.err
    assert main(["dlq", "list", cache_dir, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["attempts"] == 2
