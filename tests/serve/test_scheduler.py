"""Scheduler semantics: dedup, cancellation, budgets, cache speedup."""

from __future__ import annotations

import time

import pytest

from repro.analysis.verdict import Answer
from repro.guard import Budget, CancelToken, checkpoint, guarded
from repro.serve import (
    CANCELLED_DETAIL,
    JobSpec,
    SolverService,
    register_procedure,
)
from repro.serve.registry import UnknownProcedureError
from repro.workloads.scaling import pl_counter_sws

CALLS: list[str] = []


@guarded()
def counting_procedure(tag: str) -> Answer:
    """Test stub: records every actual execution."""
    CALLS.append(tag)
    return Answer.yes(detail=f"ran {tag}")


@guarded()
def slow_procedure(tag: str, steps: int = 50) -> Answer:
    for _ in range(steps):
        checkpoint("test.slow")
        time.sleep(0.001)
    return Answer.yes(detail=f"ran {tag}")


@pytest.fixture(autouse=True)
def _register_stubs():
    CALLS.clear()
    register_procedure("test_counting", counting_procedure, replace=True)
    register_procedure("test_slow", slow_procedure, replace=True)
    yield


def test_unknown_procedure_fails_fast():
    service = SolverService()
    with pytest.raises(UnknownProcedureError):
        service.submit("no_such_procedure", 1)


def test_dedup_one_computation_many_handles():
    service = SolverService()
    h1 = service.submit("test_counting", "x")
    h2 = service.submit("test_counting", "x")
    h3 = service.submit("test_counting", "y")
    assert not h1.deduped and h2.deduped and not h3.deduped
    service.drain()
    assert CALLS == ["x", "y"]  # "x" ran once for two handles
    assert h1.result() is h2.result()
    assert service.jobs_deduped == 1 and service.jobs_executed == 2


def test_cache_hit_on_resubmission():
    service = SolverService()
    h1 = service.submit("test_counting", "x")
    h1.result()
    h2 = service.submit("test_counting", "x")
    assert h2.from_cache and h2.done()
    assert h2.result() is h1.result()
    assert CALLS == ["x"]


def test_real_procedure_cached_resubmission_is_10x_faster():
    """The acceptance criterion: identical batch ≥10× faster when cached."""
    service = SolverService()
    specs = [JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in (10, 11, 12)]
    t0 = time.perf_counter()
    cold = service.run_batch(specs)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = service.run_batch(specs)
    warm_s = time.perf_counter() - t0
    assert [a.verdict for a in warm] == [a.verdict for a in cold]
    assert service.cache.stats.hits >= 3
    assert cold_s / warm_s >= 10, f"cold {cold_s:.4f}s vs warm {warm_s:.4f}s"


def test_cancel_queued_job_via_token_prevents_execution():
    """A token fired while the job is still queued: procedure never runs."""
    service = SolverService()
    token = CancelToken()
    handle = service.submit("test_counting", "doomed", cancel_token=token)
    token.cancel()
    service.drain()
    assert CALLS == []  # never executed
    assert service.jobs_executed == 0 and service.jobs_skipped == 1
    answer = handle.result()
    assert answer.is_unknown and answer.detail == CANCELLED_DETAIL


def test_cancel_via_handle_prevents_execution():
    service = SolverService()
    handle = service.submit("test_counting", "doomed")
    assert handle.cancel()
    service.drain()
    assert CALLS == []
    assert handle.result().detail == CANCELLED_DETAIL


def test_cancelled_result_is_never_cached():
    service = SolverService()
    token = CancelToken()
    h1 = service.submit("test_counting", "again", cancel_token=token)
    token.cancel()
    service.drain()
    assert h1.result().is_unknown
    # Resubmission without the token must actually execute.
    h2 = service.submit("test_counting", "again")
    assert not h2.from_cache
    assert h2.result().is_yes
    assert CALLS == ["again"]


def test_one_live_handle_keeps_a_deduped_job_alive():
    service = SolverService()
    h1 = service.submit("test_counting", "shared")
    h2 = service.submit("test_counting", "shared")
    h1.cancel()
    service.drain()
    assert CALLS == ["shared"]  # h2 still wanted it
    assert h2.result().is_yes


def test_budget_trips_to_unknown_and_is_not_cached():
    service = SolverService()
    budget = Budget(step_budget=5)
    h1 = service.submit("test_slow", "b", budget=budget)
    answer = h1.result()
    assert answer.is_unknown  # tripped, not decided
    # The trip was not cached: a generous retry decides.
    h2 = service.submit("test_slow", "b", budget=Budget(step_budget=10_000))
    assert not h2.from_cache
    assert h2.result().is_yes
    assert service.cache.stats.rejected_unknown >= 1


def test_budget_not_part_of_cache_key():
    service = SolverService()
    h1 = service.submit("test_counting", "k", budget=Budget(step_budget=100))
    h1.result()
    h2 = service.submit("test_counting", "k", budget=Budget(step_budget=999))
    assert h2.from_cache  # same question, different budget


def test_run_batch_preserves_job_order():
    service = SolverService()
    specs = [
        JobSpec("test_counting", ("a",)),
        JobSpec("test_counting", ("b",)),
        JobSpec("test_counting", ("a",), label="a-again"),
    ]
    results = service.run_batch(specs)
    assert [r.detail for r in results] == ["ran a", "ran b", "ran a"]
    assert CALLS == ["a", "b"]


def test_run_batch_accepts_mappings():
    service = SolverService()
    results = service.run_batch([{"procedure": "test_counting", "args": ("m",)}])
    assert results[0].is_yes


def test_stats_shape():
    service = SolverService()
    service.run_batch([JobSpec("test_counting", ("s",))])
    stats = service.stats()
    assert stats["jobs_executed"] == 1
    assert set(stats) == {
        "workers",
        "jobs_executed",
        "jobs_deduped",
        "jobs_skipped",
        "cache",
    }
