"""Scheduler semantics: dedup, cancellation, budgets, cache speedup."""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.verdict import Answer
from repro.guard import Budget, CancelToken, checkpoint, guarded
from repro.serve import (
    BATCH_ABORTED_DETAIL,
    CANCELLED_DETAIL,
    JobSpec,
    SolverService,
    register_procedure,
)
from repro.serve.registry import UnknownProcedureError
from repro.workloads.scaling import pl_counter_sws

CALLS: list[str] = []


@guarded()
def counting_procedure(tag: str) -> Answer:
    """Test stub: records every actual execution."""
    CALLS.append(tag)
    return Answer.yes(detail=f"ran {tag}")


@guarded()
def slow_procedure(tag: str, steps: int = 50) -> Answer:
    for _ in range(steps):
        checkpoint("test.slow")
        time.sleep(0.001)
    return Answer.yes(detail=f"ran {tag}")


@guarded()
def raising_procedure(tag: str) -> Answer:
    raise ValueError(f"boom {tag}")


@pytest.fixture(autouse=True)
def _register_stubs():
    CALLS.clear()
    register_procedure("test_counting", counting_procedure, replace=True)
    register_procedure("test_slow", slow_procedure, replace=True)
    register_procedure("test_raising", raising_procedure, replace=True)
    yield


def test_unknown_procedure_fails_fast():
    service = SolverService()
    with pytest.raises(UnknownProcedureError):
        service.submit("no_such_procedure", 1)


def test_dedup_one_computation_many_handles():
    service = SolverService()
    h1 = service.submit("test_counting", "x")
    h2 = service.submit("test_counting", "x")
    h3 = service.submit("test_counting", "y")
    assert not h1.deduped and h2.deduped and not h3.deduped
    service.drain()
    assert CALLS == ["x", "y"]  # "x" ran once for two handles
    assert h1.result() is h2.result()
    assert service.jobs_deduped == 1 and service.jobs_executed == 2


def test_cache_hit_on_resubmission():
    service = SolverService()
    h1 = service.submit("test_counting", "x")
    h1.result()
    h2 = service.submit("test_counting", "x")
    assert h2.from_cache and h2.done()
    assert h2.result() is h1.result()
    assert CALLS == ["x"]


def test_real_procedure_cached_resubmission_is_10x_faster():
    """The acceptance criterion: identical batch ≥10× faster when cached."""
    service = SolverService()
    specs = [JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in (10, 11, 12)]
    t0 = time.perf_counter()
    cold = service.run_batch(specs)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = service.run_batch(specs)
    warm_s = time.perf_counter() - t0
    assert [a.verdict for a in warm] == [a.verdict for a in cold]
    assert service.cache.stats.hits >= 3
    assert cold_s / warm_s >= 10, f"cold {cold_s:.4f}s vs warm {warm_s:.4f}s"


def test_cancel_queued_job_via_token_prevents_execution():
    """A token fired while the job is still queued: procedure never runs."""
    service = SolverService()
    token = CancelToken()
    handle = service.submit("test_counting", "doomed", cancel_token=token)
    token.cancel()
    service.drain()
    assert CALLS == []  # never executed
    assert service.jobs_executed == 0 and service.jobs_skipped == 1
    answer = handle.result()
    assert answer.is_unknown and answer.detail == CANCELLED_DETAIL


def test_cancel_via_handle_prevents_execution():
    service = SolverService()
    handle = service.submit("test_counting", "doomed")
    assert handle.cancel()
    service.drain()
    assert CALLS == []
    assert handle.result().detail == CANCELLED_DETAIL


def test_cancelled_result_is_never_cached():
    service = SolverService()
    token = CancelToken()
    h1 = service.submit("test_counting", "again", cancel_token=token)
    token.cancel()
    service.drain()
    assert h1.result().is_unknown
    # Resubmission without the token must actually execute.
    h2 = service.submit("test_counting", "again")
    assert not h2.from_cache
    assert h2.result().is_yes
    assert CALLS == ["again"]


def test_one_live_handle_keeps_a_deduped_job_alive():
    service = SolverService()
    h1 = service.submit("test_counting", "shared")
    h2 = service.submit("test_counting", "shared")
    h1.cancel()
    service.drain()
    assert CALLS == ["shared"]  # h2 still wanted it
    assert h2.result().is_yes


def test_budget_trips_to_unknown_and_is_not_cached():
    service = SolverService()
    budget = Budget(step_budget=5)
    h1 = service.submit("test_slow", "b", budget=budget)
    answer = h1.result()
    assert answer.is_unknown  # tripped, not decided
    # The trip was not cached: a generous retry decides.
    h2 = service.submit("test_slow", "b", budget=Budget(step_budget=10_000))
    assert not h2.from_cache
    assert h2.result().is_yes
    assert service.cache.stats.rejected_unknown >= 1


def test_budget_not_part_of_cache_key():
    service = SolverService()
    h1 = service.submit("test_counting", "k", budget=Budget(step_budget=100))
    h1.result()
    h2 = service.submit("test_counting", "k", budget=Budget(step_budget=999))
    assert h2.from_cache  # same question, different budget


def test_run_batch_preserves_job_order():
    service = SolverService()
    specs = [
        JobSpec("test_counting", ("a",)),
        JobSpec("test_counting", ("b",)),
        JobSpec("test_counting", ("a",), label="a-again"),
    ]
    results = service.run_batch(specs)
    assert [r.detail for r in results] == ["ran a", "ran b", "ran a"]
    assert CALLS == ["a", "b"]


def test_run_batch_accepts_mappings():
    service = SolverService()
    results = service.run_batch([{"procedure": "test_counting", "args": ("m",)}])
    assert results[0].is_yes


def test_drain_abort_resolves_every_stranded_handle():
    """Regression: an exception mid-batch must not strand queued handles.

    Before the fix, a procedure raising during drain() left every
    not-yet-run entry unresolved and still registered in-flight, so
    ``JobHandle.result()`` blocked forever (drain had nothing pending)
    and resubmissions deduped against the dead entry.
    """
    service = SolverService()
    doomed = service.submit("test_raising", "first")
    stranded = [service.submit("test_counting", tag) for tag in ("a", "b", "c")]
    with pytest.raises(ValueError):
        service.drain()
    # The raising job's own handle reports the failure...
    assert doomed.done()
    assert doomed.result(timeout=1).detail == "procedure raised ValueError"
    # ...and every queued-behind-it handle resolves instead of hanging.
    for handle in stranded:
        assert handle.done()
        answer = handle.result(timeout=1)
        assert answer.is_unknown and answer.detail == BATCH_ABORTED_DETAIL
    assert CALLS == []  # none of the stranded jobs ever ran
    # The failed keys left the in-flight table: resubmitting re-executes.
    retry = service.submit("test_counting", "a")
    assert not retry.deduped and not retry.from_cache
    assert retry.result(timeout=5).is_yes
    assert CALLS == ["a"]


def test_pooled_drain_worker_exception_does_not_strand_the_batch():
    """In pooled mode a raising job resolves UNKNOWN; the rest still run."""
    with SolverService(workers=1) as service:
        doomed = service.submit("test_raising", "first")
        survivor = service.submit("test_counting", "ok")
        service.drain()  # must not raise and must not hang
        assert doomed.result(timeout=5).detail == "worker raised ValueError"
        assert survivor.result(timeout=5).is_yes


def test_token_fired_mid_run_trips_inline_procedure():
    """Regression: a submit-time token firing *after* dispatch must still
    cancel a running in-process entry via its guard checkpoints.

    Before the fix nothing ever propagated the fired token to
    ``entry.token`` (only ``handle.cancel()`` did), so the procedure ran
    to completion.
    """
    service = SolverService()
    token = CancelToken()
    handle = service.submit("test_slow", "t", steps=5_000, cancel_token=token)
    timer = threading.Timer(0.05, token.cancel)
    timer.start()
    try:
        answer = handle.result(timeout=30)
    finally:
        timer.cancel()
    assert answer.is_unknown
    assert answer.trip is not None and answer.trip.limit == "cancelled"
    # A cancellation trip is a non-answer: never cached.
    retry = service.submit("test_slow", "t", steps=5_000)
    assert not retry.from_cache


def test_stats_shape():
    service = SolverService()
    service.run_batch([JobSpec("test_counting", ("s",))])
    stats = service.stats()
    assert stats["jobs_executed"] == 1
    assert set(stats) == {
        "workers",
        "jobs_executed",
        "jobs_deduped",
        "jobs_skipped",
        "cache",
        "resilience",
    }
    assert set(stats["resilience"]) == {
        "retried",
        "rejected",
        "redispatched",
        "worker_lost",
        "dead_lettered",
        "pool_respawns",
        "dlq_depth",
    }
