"""Fingerprints must depend on structure only.

Same instance built in a different order, under a different hash seed,
or with a different name → same fingerprint; any structural change →
a different one.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.nfa import NFA
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.logic import pl
from repro.serve import fingerprint, job_fingerprint
from repro.serve.fingerprint import FingerprintError, canonical
from repro.workloads.scaling import pl_counter_sws
from repro.workloads.travel import travel_mediator, travel_service


def shuffled_pl_counter(bits: int, seed: int) -> SWS:
    """``pl_counter_sws(bits)`` rebuilt with shuffled container orders."""
    base = pl_counter_sws(bits)
    rng = random.Random(seed)
    states = list(base.states)
    rng.shuffle(states)
    trans_items = list(base.transitions.items())
    rng.shuffle(trans_items)
    synth_items = list(base.synthesis.items())
    rng.shuffle(synth_items)
    return SWS(
        states=states,
        start=base.start,
        transitions=dict(trans_items),
        synthesis=dict(synth_items),
        kind=base.kind,
        db_schema=base.db_schema,
        input_schema=base.input_schema,
        output_arity=base.output_arity,
        name=f"shuffled-{seed}",  # names are labels, not structure
    )


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_build_order_and_name_independent(bits, seed):
    assert fingerprint(shuffled_pl_counter(bits, seed)) == fingerprint(
        pl_counter_sws(bits)
    )


def test_structural_changes_change_fingerprint():
    assert fingerprint(pl_counter_sws(4)) != fingerprint(pl_counter_sws(5))
    assert fingerprint(travel_service()) != fingerprint(pl_counter_sws(4))


def test_mediator_fingerprint_stable():
    assert fingerprint(travel_mediator()) == fingerprint(travel_mediator())


def test_nfa_epsilon_and_mixed_symbols():
    # ε transitions are keyed by None; sorting falls back to repr so the
    # mix of None and str never raises.
    def build(order):
        transitions = {("p", "a"): {"q"}, ("q", None): {"r"}}
        items = list(transitions.items())
        if order:
            items.reverse()
        return NFA(
            states=order and ["r", "q", "p"] or ["p", "q", "r"],
            alphabet={"a"},
            transitions=dict(items),
            initials={"p"},
            finals={"r"},
        )

    assert fingerprint(build(False)) == fingerprint(build(True))


def test_containers_canonicalize():
    assert canonical({1, 2, 3}) == canonical({3, 2, 1})
    assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})
    # Sequences keep order: position is semantics.
    assert canonical((1, 2)) != canonical((2, 1))


def test_pl_interning_vs_fresh_nodes():
    f = pl.And((pl.Var("x"), pl.Var("y")))
    g = pl.And((pl.Var("x"), pl.Var("y")))
    assert fingerprint(f) == fingerprint(g)


def test_job_fingerprint_excludes_budget_kwarg_order():
    sws = pl_counter_sws(3)
    a = job_fingerprint("nonempty_cq", (sws,), {"max_session_length": 4})
    b = job_fingerprint("nonempty_cq", (sws,), {"max_session_length": 4})
    c = job_fingerprint("nonempty_cq", (sws,), {"max_session_length": 5})
    d = job_fingerprint("nonempty_pl", (sws,))
    assert a == b
    assert a != c  # question-changing kwargs are part of the key
    assert a != d  # so is the procedure name


def test_unknown_type_raises():
    class Opaque:
        pass

    with pytest.raises(FingerprintError):
        fingerprint(Opaque())


_HASHSEED_SNIPPET = """
from repro.serve import fingerprint
from repro.workloads.scaling import pl_counter_sws
from repro.workloads.travel import travel_mediator
print(fingerprint(pl_counter_sws(5)))
print(fingerprint(travel_mediator()))
"""


def test_hash_seed_independent():
    """Two interpreters with different PYTHONHASHSEED agree exactly."""
    outputs = []
    for seed in ("1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert len(outputs[0].split()) == 2
