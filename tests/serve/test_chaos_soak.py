"""Chaos-faulted serving: worker loss, recovery, and the soak invariants.

The soak tests mirror ``benchmarks/bench_serve_chaos.py`` at test scale:
every job resolves (decided / sound UNKNOWN / dead-lettered), no decided
answer contradicts the unfaulted ground truth, and the drain is bounded.
The full 10k-job shape is ``slow``-marked; the 200-job variant runs in
the default tier.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis import nonempty_pl
from repro.guard import Budget, checkpoint, guarded, inject
from repro.serve import (
    CANCELLED_DETAIL,
    WORKER_LOST_DETAIL,
    RetryPolicy,
    SolverService,
    register_procedure,
)
from repro.serve.fingerprint import job_fingerprint
from repro.workloads.scaling import serve_traffic_burst

from repro.analysis.verdict import Answer


@guarded()
def stepping_procedure(tag: str, steps: int = 40) -> Answer:
    for _ in range(steps):
        checkpoint("test.stepping")
    return Answer.yes(detail=f"ran {tag}")


@pytest.fixture(autouse=True)
def _register_stubs():
    register_procedure("test_stepping", stepping_procedure, replace=True)
    yield
    inject.remove_chaos()
    inject.clear_job_chaos()


# -- worker-crash recovery ---------------------------------------------------------


def test_persistent_kills_dead_letter_with_worker_lost_detail():
    """A job whose worker dies on every dispatch exhausts the re-dispatch
    limit and lands in the DLQ instead of hanging the batch."""
    with inject.chaos(inject.ChaosSpec(kill_rate=1.0)):
        with SolverService(workers=1, worker_redispatch_limit=2) as service:
            handle = service.submit("test_stepping", "doomed")
            answer = handle.result(timeout=120)
            assert answer.is_unknown and answer.detail == WORKER_LOST_DETAIL
            assert handle.dead_lettered
            # initial dispatch + 2 re-dispatches, each killing its worker
            assert service.jobs_worker_lost == 3
            assert service.jobs_redispatched == 2
            assert service.stats()["resilience"]["pool_respawns"] == 3
            records = service.dlq.records()
            assert len(records) == 1
            assert records[0].trips[-1] == {"worker_lost": True, "dispatch": 3}

            # The respawned pool still serves: same service, new job.
            inject.remove_chaos()
            assert service.submit("test_stepping", "alive").result(
                timeout=120
            ).is_yes


def test_single_kill_redispatch_recovers():
    """A worker lost once re-dispatches (fresh fate draw) and decides."""
    fp = job_fingerprint("test_stepping", ("phoenix",), {})
    spec = next(
        s
        for s in (inject.ChaosSpec(kill_rate=0.5, seed=seed) for seed in range(200))
        if s.decide("kill", f"{fp}:0") and not s.decide("kill", f"{fp}:1")
    )
    with inject.chaos(spec):
        with SolverService(workers=1, worker_redispatch_limit=2) as service:
            handle = service.submit("test_stepping", "phoenix")
            answer = handle.result(timeout=120)
            assert answer.is_yes
            assert not handle.dead_lettered
            assert service.jobs_worker_lost == 1
            assert service.jobs_redispatched == 1


def test_cancellation_during_pool_respawn_resolves_cancelled():
    """Cancelling while the worker is dying resolves promptly to
    CANCELLED, not WORKER_LOST, and is never re-dispatched."""
    spec = inject.ChaosSpec(kill_rate=1.0, stall_rate=1.0, stall_s=0.4)
    with inject.chaos(spec):
        with SolverService(workers=1, worker_redispatch_limit=5) as service:
            handle = service.submit("test_stepping", "let-go")
            timer = threading.Timer(0.1, handle.cancel)
            timer.start()
            try:
                answer = handle.result(timeout=120)
            finally:
                timer.cancel()
            assert answer.is_unknown and answer.detail == CANCELLED_DETAIL
            assert service.jobs_worker_lost == 1
            assert service.jobs_redispatched == 0
            assert not handle.dead_lettered


# -- the soak ----------------------------------------------------------------------

SOAK_CHAOS = inject.ChaosSpec(
    kill_rate=0.15,
    stall_rate=0.10,
    stall_s=0.02,
    trip_rate=0.35,
    trip_limit="steps",
    store_error_rate=0.20,
    seed=7,
)

SOAK_BUDGET = Budget(step_budget=200_000)


def _run_soak(
    traffic_kwargs: dict, workers: int, drain_bound_s: float, tmp_path
) -> dict:
    waves = serve_traffic_burst(**traffic_kwargs)
    n_jobs = sum(len(wave) for wave in waves)

    truth: dict[int, str] = {}
    for wave in waves:
        for _, args in wave:
            if id(args[0]) not in truth:
                truth[id(args[0])] = nonempty_pl(args[0]).verdict.value
    assert all(v != "unknown" for v in truth.values())

    outcomes = {"decided": 0, "unknown": 0, "dead_lettered": 0}
    contradictions = 0
    t0 = time.perf_counter()
    with inject.chaos(SOAK_CHAOS):
        with SolverService(
            workers=workers,
            cache_dir=str(tmp_path / "soak-cache"),
            retry_policy=RetryPolicy(
                max_attempts=3,
                budget_multiplier=4.0,
                backoff_base_s=0.01,
                backoff_cap_s=0.2,
            ),
        ) as service:
            for wave in waves:
                handles = [
                    service.submit(name, *args, budget=SOAK_BUDGET, source="soak")
                    for name, args in wave
                ]
                service.drain()
                for handle, (_, args) in zip(handles, wave):
                    assert handle.done(), "handle left unresolved"
                    verdict = handle.result(timeout=0).verdict.value
                    if handle.dead_lettered:
                        outcomes["dead_lettered"] += 1
                    elif verdict == "unknown":
                        outcomes["unknown"] += 1
                    else:
                        outcomes["decided"] += 1
                        if verdict != truth[id(args[0])]:
                            contradictions += 1
    elapsed = time.perf_counter() - t0

    assert sum(outcomes.values()) == n_jobs
    assert contradictions == 0, f"{contradictions} decided answers wrong"
    assert elapsed < drain_bound_s, f"soak took {elapsed:.1f}s"
    return outcomes


def test_chaos_soak_fast(tmp_path):
    outcomes = _run_soak(
        dict(n_jobs=200, distinct=6, seed=7, min_bits=4, waves=4, burst_every=2,
             burst_factor=3),
        workers=2,
        drain_bound_s=120.0,
        tmp_path=tmp_path,
    )
    assert outcomes["decided"] > 0


@pytest.mark.slow
def test_chaos_soak_full(tmp_path):
    """The benchmark's 10k-job Zipf+burst shape, as a soak test."""
    outcomes = _run_soak(
        dict(n_jobs=10_000, distinct=12, seed=7, min_bits=4, waves=8,
             burst_every=3, burst_factor=4),
        workers=4,
        drain_bound_s=300.0,
        tmp_path=tmp_path,
    )
    assert outcomes["decided"] > 0
