"""Serve tests: isolate tracing, the default service, and the registry."""

import pytest

from repro import obs, serve
from repro.obs import _tracer
from repro.serve import registry


@pytest.fixture(autouse=True)
def _serve_isolation():
    """Reset cross-test serving state: sink, default service, registry."""
    registered_before = set(registry.PROCEDURES)
    if _tracer.ENABLED:
        obs.configure(enabled=False)
    yield
    if _tracer.ENABLED:
        obs.configure(enabled=False)
    serve.reset_default_service()
    for name in set(registry.PROCEDURES) - registered_before:
        del registry.PROCEDURES[name]
