"""Serve tests: isolate tracing, metrics, the default service, registry."""

import pytest

from repro import metrics, obs, serve
from repro.obs import _tracer
from repro.serve import registry


@pytest.fixture(autouse=True)
def _serve_isolation():
    """Reset cross-test serving state: sinks, default service, registry."""
    registered_before = set(registry.PROCEDURES)
    if _tracer.ENABLED:
        obs.configure(enabled=False)
    if metrics.is_enabled():
        metrics.configure(enabled=False)
    metrics.REGISTRY.reset()
    yield
    if _tracer.ENABLED:
        obs.configure(enabled=False)
    if metrics.is_enabled():
        metrics.configure(enabled=False)
    metrics.REGISTRY.reset()
    serve.reset_default_service()
    for name in set(registry.PROCEDURES) - registered_before:
        del registry.PROCEDURES[name]
