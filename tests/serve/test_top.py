"""The `serve top` dashboard: tail reading, pure rendering, CLI."""

import io
import json

from repro.metrics import Registry
from repro.serve.top import render, run_top, tail_snapshot


def _snapshot(executed=4, hits=2, misses=2, seq=1, t_wall=1000.0):
    r = Registry()
    r.counter("serve.jobs.completed", outcome="executed").inc(executed)
    r.counter("serve.jobs.executed").inc(executed)
    r.counter("serve.jobs.deduped").inc(1)
    r.counter("serve.cache.hits", tier="memory").inc(hits)
    r.counter("serve.cache.misses").inc(misses)
    r.counter("guard.trips", limit="deadline").inc(1)
    r.gauge("serve.queue.depth").set(2)
    r.gauge("serve.inflight").set(1)
    r.gauge("serve.pool.workers").set(2)
    r.gauge("serve.worker.busy", worker="71").set(1)
    for value in (0.001, 0.004, 0.02):
        r.histogram("serve.job.latency_s", procedure="nonempty_pl").observe(value)
    snap = r.snapshot()
    snap["seq"] = seq
    snap["t_wall"] = t_wall
    return snap


class TestTailSnapshot:
    def test_returns_last_metrics_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with open(path, "w") as handle:
            for seq in (1, 2, 3):
                handle.write(json.dumps(_snapshot(seq=seq)) + "\n")
        snap = tail_snapshot(str(path))
        assert snap["seq"] == 3

    def test_skips_trailing_garbage(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(_snapshot(seq=7)) + "\n")
            handle.write('{"truncated mid-wri')  # crash mid-append
        assert tail_snapshot(str(path))["seq"] == 7

    def test_missing_file_is_none(self, tmp_path):
        assert tail_snapshot(str(tmp_path / "absent.jsonl")) is None


class TestRender:
    def test_frame_sections(self):
        frame = render(_snapshot())
        assert "jobs" in frame and "executed 4" in frame
        assert "queue 2" in frame and "in-flight 1" in frame
        assert "workers busy 1/2" in frame and "utilization 50%" in frame
        assert "hit rate 50.0%" in frame
        assert "guard trips deadline=1" in frame
        assert "nonempty_pl" in frame  # latency table row
        assert "p99" in frame

    def test_throughput_rate_needs_previous_frame(self):
        prev = _snapshot(executed=4, t_wall=1000.0)
        snap = _snapshot(executed=10, t_wall=1002.0)
        assert "throughput -" in render(snap)
        assert "throughput 3.0/s" in render(snap, prev)

    def test_no_latency_samples(self):
        r = Registry()
        r.counter("serve.jobs.executed").inc()
        frame = render(r.snapshot())
        assert "no job latency samples yet" in frame


class TestRunTop:
    def test_once_renders_single_frame(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps(_snapshot()) + "\n")
        out = io.StringIO()
        assert run_top(str(path), once=True, out=out) == 0
        assert "repro.serve top" in out.getvalue()

    def test_once_without_snapshot_fails(self, tmp_path):
        out = io.StringIO()
        code = run_top(str(tmp_path / "absent.jsonl"), once=True, out=out)
        assert code == 1

    def test_cli_once(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps(_snapshot()) + "\n")
        assert main(["top", str(path), "--once"]) == 0
        assert "repro.serve top" in capsys.readouterr().out

    def test_cli_requires_a_path(self, capsys, monkeypatch):
        from repro.metrics import METRICS_ENV_VAR
        from repro.serve.__main__ import main

        monkeypatch.delenv(METRICS_ENV_VAR, raising=False)
        assert main(["top"]) == 2

class TestProgressAndHeartbeat:
    def test_heartbeat_line_lists_running_jobs(self):
        snap = _snapshot()
        r = Registry()
        r.gauge("serve.job.heartbeat_s", procedure="nonempty_pl").set(3.5)
        snap["gauges"].update(r.snapshot()["gauges"])
        frame = render(snap)
        assert "running" in frame
        assert "nonempty_pl 3.5s" in frame

    def test_progress_table_groups_site_and_worker(self):
        snap = _snapshot()
        r = Registry()
        r.gauge("progress.steps", site="afa.search_witness", worker="71").set(
            120000
        )
        r.gauge(
            "progress.frontier", site="afa.search_witness", worker="71"
        ).set(1873)
        r.gauge(
            "progress.steps_per_s", site="afa.search_witness", worker="71"
        ).set(815000.0)
        r.gauge("progress.steps", site="sat.solve_cnf").set(64)
        snap["gauges"].update(r.snapshot()["gauges"])
        frame = render(snap)
        assert "search site" in frame and "steps/s" in frame
        afa_row = next(
            line for line in frame.splitlines() if "afa.search_witness" in line
        )
        assert "71" in afa_row
        assert "120000" in afa_row
        assert "1873" in afa_row
        assert "815000" in afa_row
        sat_row = next(
            line for line in frame.splitlines() if "sat.solve_cnf" in line
        )
        assert "64" in sat_row
        # No worker label: in-process site rows show "-".
        assert " - " in sat_row or sat_row.split()[1] == "-"

    def test_no_progress_gauges_no_table(self):
        assert "search site" not in render(_snapshot())


class TestResilienceLine:
    def _snapshot_with_faults(self):
        r = Registry()
        r.counter("serve.jobs.executed").inc(4)
        r.counter("serve.retry.scheduled").inc(3)
        r.counter("serve.retry.exhausted").inc(1)
        r.counter("serve.rejected", reason="depth").inc(2)
        r.counter("serve.worker.lost", procedure="nonempty_pl").inc(5)
        r.counter("serve.pool.respawns").inc(2)
        r.counter("serve.dlq.added").inc(1)
        r.gauge("serve.dlq.depth").set(1)
        snap = r.snapshot()
        snap["seq"], snap["t_wall"] = 1, 1000.0
        return snap

    def test_rendered_when_faults_present(self):
        frame = render(self._snapshot_with_faults())
        assert "resilience  retried 3  exhausted 1  rejected 2" in frame
        assert "worker-lost 5 (respawns 2)" in frame
        assert "dlq 1 (+1)" in frame

    def test_omitted_on_a_quiet_service(self):
        frame = render(_snapshot())
        assert "resilience" not in frame
