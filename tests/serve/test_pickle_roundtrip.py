"""Every public model type must cross a process boundary intact.

The worker pool ships instances to forked workers via pickle; these
tests pin the round-trip for one representative instance per public
type, checking structural identity through the serve fingerprint (which
ignores incidental attributes like compiled-engine caches) plus a
behavioural probe where the type has behaviour.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.verdict import Answer, Verdict
from repro.automata.afa import AFA
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.guard import Budget
from repro.logic import fo, pl
from repro.logic.cq import Atom, Comparison, ConjunctiveQuery
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionQuery
from repro.serve import fingerprint
from repro.workloads.random_sws import random_cq_sws, random_fo_sws, random_pl_sws
from repro.workloads.scaling import afa_counter, cq_diamond_sws, pl_counter_sws
from repro.workloads.travel import (
    booking_request,
    sample_database,
    travel_mediator,
)


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def assert_same_fingerprint(value):
    copy = roundtrip(value)
    assert fingerprint(copy) == fingerprint(value)
    return copy


def test_pl_formula_reinterns():
    f = pl.Or((pl.And((pl.Var("x"), pl.Not(pl.Var("y")))), pl.Const(True)))
    g = roundtrip(f)
    # Hash-consing: unpickling re-interns into the same node.
    assert g is f


def test_fo_query():
    q = fo.FOQuery(
        head=[Variable("x")],
        formula=fo.Exists(
            [Variable("y")],
            fo.AndF(
                [
                    fo.RelAtom(Atom("R", (Variable("x"), Variable("y")))),
                    fo.NotF(fo.Equals(Variable("x"), Constant(1))),
                ]
            ),
        ),
    )
    assert_same_fingerprint(q)


def test_cq_and_ucq():
    q = ConjunctiveQuery(
        head=[Variable("x")],
        atoms=[Atom("R", (Variable("x"), Variable("y")))],
        comparisons=[Comparison(Variable("x"), Variable("y"), negated=True)],
    )
    assert_same_fingerprint(q)
    assert_same_fingerprint(UnionQuery([q], arity=1))


@pytest.mark.parametrize(
    "factory",
    [
        lambda: pl_counter_sws(4),
        lambda: cq_diamond_sws(3),
        lambda: random_pl_sws(seed=7),
        lambda: random_cq_sws(seed=7),
        lambda: random_fo_sws(seed=7),
    ],
)
def test_sws_kinds(factory):
    sws = factory()
    copy = assert_same_fingerprint(sws)
    assert copy.states == sws.states
    assert copy.reachable_states() == sws.reachable_states()


def test_mediator():
    mediator = travel_mediator()
    copy = assert_same_fingerprint(mediator)
    assert set(copy.components) == set(mediator.components)


def test_afa_with_compiled_engine():
    afa = afa_counter(3)
    word = afa.accepting_witness()
    assert word is not None  # forces engine compilation (exec closures)
    copy = assert_same_fingerprint(afa)
    # The dropped engine recompiles on first use in the receiver.
    assert copy.accepts(word)
    assert copy.accepting_witness() is not None


def test_nfa_and_dfa():
    nfa = NFA(
        states={"p", "q", "r"},
        alphabet={"a", "b"},
        transitions={("p", "a"): {"q"}, ("q", None): {"r"}, ("r", "b"): {"r"}},
        initials={"p"},
        finals={"r"},
    )
    copy = assert_same_fingerprint(nfa)
    assert copy.accepts(["a", "b"]) == nfa.accepts(["a", "b"])
    dfa = nfa.determinize()
    dcopy = assert_same_fingerprint(dfa)
    assert dcopy.accepts(["a"]) == dfa.accepts(["a"])


def test_database_relation_schemas():
    db = sample_database()
    copy = assert_same_fingerprint(db)
    assert set(copy.schema) == set(db.schema)
    schema = RelationSchema("E", ("src", "dst"))
    assert roundtrip(schema) == schema
    dschema = DatabaseSchema([schema])
    assert_same_fingerprint(dschema)
    rel = Relation(schema, {(1, 2), (2, 3)})
    assert_same_fingerprint(rel)


def test_input_sequence():
    seq = booking_request()
    copy = assert_same_fingerprint(seq)
    assert list(copy) == list(seq)


def test_answer_and_budget():
    answer = Answer.yes(witness=("w",), detail="test")
    copy = roundtrip(answer)
    assert copy == answer and copy.verdict is Verdict.YES
    budget = Budget(deadline_s=1.5, step_budget=100)
    assert roundtrip(budget) == budget
