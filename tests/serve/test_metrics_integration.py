"""End-to-end metrics through the scheduler and the worker pool.

The 4-worker test is the cross-process acceptance check: worker-side
latency samples must appear in the parent's histograms with the right
counts, and re-merging the spools (which happens once per batch *and*
again at shutdown) must not double-count anything.
"""

from __future__ import annotations

from repro import metrics
from repro.serve import JobSpec, SolverService
from repro.workloads.scaling import pl_counter_sws


def _batch():
    # 8 jobs over 4 distinct instances, as in the pool smoke test.
    return [
        JobSpec("nonempty_pl", (pl_counter_sws(n),), label=f"counter-{n}-{i}")
        for i in (0, 1)
        for n in (6, 7, 8, 9)
    ]


def _histogram(name: str, **labels):
    return metrics.REGISTRY.histogram(name, **labels)


def test_four_worker_pool_merges_worker_samples_without_double_count():
    metrics.configure(enabled=True)
    with SolverService(workers=4) as service:
        service.run_batch(_batch())
        pool = service._pool
        assert pool is not None
        # run_batch already merged the spools; merging again must add
        # nothing (delta-wise merge per source).
        latency = _histogram("serve.job.latency_s", procedure="nonempty_pl")
        count_after_batch = latency.count
        pool.merge_metrics()
        pool.merge_metrics()
        assert latency.count == count_after_batch
    # 4 distinct fingerprints executed in workers: exactly 4 worker-side
    # latency samples merged up (dedup absorbs the other 4 jobs).
    assert latency.count == 4
    assert latency.min > 0
    executed = metrics.REGISTRY.counter("serve.jobs.executed")
    assert executed.value == 4
    deduped = metrics.REGISTRY.counter("serve.jobs.deduped")
    assert deduped.value == 4
    # Queue-wait histograms are parent-side: one sample per dispatch.
    queue_wait = _histogram("serve.job.queue_wait_s", procedure="nonempty_pl")
    assert queue_wait.count == 4
    # Worker counters merge under their own key; gauges come back
    # re-labeled per worker pid.
    instruments = metrics.REGISTRY.instruments()
    assert instruments["serve.worker.jobs"].value == 4
    busy_gauges = [
        key for key in instruments if key.startswith("serve.worker.busy{worker=")
    ]
    assert busy_gauges, "worker gauges did not merge into the parent"


def test_inline_service_records_latency_and_cache_counters():
    metrics.configure(enabled=True)
    service = SolverService(workers=0)
    service.run_batch(_batch())
    latency = _histogram("serve.job.latency_s", procedure="nonempty_pl")
    assert latency.count == 4
    service.run_batch(_batch())  # warm: everything from the answer cache
    instruments = metrics.REGISTRY.instruments()
    counters = {
        key: instrument.value
        for key, instrument in instruments.items()
        if instrument.kind == "counter"
    }
    assert counters["serve.cache.hits{tier=memory}"] == 8
    assert counters["serve.jobs.completed{outcome=cached}"] == 8
    assert latency.count == 4  # cached answers don't re-observe latency
    assert metrics.cache_hit_rate(counters) is not None


def test_disabled_metrics_record_nothing_through_the_service():
    assert not metrics.is_enabled()
    service = SolverService(workers=0)
    service.run_batch(_batch()[:2])
    assert metrics.REGISTRY.instruments() == {}
