"""Worker-pool execution: results, budgets, and trace merging.

``test_two_worker_batch_with_cache_hits`` is the serve smoke test CI
runs: a 2-worker batch of 8 jobs, then the identical batch again,
asserting every resubmitted job is a cache hit.
"""

from __future__ import annotations

import json
import time

from repro import obs
from repro.guard import Budget
from repro.serve import JobSpec, SolverService
from repro.workloads.scaling import pl_counter_sws


def _batch():
    # 8 jobs over 4 distinct instances: dedup halves the work even cold.
    return [
        JobSpec("nonempty_pl", (pl_counter_sws(n),), label=f"counter-{n}-{i}")
        for i in (0, 1)
        for n in (6, 7, 8, 9)
    ]


def test_two_worker_batch_with_cache_hits():
    with SolverService(workers=2) as service:
        cold = service.run_batch(_batch())
        assert [a.verdict.value for a in cold] == ["yes"] * 8
        assert service.jobs_executed == 4  # dedup: 4 distinct fingerprints
        assert service.jobs_deduped == 4

        t0 = time.perf_counter()
        warm = service.run_batch(_batch())
        warm_s = time.perf_counter() - t0
        assert [a.verdict.value for a in warm] == ["yes"] * 8
        # Every resubmitted job is answered from the cache...
        assert service.cache.stats.hits >= 8
        assert service.jobs_executed == 4  # ...so nothing new executed
        assert warm_s < 1.0


def test_pool_applies_budget():
    with SolverService(workers=2) as service:
        handle = service.submit(
            "nonempty_pl", pl_counter_sws(14), budget=Budget(step_budget=3)
        )
        answer = handle.result()
        assert answer.is_unknown
        # And the trip was not cached: the cache only holds decisions.
        assert service.cache.stats.stores == 0


def test_worker_spans_merge_into_parent_trace(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs.configure(path=str(trace), mode="w")
    try:
        with SolverService(workers=2) as service:
            service.run_batch(
                [JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in (6, 7)]
            )
    finally:
        obs.configure(enabled=False)
    events = [json.loads(line) for line in trace.read_text().splitlines()]
    worker_events = [
        e for e in events if (e.get("attrs") or {}).get("worker_pid")
    ]
    assert worker_events, "no worker spans were re-emitted into the parent sink"
    names = {e["name"] for e in worker_events}
    assert any("nonempty" in name for name in names)


def test_pool_results_match_inline():
    specs = [JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in (5, 6)]
    with SolverService(workers=2) as pooled:
        pooled_results = pooled.run_batch(specs)
    inline = SolverService(workers=0)
    inline_results = inline.run_batch(
        [JobSpec("nonempty_pl", (pl_counter_sws(n),)) for n in (5, 6)]
    )
    assert [a.verdict for a in pooled_results] == [a.verdict for a in inline_results]


def test_respawn_keeps_serving():
    """An explicit respawn (what worker-loss recovery does) is invisible
    to later batches: new executor, counters advanced, answers correct."""
    with SolverService(workers=2) as service:
        assert service.run_batch(
            [JobSpec("nonempty_pl", (pl_counter_sws(6),))]
        )[0].is_yes
        pool = service._pool
        executor_before = pool._executor
        pool.respawn()
        assert pool.respawns == 1
        assert pool._executor is not executor_before
        answer = service.run_batch(
            [JobSpec("nonempty_pl", (pl_counter_sws(7),))]
        )[0]
        assert answer.is_yes
        assert service.stats()["resilience"]["pool_respawns"] == 1
