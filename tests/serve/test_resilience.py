"""Fault-tolerance policies: retry/escalation, admission, DLQ, recovery."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.analysis.verdict import Answer
from repro.guard import Budget, checkpoint, guarded
from repro.guard._governor import Trip
from repro.serve import (
    CANCELLED_DETAIL,
    REJECTED_DETAIL,
    WORKER_LOST_DETAIL,
    AdmissionControl,
    DeadLetterQueue,
    DLQRecord,
    RetryPolicy,
    SolverService,
    register_procedure,
)
from repro.serve.store import Store


@guarded()
def stepping_procedure(tag: str, steps: int = 40) -> Answer:
    """Needs ``steps`` guard steps: trips under a smaller step budget."""
    for _ in range(steps):
        checkpoint("test.stepping")
    return Answer.yes(detail=f"ran {tag}")


@pytest.fixture(autouse=True)
def _register_stubs():
    register_procedure("test_stepping", stepping_procedure, replace=True)
    yield


def _fast_policy(**overrides) -> RetryPolicy:
    defaults = dict(
        max_attempts=3,
        budget_multiplier=4.0,
        backoff_base_s=0.0,
        backoff_cap_s=0.0,
        rng=random.Random(0),
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# -- RetryPolicy --------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(budget_multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=1.0, backoff_cap_s=0.5)


def test_retryable_only_for_resource_trips():
    policy = _fast_policy()
    tripped = Answer.unknown(
        detail="t",
        trip=Trip(limit="steps", site="s", steps=1, elapsed_s=0.0, budget_value=1),
    )
    cancelled = Answer.unknown(
        detail="c",
        trip=Trip(
            limit="cancelled", site="s", steps=1, elapsed_s=0.0, budget_value=None
        ),
    )
    assert policy.retryable(tripped)
    assert not policy.retryable(cancelled)
    assert not policy.retryable(Answer.yes())
    assert not policy.retryable(Answer.unknown(detail="no trip"))


def test_escalate_scales_and_clamps():
    policy = _fast_policy(step_ceiling=100, deadline_ceiling_s=6.0)
    budget = Budget(step_budget=10, deadline_s=2.0)
    grown = policy.escalate(budget)
    assert grown.step_budget == 40 and grown.deadline_s == 6.0  # clamped
    again = policy.escalate(grown)
    assert again.step_budget == 100  # clamped at the ceiling
    assert policy.escalate(None) is None
    # Unset limits stay unset.
    partial = policy.escalate(Budget(step_budget=10))
    assert partial.step_budget == 40 and partial.deadline_s is None


def test_backoff_is_decorrelated_and_capped():
    policy = RetryPolicy(
        backoff_base_s=0.01, backoff_cap_s=0.5, rng=random.Random(7)
    )
    previous = None
    for _ in range(50):
        wait = policy.backoff_s(previous)
        assert 0.01 <= wait <= 0.5
        assert wait <= max(0.01, 3.0 * (previous or 0.01)) + 1e-9
        previous = wait
    zero = RetryPolicy(backoff_base_s=0.0, backoff_cap_s=0.0)
    assert zero.backoff_s(None) == 0.0


# -- retry + escalation through the scheduler ---------------------------------


def test_retry_escalation_converts_unknown_to_yes():
    # 40 steps needed; 10 -> 40 on the second attempt decides.
    service = SolverService(retry_policy=_fast_policy())
    handle = service.submit(
        "test_stepping", "a", budget=Budget(step_budget=10)
    )
    answer = handle.result()
    assert answer.is_yes
    assert handle.attempts == 2
    assert service.jobs_retried == 1
    assert not handle.dead_lettered


def test_without_policy_trip_resolves_unknown():
    service = SolverService()
    answer = service.submit(
        "test_stepping", "b", budget=Budget(step_budget=10)
    ).result()
    assert answer.is_unknown and answer.trip is not None
    assert service.jobs_retried == 0 and service.jobs_dead_lettered == 0


def test_exhausted_retries_dead_letter():
    # Ceiling pins the budget at 10 steps: every attempt trips.
    policy = _fast_policy(max_attempts=2, step_ceiling=10)
    service = SolverService(retry_policy=policy)
    handle = service.submit(
        "test_stepping", "c", budget=Budget(step_budget=10)
    )
    answer = handle.result()
    assert answer.is_unknown and answer.trip is not None
    assert handle.dead_lettered
    assert handle.attempts == 2
    assert service.jobs_dead_lettered == 1
    records = service.dlq.records()
    assert len(records) == 1
    record = records[0]
    assert record.fingerprint == handle.fingerprint
    assert record.procedure == "test_stepping"
    assert record.attempts == 2
    assert [t["limit"] for t in record.trips] == ["steps", "steps"]
    assert record.last_budget == {"step_budget": 10}
    # The payload re-runs: the dlq CLI depends on it.
    args, kwargs = record.job()
    assert args == ("c",) and kwargs == {}


def test_retrying_entry_stays_dedup_visible():
    """A submit racing a retrying entry joins it instead of forking."""
    policy = _fast_policy(backoff_base_s=0.2, backoff_cap_s=0.2)
    service = SolverService(retry_policy=policy)
    h1 = service.submit("test_stepping", "d", budget=Budget(step_budget=10))
    joined: dict[str, object] = {}

    def late_submit():
        time.sleep(0.05)  # lands inside the backoff window of attempt 1
        joined["handle"] = service.submit(
            "test_stepping", "d", budget=Budget(step_budget=10)
        )

    thread = threading.Thread(target=late_submit)
    thread.start()
    answer = h1.result()
    thread.join()
    assert answer.is_yes
    h2 = joined["handle"]
    assert h2.deduped and h2.result() is answer
    assert service.jobs_executed == 2  # two attempts, not three


def test_cancellation_during_retry_backoff_resolves_promptly():
    # Deterministic 2s backoff; cancelling after ~0.1s must not sleep it out.
    policy = _fast_policy(
        max_attempts=3, backoff_base_s=2.0, backoff_cap_s=2.0
    )
    service = SolverService(retry_policy=policy)
    handle = service.submit(
        "test_stepping", "e", budget=Budget(step_budget=10)
    )
    timer = threading.Timer(0.1, handle.cancel)
    timer.start()
    t0 = time.perf_counter()
    try:
        answer = handle.result(timeout=30)
    finally:
        timer.cancel()
    elapsed = time.perf_counter() - t0
    assert answer.is_unknown and answer.detail == CANCELLED_DETAIL
    assert elapsed < 1.5, f"cancellation waited out the backoff ({elapsed:.2f}s)"


# -- AdmissionControl ---------------------------------------------------------


def test_admission_validation():
    with pytest.raises(ValueError):
        AdmissionControl(max_queue_depth=0)
    with pytest.raises(ValueError):
        AdmissionControl(rate=0)
    with pytest.raises(ValueError):
        AdmissionControl(burst=0)


def test_admission_depth_gate():
    control = AdmissionControl(max_queue_depth=2)
    service = SolverService(admission=control)
    h1 = service.submit("test_stepping", "q1")
    h2 = service.submit("test_stepping", "q2")
    h3 = service.submit("test_stepping", "q3")
    assert not h1.rejected and not h2.rejected
    assert h3.rejected and h3.done()
    answer = h3.result()
    assert answer.is_unknown and answer.detail == REJECTED_DETAIL
    assert service.jobs_rejected == 1 and control.rejected_depth == 1
    # The admitted jobs still run.
    service.drain()
    assert h1.result().is_yes and h2.result().is_yes


def test_admission_rate_buckets_are_per_source():
    control = AdmissionControl(rate=0.001, burst=1)
    service = SolverService(admission=control)
    a1 = service.submit("test_stepping", "r1", source="tenant-a")
    a2 = service.submit("test_stepping", "r2", source="tenant-a")
    b1 = service.submit("test_stepping", "r3", source="tenant-b")
    assert not a1.rejected
    assert a2.rejected  # tenant-a's single token is spent
    assert not b1.rejected  # tenant-b has its own bucket
    assert control.rejected_rate == 1


def test_admission_bypassed_for_dedup_and_cache():
    control = AdmissionControl(max_queue_depth=1)
    service = SolverService(admission=control)
    h1 = service.submit("test_stepping", "s1")
    dup = service.submit("test_stepping", "s1")  # queue is full, but a join
    assert dup.deduped and not dup.rejected
    service.drain()
    cached = service.submit("test_stepping", "s1")  # and a cache hit
    assert cached.from_cache and not cached.rejected


# -- DLQ ----------------------------------------------------------------------


def _record(fingerprint: str = "fp-1", **overrides) -> DLQRecord:
    defaults = dict(
        fingerprint=fingerprint,
        procedure="test_stepping",
        label="job",
        reason="retries exhausted",
        attempts=3,
        trips=[{"limit": "steps"}],
        last_budget={"step_budget": 10},
        payload=DLQRecord.encode_job(("x",), {}),
    )
    defaults.update(overrides)
    return DLQRecord(**defaults)


def test_dlq_record_payload_roundtrip():
    record = _record()
    assert record.job() == (("x",), {})
    assert record.as_dict()["has_payload"] is True
    assert "payload" not in record.as_dict()
    assert record.as_dict(with_payload=True)["payload"] == record.payload
    # Unpicklable args degrade to a record-only entry.
    assert DLQRecord.encode_job((threading.Lock(),), {}) is None
    bare = _record(payload=None)
    assert bare.job() is None and bare.as_dict()["has_payload"] is False


def test_dlq_memory_backend():
    dlq = DeadLetterQueue()
    assert len(dlq) == 0
    dlq.add(_record("fp-a", updated_s=1.0))
    dlq.add(_record("fp-b", updated_s=2.0))
    dlq.add(_record("fp-a", attempts=5, updated_s=3.0))  # update in place
    assert len(dlq) == 2
    assert dlq.get("fp-a").attempts == 5
    assert [r.fingerprint for r in dlq.records()] == ["fp-b", "fp-a"]
    assert dlq.remove("fp-b") and not dlq.remove("fp-b")
    assert dlq.purge() == 1 and len(dlq) == 0


def test_dlq_store_backend(tmp_path):
    with Store(str(tmp_path / "dlq.sqlite3")) as store:
        dlq = DeadLetterQueue(store)
        dlq.add(_record("fp-a"))
        dlq.add(_record("fp-b", payload=None))
        assert len(dlq) == 2
        loaded = dlq.get("fp-a")
        assert loaded.procedure == "test_stepping"
        assert loaded.trips == [{"limit": "steps"}]
        assert loaded.last_budget == {"step_budget": 10}
        assert loaded.job() == (("x",), {})
        assert dlq.get("fp-b").payload is None
        assert dlq.remove("fp-a")
        assert dlq.purge() == 1
        assert dlq.records() == []


def test_service_dlq_uses_store_when_cache_has_disk_tier(tmp_path):
    policy = _fast_policy(max_attempts=1)
    with SolverService(
        cache_dir=str(tmp_path / "cache"), retry_policy=policy
    ) as service:
        handle = service.submit(
            "test_stepping", "persist", budget=Budget(step_budget=10)
        )
        handle.result()
        assert handle.dead_lettered
    # A fresh service over the same directory sees the record.
    with SolverService(cache_dir=str(tmp_path / "cache")) as service:
        records = service.dlq.records()
        assert [r.label for r in records] == ["test_stepping"]


def test_worker_lost_detail_constant_is_distinct():
    assert WORKER_LOST_DETAIL != REJECTED_DETAIL != CANCELLED_DETAIL
