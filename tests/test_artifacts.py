"""The repro.artifacts hook: scoping, slot keys, provider fault isolation."""

from __future__ import annotations

from repro import artifacts


class RecordingProvider:
    def __init__(self) -> None:
        self.data: dict[tuple[str, object], object] = {}

    def load_artifact(self, kind, key):
        return self.data.get((kind, key))

    def store_artifact(self, kind, key, value, meta=None):
        self.data[(kind, key)] = value
        return True


class ExplodingProvider:
    def load_artifact(self, kind, key):
        raise RuntimeError("broken store")

    def store_artifact(self, kind, key, value, meta=None):
        raise RuntimeError("broken store")


def test_everything_is_noop_without_a_scope():
    assert not artifacts.enabled()
    assert artifacts.job_key() is None
    assert artifacts.slot("kind") is None
    assert artifacts.load("kind", "key") is None
    assert not artifacts.store("kind", "key", "value")


def test_none_provider_scope_is_noop():
    with artifacts.scope(None, "job"):
        assert not artifacts.enabled()
        assert artifacts.slot("kind") is None


def test_scope_roundtrip_and_restore():
    provider = RecordingProvider()
    with artifacts.scope(provider, "job-1"):
        assert artifacts.enabled()
        assert artifacts.job_key() == "job-1"
        assert artifacts.store("kind", "key", {"v": 1})
        assert artifacts.load("kind", "key") == {"v": 1}
        assert artifacts.load("kind", "absent") is None
    assert not artifacts.enabled()
    assert provider.data == {("kind", "key"): {"v": 1}}


def test_scopes_nest_inner_wins():
    outer, inner = RecordingProvider(), RecordingProvider()
    with artifacts.scope(outer, "outer"):
        with artifacts.scope(inner, "inner"):
            assert artifacts.job_key() == "inner"
            artifacts.store("kind", "key", "inner-value")
        assert artifacts.job_key() == "outer"
        assert artifacts.load("kind", "key") is None  # outer never saw it
    assert inner.data and not outer.data


def test_slot_ordinals_restart_per_scope_and_count_per_kind():
    provider = RecordingProvider()
    with artifacts.scope(provider, "job"):
        assert artifacts.slot("a") == "job/a/0"
        assert artifacts.slot("a") == "job/a/1"
        assert artifacts.slot("b") == "job/b/0"
    with artifacts.scope(provider, "job"):
        assert artifacts.slot("a") == "job/a/0"  # a fresh dispatch restarts
    with artifacts.scope(provider):  # no job key -> no slot identity
        assert artifacts.slot("a") is None


def test_provider_errors_never_propagate():
    with artifacts.scope(ExplodingProvider(), "job"):
        assert artifacts.load("kind", "key") is None
        assert not artifacts.store("kind", "key", "value")
