"""Tests for service containment."""

import pytest

from repro.analysis.containment import (
    contained,
    contained_cq,
    contained_cq_nr,
    contained_pl,
)
from repro.core.run import run_pl
from repro.workloads.pl_services import HASH, union_word_service, word_service
from repro.workloads.random_sws import random_cq_sws, random_pl_sws
from repro.workloads.scaling import cq_chain_sws, cq_diamond_sws, pl_counter_sws

ALPHA = ["a", "b"]


class TestPL:
    def test_word_in_menu(self):
        small = word_service(["a", HASH], ALPHA, "one")
        menu = union_word_service([["a", HASH], ["b", HASH]], ALPHA, "menu")
        assert contained_pl(small, menu).is_yes
        answer = contained_pl(menu, small)
        assert answer.is_no
        # The separating word is accepted by the menu only.
        assert run_pl(menu, answer.witness).output
        assert not run_pl(small, answer.witness).output

    def test_reflexive(self):
        for seed in range(8):
            sws = random_pl_sws(seed, n_states=4, n_variables=2)
            assert contained_pl(sws, sws).is_yes

    def test_counter_periods(self):
        # Multiples of 4 are multiples of 2.
        assert contained_pl(pl_counter_sws(2), pl_counter_sws(1)).is_yes
        assert contained_pl(pl_counter_sws(1), pl_counter_sws(2)).is_no

    def test_equivalence_is_mutual_containment(self):
        from repro.analysis import equivalent_pl

        for seed in range(6):
            a = random_pl_sws(seed, n_states=4, n_variables=2, recursive=False)
            b = random_pl_sws(seed + 50, n_states=4, n_variables=2, recursive=False)
            both = contained_pl(a, b).is_yes and contained_pl(b, a).is_yes
            assert both == equivalent_pl(a, b).is_yes


class TestCQ:
    def test_reflexive(self):
        d = cq_diamond_sws(2)
        assert contained_cq_nr(d, d).is_yes

    def test_deeper_diamond_not_contained_in_shallower(self):
        # diamond(2) consumes more input than diamond(1): on long inputs
        # their outputs differ in both directions at some length.
        a, b = cq_diamond_sws(1), cq_diamond_sws(2)
        one_way = contained_cq_nr(a, b)
        other_way = contained_cq_nr(b, a)
        assert one_way.is_no or other_way.is_no

    def test_recursive_budget(self):
        chain = cq_chain_sws(0)
        answer = contained_cq(chain, chain, max_session_length=3)
        assert not answer.is_no

    @pytest.mark.parametrize("seed", range(5))
    def test_random_reflexive(self, seed):
        sws = random_cq_sws(seed, n_states=3, recursive=False)
        assert contained_cq_nr(sws, sws).is_yes


class TestDispatch:
    def test_kind_mismatch(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            contained(pl_counter_sws(1), cq_diamond_sws(1))

    def test_routes_pl(self):
        sws = random_pl_sws(0)
        assert contained(sws, sws).is_yes
