"""Tests for the equivalence procedures (Table 1, column 3)."""

import pytest

from repro.analysis.equivalence import (
    equivalent,
    equivalent_cq,
    equivalent_cq_nr,
    equivalent_fo_bounded,
    equivalent_pl,
)
from repro.core.run import run_pl
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import AnalysisError
from repro.logic import pl
from repro.workloads.random_sws import random_cq_sws, random_pl_sws
from repro.workloads.scaling import cq_chain_sws, cq_diamond_sws, pl_counter_sws
from repro.workloads.travel import recursive_airfare_service, travel_service


def _perturb_pl(sws):
    """Flip one final state's synthesis formula."""
    synthesis = dict(sws.synthesis)
    for state, rule in sws.transitions.items():
        if rule.is_final:
            assert isinstance(sws.synthesis[state].query, pl.Formula)
            synthesis[state] = SynthesisRule(pl.Not(sws.synthesis[state].query))
            break
    return SWS(
        sws.states,
        sws.start,
        sws.transitions,
        synthesis,
        kind=SWSKind.PL,
        name=sws.name + "_flip",
    )


class TestPL:
    @pytest.mark.parametrize("seed", range(10))
    def test_reflexive(self, seed):
        sws = random_pl_sws(seed, n_states=4, n_variables=2)
        assert equivalent_pl(sws, sws).is_yes

    def test_distinguishing_witness_replays(self):
        for seed in range(8):
            sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=False)
            flipped = _perturb_pl(sws)
            answer = equivalent_pl(sws, flipped)
            if answer.is_no:
                word = answer.witness
                assert run_pl(sws, word).output != run_pl(flipped, word).output

    def test_counters_of_different_period_differ(self):
        answer = equivalent_pl(pl_counter_sws(1), pl_counter_sws(2))
        assert answer.is_no
        assert len(answer.witness) == 2  # accepted by period-2, not period-4

    def test_syntax_differs_semantics_same(self):
        def service(formula):
            return SWS(
                ("q0",),
                "q0",
                {"q0": TransitionRule()},
                {"q0": SynthesisRule(formula)},
                kind=SWSKind.PL,
            )

        a = service(pl.parse("x -> y"))
        b = service(pl.parse("!x | y"))
        assert equivalent_pl(a, b).is_yes


class TestCQNonrecursive:
    def test_reflexive(self):
        d = cq_diamond_sws(2)
        assert equivalent_cq_nr(d, d).is_yes

    def test_different_depths_differ(self):
        answer = equivalent_cq_nr(cq_diamond_sws(1), cq_diamond_sws(2))
        assert answer.is_no

    def test_branch_order_irrelevant(self):
        # Swapping the two (symmetric) successor queries preserves the
        # service's semantics.
        sws = cq_diamond_sws(2)
        swapped_transitions = {}
        for state, rule in sws.transitions.items():
            if len(rule.targets) == 2:
                swapped_transitions[state] = TransitionRule(
                    [rule.targets[1], rule.targets[0]]
                )
            else:
                swapped_transitions[state] = rule
        swapped = SWS(
            sws.states,
            sws.start,
            swapped_transitions,
            sws.synthesis,
            kind=SWSKind.RELATIONAL,
            db_schema=sws.db_schema,
            input_schema=sws.input_schema,
            output_arity=sws.output_arity,
            name="swapped",
        )
        assert equivalent_cq_nr(sws, swapped).is_yes

    @pytest.mark.parametrize("seed", range(5))
    def test_random_reflexive(self, seed):
        sws = random_cq_sws(seed, n_states=3, recursive=False)
        assert equivalent_cq_nr(sws, sws).is_yes


class TestCQRecursive:
    def test_reflexive_is_unknown_not_no(self):
        chain = cq_chain_sws(0)
        answer = equivalent_cq(chain, chain, max_session_length=3)
        assert not answer.is_no

    def test_chain_vs_diamond(self):
        answer = equivalent_cq(
            cq_chain_sws(0), cq_diamond_sws(1), max_session_length=3
        )
        assert answer.is_no


class TestFO:
    def test_travel_vs_itself_no_disagreement(self):
        t1 = travel_service()
        answer = equivalent_fo_bounded(
            t1, t1, max_domain=1, max_rows=1, max_session_length=1, budget=500
        )
        assert not answer.is_no

    @pytest.mark.slow
    def test_travel_vs_recursive_variant(self):
        # τ1 and τ2 behave differently (τ2 needs the inquiry chain).
        answer = equivalent_fo_bounded(
            travel_service(),
            recursive_airfare_service(),
            max_domain=1,
            max_rows=1,
            max_session_length=1,
            budget=100000,
        )
        # The bounded search may or may not find the disagreement within
        # budget, but it must never claim YES.
        assert not answer.is_yes


class TestDispatchAndGuards:
    def test_kind_mismatch(self):
        with pytest.raises(AnalysisError):
            equivalent(pl_counter_sws(1), cq_diamond_sws(1))

    def test_routing_pl(self):
        sws = random_pl_sws(0)
        assert equivalent(sws, sws).is_yes

    def test_routing_cq(self):
        d = cq_diamond_sws(1)
        assert equivalent(d, d).is_yes
