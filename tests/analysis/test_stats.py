"""The work counters threaded through the decision procedures."""

import pytest

from repro.analysis import STATS, nonempty_pl, nonempty_pl_nr_sat
from repro.analysis.equivalence import equivalent_pl
from repro.analysis.stats import Stats, stats_delta
from repro.workloads.random_sws import random_pl_sws
from repro.workloads.scaling import pl_counter_sws


class TestStatsCounters:
    def test_reset_zeroes_everything(self):
        STATS.vectors_explored = 17
        STATS.sat_calls = 3
        STATS.reset()
        assert all(v == 0 for v in STATS.snapshot().values())

    def test_afa_search_counts_vectors_and_steps(self):
        STATS.reset()
        answer = nonempty_pl(pl_counter_sws(3))
        assert answer.is_yes
        assert STATS.vectors_explored > 0
        assert STATS.pre_steps > 0
        assert STATS.afa_compilations >= 1

    def test_symbol_dedup_is_visible(self):
        STATS.reset()
        nonempty_pl(random_pl_sws(3, n_states=4, n_variables=2))
        assert STATS.alphabet_symbols >= STATS.symbol_classes > 0
        assert 0 < STATS.symbol_dedup_ratio() <= 1.0

    def test_sat_path_counts_calls(self):
        STATS.reset()
        sws = random_pl_sws(3, n_states=4, n_variables=2, recursive=False)
        nonempty_pl_nr_sat(sws)
        assert STATS.sat_calls > 0

    def test_runs_are_counted(self):
        from repro.core.run import run

        STATS.reset()
        sws = random_pl_sws(3, n_states=4, n_variables=2)
        run(sws, [frozenset()])
        assert STATS.runs_executed == 1

    def test_intern_hit_rate_bounds(self):
        STATS.reset()
        equivalent_pl(
            random_pl_sws(3, n_states=3, n_variables=2),
            random_pl_sws(4, n_states=3, n_variables=2),
        )
        assert 0.0 <= STATS.intern_hit_rate() <= 1.0
        assert 0.0 <= STATS.compile_hit_rate() <= 1.0

    def test_snapshot_is_json_ready(self):
        import json

        STATS.reset()
        nonempty_pl(pl_counter_sws(2))
        snapshot = STATS.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestStatsDelta:
    """Scoped snapshot-diff measurement — the reset-free alternative."""

    def test_measures_without_mutating_the_singleton(self):
        before = STATS.snapshot()
        with stats_delta() as work:
            nonempty_pl(pl_counter_sws(3))
        assert work["vectors_explored"] > 0
        assert work["pre_steps"] > 0
        # The singleton only ever moved forward; nothing was reset.
        after = STATS.snapshot()
        assert all(after[k] >= before[k] for k in before)

    def test_deltas_compose_under_nesting(self):
        with stats_delta() as outer:
            STATS.sat_calls += 2
            with stats_delta() as inner:
                STATS.sat_calls += 3
        assert inner["sat_calls"] == 3
        assert outer["sat_calls"] == 5

    def test_back_to_back_deltas_are_independent(self):
        with stats_delta() as first:
            STATS.dpll_decisions += 4
        with stats_delta() as second:
            STATS.dpll_decisions += 1
        assert first["dpll_decisions"] == 4
        assert second["dpll_decisions"] == 1

    def test_reads_live_inside_the_block(self):
        with stats_delta() as work:
            assert work["runs_executed"] == 0
            STATS.runs_executed += 2
            assert work["runs_executed"] == 2

    def test_exception_still_records_partial_work(self):
        with pytest.raises(RuntimeError):
            with stats_delta() as work:
                STATS.sat_calls += 6
                raise RuntimeError("interrupted")
        assert work["sat_calls"] == 6

    def test_nonzero_filters_and_as_dict_is_complete(self):
        with stats_delta() as work:
            STATS.intern_hits += 1
        assert work.nonzero() == {"intern_hits": 1}
        full = work.as_dict()
        assert full["intern_hits"] == 1
        assert set(full) == set(STATS.snapshot())
        assert "intern_hits" in repr(work)

    def test_explicit_stats_instance(self):
        local = Stats()
        with stats_delta(local) as work:
            local.sat_calls += 9
        assert work["sat_calls"] == 9
        assert work.get("missing", -1) == -1

    def test_read_before_enter_raises(self):
        delta = stats_delta()
        with pytest.raises(RuntimeError, match="before entering"):
            delta.as_dict()
