"""The work counters threaded through the decision procedures."""

from repro.analysis import STATS, nonempty_pl, nonempty_pl_nr_sat
from repro.analysis.equivalence import equivalent_pl
from repro.workloads.random_sws import random_pl_sws
from repro.workloads.scaling import pl_counter_sws


class TestStatsCounters:
    def test_reset_zeroes_everything(self):
        STATS.vectors_explored = 17
        STATS.sat_calls = 3
        STATS.reset()
        assert all(v == 0 for v in STATS.snapshot().values())

    def test_afa_search_counts_vectors_and_steps(self):
        STATS.reset()
        answer = nonempty_pl(pl_counter_sws(3))
        assert answer.is_yes
        assert STATS.vectors_explored > 0
        assert STATS.pre_steps > 0
        assert STATS.afa_compilations >= 1

    def test_symbol_dedup_is_visible(self):
        STATS.reset()
        nonempty_pl(random_pl_sws(3, n_states=4, n_variables=2))
        assert STATS.alphabet_symbols >= STATS.symbol_classes > 0
        assert 0 < STATS.symbol_dedup_ratio() <= 1.0

    def test_sat_path_counts_calls(self):
        STATS.reset()
        sws = random_pl_sws(3, n_states=4, n_variables=2, recursive=False)
        nonempty_pl_nr_sat(sws)
        assert STATS.sat_calls > 0

    def test_runs_are_counted(self):
        from repro.core.run import run

        STATS.reset()
        sws = random_pl_sws(3, n_states=4, n_variables=2)
        run(sws, [frozenset()])
        assert STATS.runs_executed == 1

    def test_intern_hit_rate_bounds(self):
        STATS.reset()
        equivalent_pl(
            random_pl_sws(3, n_states=3, n_variables=2),
            random_pl_sws(4, n_states=3, n_variables=2),
        )
        assert 0.0 <= STATS.intern_hit_rate() <= 1.0
        assert 0.0 <= STATS.compile_hit_rate() <= 1.0

    def test_snapshot_is_json_ready(self):
        import json

        STATS.reset()
        nonempty_pl(pl_counter_sws(2))
        snapshot = STATS.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
