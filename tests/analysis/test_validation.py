"""Tests for the validation procedures (Table 1, column 2)."""

import pytest

from repro.analysis.validation import validate, validate_cq_nr, validate_pl
from repro.core.run import run_pl, run_relational
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.generators import InstanceGenerator
from repro.logic import pl
from repro.workloads.random_sws import random_cq_sws, random_pl_sws
from repro.workloads.scaling import cq_diamond_sws, pl_counter_sws


class TestPL:
    def test_validate_true_equals_nonemptiness(self):
        from repro.analysis.nonemptiness import nonempty_pl

        for seed in range(10):
            sws = random_pl_sws(seed, n_states=4, n_variables=2)
            assert validate_pl(sws, True).is_yes == nonempty_pl(sws).is_yes

    def test_witness_replays_true(self):
        sws = pl_counter_sws(2)
        answer = validate_pl(sws, True)
        assert answer.is_yes
        assert run_pl(sws, answer.witness).output

    def test_witness_replays_false(self):
        sws = pl_counter_sws(2)
        answer = validate_pl(sws, False)
        assert answer.is_yes
        assert not run_pl(sws, answer.witness).output

    def test_accept_everything_service(self):
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(pl.TRUE)},
            kind=SWSKind.PL,
        )
        assert validate_pl(sws, True).is_yes
        assert validate_pl(sws, False).is_no

    def test_accept_nothing_service(self):
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(pl.FALSE)},
            kind=SWSKind.PL,
        )
        assert validate_pl(sws, True).is_no
        assert validate_pl(sws, False).is_yes


class TestCQ:
    def test_actual_run_output_validates(self):
        gen = InstanceGenerator(seed=17, domain_size=3)
        sws = cq_diamond_sws(2)
        found_nonempty = False
        for trial in range(10):
            db = gen.database(sws.db_schema, 4)
            inputs = gen.input_sequence(sws.input_schema, 3, 2)
            output = run_relational(sws, db, inputs).output.rows
            if not output:
                continue
            found_nonempty = True
            answer = validate_cq_nr(sws, output)
            assert answer.is_yes
            witness_db, witness_inputs = answer.witness
            assert (
                run_relational(sws, witness_db, witness_inputs).output.rows
                == output
            )
            break
        assert found_nonempty, "workload never produced output; fixture too weak"

    def test_empty_output_always_validatable_for_diamond(self):
        answer = validate_cq_nr(cq_diamond_sws(1), [])
        assert answer.is_yes

    def test_arity_mismatch_rejected(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="arity"):
            validate_cq_nr(cq_diamond_sws(1), [(1, 2, 3)])

    @pytest.mark.parametrize("seed", range(6))
    def test_random_service_roundtrip(self, seed):
        gen = InstanceGenerator(seed=seed, domain_size=3)
        sws = random_cq_sws(seed, n_states=3, recursive=False)
        db = gen.database(sws.db_schema, 3)
        inputs = gen.input_sequence(sws.input_schema, sws.depth() + 1, 2)
        output = run_relational(sws, db, inputs).output.rows
        answer = validate_cq_nr(sws, output)
        # Soundness: a YES witness must reproduce the output exactly.
        if answer.is_yes:
            witness_db, witness_inputs = answer.witness
            assert (
                run_relational(sws, witness_db, witness_inputs).output.rows
                == output
            )
        # The output came from a real run, so NO would be wrong.
        assert not answer.is_no


class TestDispatch:
    def test_pl_routing(self):
        assert validate(pl_counter_sws(1), True).is_yes

    def test_cq_routing(self):
        assert validate(cq_diamond_sws(1), []).is_yes


class TestPLNrSat:
    """The NP validation procedure must agree with the AFA route."""

    @pytest.mark.parametrize("seed", range(12))
    def test_agreement_with_vector_search(self, seed):
        from repro.analysis.validation import validate_pl_nr_sat

        sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=False)
        for output in (True, False):
            via_sat = validate_pl_nr_sat(sws, output)
            via_afa = validate_pl(sws, output)
            assert via_sat.is_yes == via_afa.is_yes, (seed, output)
            if via_sat.is_yes:
                assert run_pl(sws, via_sat.witness).output == output

    def test_rejects_recursive(self):
        from repro.analysis.validation import validate_pl_nr_sat
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            validate_pl_nr_sat(pl_counter_sws(1), True)
