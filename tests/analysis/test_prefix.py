"""Tests for k-prefix recognizability (Theorem 5.1(4,5) machinery)."""

import pytest

from repro.analysis.prefix import (
    is_prefix_recognizable,
    prefix_bound,
    sws_prefix_bound,
)
from repro.automata.regex import parse_regex
from repro.workloads.pl_services import HASH, union_word_service, word_service
from repro.workloads.scaling import pl_counter_sws


def _nfa(text, alphabet=("a", "b")):
    return parse_regex(text).to_nfa(alphabet)


class TestRegularLanguages:
    def test_constant_languages(self):
        assert prefix_bound(_nfa("(a|b)*")) == 0  # Σ*
        from repro.automata.nfa import NFA

        assert prefix_bound(NFA.empty_language({"a", "b"})) == 0  # ∅

    def test_prefix_closed_word(self):
        # a·Σ*: membership decided by the first symbol.
        assert prefix_bound(_nfa("a (a|b)*")) == 1

    def test_two_symbol_prefix(self):
        assert prefix_bound(_nfa("a b (a|b)*")) == 2

    def test_exact_word_bound(self):
        # {ab}: words of length ≥ 3 sharing the prefix 'ab' are all
        # rejected, but 'ab' itself is accepted — so k = 2 fails ('ab' vs
        # 'aba') and k = 3 works (every finite language is k-prefix for
        # k beyond its longest word).
        assert prefix_bound(_nfa("a b")) == 3
        assert not is_prefix_recognizable(_nfa("a b"), 2)

    def test_parity_not_prefix_recognizable(self):
        assert prefix_bound(_nfa("(a a)*")) is None

    def test_is_prefix_recognizable_with_k(self):
        nfa = _nfa("a b (a|b)*")
        assert is_prefix_recognizable(nfa, 2)
        assert not is_prefix_recognizable(nfa, 1)
        assert is_prefix_recognizable(nfa)


class TestSWSLanguages:
    def test_word_service_is_prefix_recognizable(self):
        sws = word_service(["a", HASH], ["a", "b"])
        bound = sws_prefix_bound(sws)
        assert bound == 2  # session word length

    def test_union_service(self):
        sws = union_word_service([["a", HASH], ["b", HASH, "a", HASH]], ["a", "b"])
        bound = sws_prefix_bound(sws)
        assert bound == 4

    def test_nonrecursive_bound_dominated_by_depth(self):
        from repro.workloads.random_sws import random_pl_sws

        for seed in range(8):
            sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=False)
            bound = sws_prefix_bound(sws)
            assert bound is not None
            assert bound <= sws.depth() + 1

    def test_counter_not_prefix_recognizable(self):
        assert sws_prefix_bound(pl_counter_sws(1)) is None

    def test_rejects_relational(self):
        from repro.errors import AnalysisError
        from repro.workloads.travel import travel_service

        with pytest.raises(AnalysisError):
            sws_prefix_bound(travel_service())
