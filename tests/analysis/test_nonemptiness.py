"""Tests for the non-emptiness procedures (Table 1, column 1)."""

import itertools

import pytest

from repro.analysis.nonemptiness import (
    nonempty,
    nonempty_cq,
    nonempty_cq_nr,
    nonempty_fo_bounded,
    nonempty_pl,
    nonempty_pl_nr_sat,
)
from repro.core.run import run_pl, run_relational
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import AnalysisError
from repro.logic import pl
from repro.workloads.random_sws import random_cq_sws, random_pl_sws
from repro.workloads.scaling import cq_chain_sws, cq_diamond_sws, pl_counter_sws
from repro.workloads.travel import sample_database, booking_request, travel_service


def _brute_force_pl(sws, max_length=4):
    variables = sorted(sws.input_variables())
    alphabet = [
        frozenset(c)
        for r in range(len(variables) + 1)
        for c in itertools.combinations(variables, r)
    ]
    for n in range(max_length + 1):
        for word in itertools.product(alphabet, repeat=n):
            if run_pl(sws, list(word)).output:
                return True
    return False


class TestPL:
    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_afa_vs_sat_vs_brute(self, seed):
        sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=False)
        via_afa = nonempty_pl(sws)
        via_sat = nonempty_pl_nr_sat(sws)
        brute = _brute_force_pl(sws)
        assert via_afa.is_yes == via_sat.is_yes == brute

    def test_witnesses_replay(self):
        for seed in range(10):
            sws = random_pl_sws(seed, n_states=4, n_variables=2)
            answer = nonempty_pl(sws)
            if answer.is_yes:
                assert run_pl(sws, answer.witness).output

    def test_counter_shortest_witness(self):
        for bits in (1, 2, 3):
            answer = nonempty_pl(pl_counter_sws(bits))
            assert answer.is_yes
            assert len(answer.witness) == 2**bits

    def test_empty_service(self):
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(pl.FALSE)},
            kind=SWSKind.PL,
        )
        assert nonempty_pl(sws).is_no
        assert nonempty_pl_nr_sat(sws).is_no

    def test_sat_rejects_recursive(self):
        with pytest.raises(AnalysisError):
            nonempty_pl_nr_sat(pl_counter_sws(2))


class TestCQ:
    @pytest.mark.parametrize("seed", range(10))
    def test_nonrecursive_witness_verified(self, seed):
        sws = random_cq_sws(seed, n_states=4, recursive=False)
        answer = nonempty_cq_nr(sws)
        if answer.is_yes:
            db, inputs = answer.witness
            assert run_relational(sws, db, inputs).output

    def test_diamond_nonempty(self):
        answer = nonempty_cq_nr(cq_diamond_sws(2))
        assert answer.is_yes

    def test_recursive_chain(self):
        answer = nonempty_cq(cq_chain_sws(0), max_session_length=4)
        assert answer.is_yes
        db, inputs = answer.witness
        assert run_relational(cq_chain_sws(0), db, inputs).output

    def test_unsatisfiable_service(self):
        from repro.logic.cq import Atom, ConjunctiveQuery, neq
        from repro.logic.terms import var
        from repro.logic.ucq import UnionQuery
        from repro.workloads.random_sws import DEFAULT_CQ_SCHEMA, DEFAULT_PAYLOAD

        x = var("x")
        impossible = UnionQuery.of(
            ConjunctiveQuery((x, x), [Atom("In", (x, x))], [neq(x, x)])
        )
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(impossible)},
            kind=SWSKind.RELATIONAL,
            db_schema=DEFAULT_CQ_SCHEMA,
            input_schema=DEFAULT_PAYLOAD,
            output_arity=2,
        )
        assert nonempty_cq_nr(sws).is_no

    def test_budget_exhaustion_is_unknown(self):
        # The chain needs n >= 2; a budget of 1 cannot find it.
        answer = nonempty_cq(cq_chain_sws(0), max_session_length=1)
        assert answer.is_unknown


class TestFO:
    def test_hint_verification(self):
        t1 = travel_service()
        answer = nonempty_fo_bounded(
            t1, hints=[(sample_database(), booking_request())], budget=10
        )
        assert answer.is_yes
        assert answer.detail == "hint verified"

    def test_small_search_finds_simple_witness(self):
        from repro.logic import fo
        from repro.logic.terms import var
        from repro.data.schema import DatabaseSchema, RelationSchema
        from repro.reductions.fo_sat_to_sws import fo_sat_to_sws

        x = var("x")
        sentence = fo.Exists((x,), fo.atom("R", x, x))
        schema = DatabaseSchema([RelationSchema("R", ("a", "b"))])
        sws = fo_sat_to_sws(sentence, schema)
        answer = nonempty_fo_bounded(sws, max_domain=1, max_session_length=0)
        assert answer.is_yes

    def test_budget_respected(self):
        t1 = travel_service()
        answer = nonempty_fo_bounded(t1, budget=5, max_session_length=1)
        assert answer.is_unknown
        assert "budget" in answer.detail


class TestDispatch:
    def test_routes_by_class(self):
        assert nonempty(pl_counter_sws(1)).is_yes
        assert nonempty(cq_diamond_sws(1)).is_yes
        assert nonempty(cq_chain_sws(0), max_session_length=4).is_yes


class TestSmallDatabases:
    def _keys(self, sws, domain=("a", "b"), max_rows=1):
        from repro.analysis.nonemptiness import _small_databases

        keys = []
        for db in _small_databases(sws, domain, max_rows):
            keys.append(
                tuple(sorted((name, frozenset(db[name].rows)) for name in db))
            )
        return keys

    def test_enumeration_has_no_duplicates(self):
        sws = travel_service()
        keys = self._keys(sws)
        assert len(keys) == len(set(keys))

    def test_no_duplicates_when_full_database_is_small(self):
        # With max_rows covering every tuple, the subset product regenerates
        # both the empty and the full database; neither may repeat.
        sws = random_cq_sws(3, n_states=3, recursive=False)
        keys = self._keys(sws, domain=("a",), max_rows=4)
        assert len(keys) == len(set(keys))

    def test_empty_and_full_still_come_first(self):
        sws = random_cq_sws(3, n_states=3, recursive=False)
        keys = self._keys(sws, domain=("a", "b"), max_rows=1)
        assert all(not rows for _name, rows in keys[0])
        assert any(rows for _name, rows in keys[1])
