"""Tests for three-valued verdicts."""

import pytest

from repro.analysis.verdict import Answer, Verdict


class TestVerdict:
    def test_no_truthiness(self):
        with pytest.raises(TypeError):
            bool(Verdict.YES)

    def test_explicit_comparison(self):
        assert Verdict.YES is Verdict.YES
        assert Verdict.NO is not Verdict.UNKNOWN


class TestAnswer:
    def test_constructors(self):
        assert Answer.yes("w").is_yes
        assert Answer.no().is_no
        assert Answer.unknown("budget").is_unknown

    def test_witness_carried(self):
        answer = Answer.yes(witness=[1, 2], detail="via X")
        assert answer.witness == [1, 2]
        assert answer.detail == "via X"

    def test_flags_mutually_exclusive(self):
        for answer in (Answer.yes(), Answer.no(), Answer.unknown()):
            assert [answer.is_yes, answer.is_no, answer.is_unknown].count(True) == 1
