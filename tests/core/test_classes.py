"""Tests for the SWS class lattice and classification."""

import pytest

from repro.core.classes import SWSClass, classify, is_in_class, require_class
from repro.errors import AnalysisError
from repro.workloads.random_sws import random_cq_sws, random_pl_sws
from repro.workloads.scaling import cq_chain_sws, cq_diamond_sws, pl_counter_sws
from repro.workloads.travel import recursive_airfare_service, travel_service


class TestClassify:
    def test_pl_nonrecursive(self):
        assert classify(random_pl_sws(0, recursive=False)) is SWSClass.PL_PL_NR

    def test_pl_recursive(self):
        assert classify(pl_counter_sws(2)) is SWSClass.PL_PL

    def test_cq_nonrecursive(self):
        assert classify(cq_diamond_sws(2)) is SWSClass.CQ_UCQ_NR

    def test_cq_recursive(self):
        assert classify(cq_chain_sws(0)) is SWSClass.CQ_UCQ

    def test_fo_travel(self):
        # τ1 uses negation in ψ0, so it is FO (the paper says so too).
        assert classify(travel_service()) is SWSClass.FO_FO_NR
        assert classify(recursive_airfare_service()) is SWSClass.FO_FO


class TestLattice:
    def test_nonrecursive_variant(self):
        assert SWSClass.PL_PL.nonrecursive_variant is SWSClass.PL_PL_NR
        assert SWSClass.PL_PL_NR.nonrecursive_variant is SWSClass.PL_PL_NR

    def test_recursive_variant(self):
        assert SWSClass.CQ_UCQ_NR.recursive_variant is SWSClass.CQ_UCQ

    def test_recursive_allowed(self):
        assert SWSClass.FO_FO.recursive_allowed
        assert not SWSClass.FO_FO_NR.recursive_allowed

    def test_inclusions(self):
        diamond = cq_diamond_sws(1)
        assert is_in_class(diamond, SWSClass.CQ_UCQ_NR)
        assert is_in_class(diamond, SWSClass.CQ_UCQ)
        assert is_in_class(diamond, SWSClass.FO_FO_NR)
        assert is_in_class(diamond, SWSClass.FO_FO)
        assert not is_in_class(diamond, SWSClass.PL_PL)

    def test_recursive_not_in_nonrecursive(self):
        chain = cq_chain_sws(0)
        assert not is_in_class(chain, SWSClass.CQ_UCQ_NR)
        assert is_in_class(chain, SWSClass.FO_FO)

    def test_pl_incomparable_with_relational(self):
        counter = pl_counter_sws(2)
        assert not is_in_class(counter, SWSClass.CQ_UCQ)
        assert not is_in_class(counter, SWSClass.FO_FO)


class TestRequire:
    def test_require_passes(self):
        require_class(cq_diamond_sws(1), SWSClass.CQ_UCQ, "test")

    def test_require_raises(self):
        with pytest.raises(AnalysisError, match="requires"):
            require_class(travel_service(), SWSClass.CQ_UCQ, "test")

    def test_random_services_classified_consistently(self):
        for seed in range(10):
            sws = random_cq_sws(seed, recursive=True)
            expected = (
                SWSClass.CQ_UCQ if sws.is_recursive() else SWSClass.CQ_UCQ_NR
            )
            assert classify(sws) is expected
