"""Tests for the SWS data type (Definition 2.1 well-formedness)."""

import pytest

from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.errors import SWSDefinitionError
from repro.logic import pl
from repro.workloads.random_sws import random_cq_sws, random_pl_sws
from repro.workloads.travel import recursive_airfare_service, travel_service


def _tiny_pl(**overrides):
    """A well-formed 2-state PL service, with optional field overrides."""
    spec = dict(
        states=("q0", "q1"),
        start="q0",
        transitions={
            "q0": TransitionRule([("q1", pl.Var("x"))]),
            "q1": TransitionRule(),
        },
        synthesis={
            "q0": SynthesisRule(pl.Var("A1")),
            "q1": SynthesisRule(pl.Var("Msg")),
        },
    )
    spec.update(overrides)
    return SWS(
        spec["states"],
        spec["start"],
        spec["transitions"],
        spec["synthesis"],
        kind=SWSKind.PL,
    )


class TestValidation:
    def test_well_formed(self):
        sws = _tiny_pl()
        assert sws.states == ("q0", "q1")

    def test_unknown_start(self):
        with pytest.raises(SWSDefinitionError, match="start state"):
            _tiny_pl(start="zzz")

    def test_missing_transition_rule(self):
        with pytest.raises(SWSDefinitionError, match="without a transition"):
            _tiny_pl(transitions={"q0": TransitionRule()})

    def test_missing_synthesis_rule(self):
        with pytest.raises(SWSDefinitionError, match="without a synthesis"):
            _tiny_pl(synthesis={"q0": SynthesisRule(pl.TRUE)})

    def test_start_on_rhs_rejected(self):
        with pytest.raises(SWSDefinitionError, match="must not appear"):
            _tiny_pl(
                transitions={
                    "q0": TransitionRule([("q1", pl.TRUE)]),
                    "q1": TransitionRule([("q0", pl.TRUE)]),
                }
            )

    def test_unknown_target_rejected(self):
        with pytest.raises(SWSDefinitionError, match="unknown state"):
            _tiny_pl(
                transitions={
                    "q0": TransitionRule([("zzz", pl.TRUE)]),
                    "q1": TransitionRule(),
                }
            )

    def test_internal_synthesis_over_registers_only(self):
        with pytest.raises(SWSDefinitionError, match="A1"):
            _tiny_pl(
                synthesis={
                    "q0": SynthesisRule(pl.Var("x")),  # not a register
                    "q1": SynthesisRule(pl.Var("Msg")),
                }
            )

    def test_relational_needs_schemas(self):
        from repro.logic.cq import Atom, ConjunctiveQuery
        from repro.logic.terms import var

        q = ConjunctiveQuery((var("x"),), [Atom("In", (var("x"),))])
        with pytest.raises(SWSDefinitionError, match="input payload"):
            SWS(
                ("q0",),
                "q0",
                {"q0": TransitionRule()},
                {"q0": SynthesisRule(q)},
                kind=SWSKind.RELATIONAL,
            )


class TestAliases:
    def test_positional_and_state_aliases(self):
        sws = _tiny_pl()
        aliases = sws.successor_register_aliases("q0")
        assert aliases == {"A1": 0, "Act1": 0, "Act_q1": 0}

    def test_duplicate_successor_has_no_state_alias(self):
        sws = _tiny_pl(
            transitions={
                "q0": TransitionRule([("q1", pl.TRUE), ("q1", pl.Var("x"))]),
                "q1": TransitionRule(),
            },
            synthesis={
                "q0": SynthesisRule(pl.Var("A1") | pl.Var("A2")),
                "q1": SynthesisRule(pl.Var("Msg")),
            },
        )
        aliases = sws.successor_register_aliases("q0")
        assert "Act_q1" not in aliases
        assert aliases["A2"] == 1


class TestDependencyGraph:
    def test_travel_service_nonrecursive(self):
        sws = travel_service()
        assert not sws.is_recursive()
        assert sws.depth() == 1

    def test_recursive_detection(self):
        sws = recursive_airfare_service()
        assert sws.is_recursive()
        with pytest.raises(SWSDefinitionError):
            sws.depth()

    def test_dependency_edges(self):
        sws = travel_service()
        edges = sws.dependency_edges()
        assert ("q0", "qa") in edges
        assert len(edges) == 4

    def test_reachable_states(self):
        sws = travel_service()
        assert sws.reachable_states() == set(sws.states)

    def test_random_nonrecursive_really_nonrecursive(self):
        for seed in range(20):
            assert not random_pl_sws(seed, recursive=False).is_recursive()
            assert not random_cq_sws(seed, recursive=False).is_recursive()


class TestIntrospection:
    def test_input_variables(self):
        sws = _tiny_pl()
        assert sws.input_variables() == {"x"}

    def test_msg_not_an_input_variable(self):
        sws = _tiny_pl(
            transitions={
                "q0": TransitionRule([("q1", pl.Var("Msg") | pl.Var("y"))]),
                "q1": TransitionRule(),
            }
        )
        assert sws.input_variables() == {"y", "Msg"} - {"Msg"}

    def test_query_constants(self):
        sws = travel_service()
        assert "a" in sws.query_constants()
        assert "-" in sws.query_constants()

    def test_repr(self):
        assert "nonrecursive" in repr(travel_service())
        assert "recursive" in repr(recursive_airfare_service())
