"""Tests for the fluent SWS builder."""

import pytest

from repro.core.builder import pl_sws, relational_sws
from repro.core.run import run_pl, run_relational
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import SWSDefinitionError

DB = DatabaseSchema([RelationSchema("Ra", ("key", "flight"))])


class TestPLBuilder:
    def test_small_service(self):
        service = (
            pl_sws("demo")
            .transition("q0", ("q1", "x"))
            .synthesize("q0", "A1")
            .final("q1")
            .synthesize("q1", "Msg & y")
            .build()
        )
        assert run_pl(service, [frozenset({"x"}), frozenset({"y"})]).output
        assert not run_pl(service, [frozenset({"x"}), frozenset()]).output
        assert not run_pl(service, [frozenset(), frozenset({"y"})]).output

    def test_first_state_is_start(self):
        service = (
            pl_sws("demo")
            .final("root")
            .synthesize("root", "true")
            .build()
        )
        assert service.start == "root"

    def test_explicit_start(self):
        service = (
            pl_sws("demo")
            .final("leaf")
            .synthesize("leaf", "Msg")
            .start("q0")
            .transition("q0", ("leaf", "x"))
            .synthesize("q0", "A1")
            .build()
        )
        assert service.start == "q0"

    def test_duplicate_rules_rejected(self):
        builder = pl_sws("demo").final("q0").synthesize("q0", "true")
        with pytest.raises(SWSDefinitionError, match="already"):
            builder.final("q0")
        with pytest.raises(SWSDefinitionError, match="already"):
            builder.synthesize("q0", "false")


class TestRelationalBuilder:
    def test_cq_rules(self):
        service = (
            relational_sws("lookup", DB, payload=("tag", "key"), output_arity=1)
            .transition("q0", ("qa", "M(t, k) :- In(t, k), t = 'a'"))
            .synthesize("q0", "Up(f) :- Act_qa(f)")
            .final("qa")
            .synthesize("qa", "Out(f) :- Msg(t, k), Ra(k, f)")
            .build()
        )
        db = Database(DB, {"Ra": [("k1", "F100")]})
        inputs = InputSequence(service.input_schema, [[("a", "k1")]])
        assert run_relational(service, db, inputs).output.rows == {("F100",)}

    def test_ucq_synthesis(self):
        service = (
            relational_sws("either", DB, payload=("tag", "key"), output_arity=1)
            .final("q0")
            .synthesize(
                "q0",
                "Out(f) :- Ra(k, f), k = 'k1' ; Out(f) :- Ra(k, f), k = 'k2'",
            )
            .build()
        )
        db = Database(DB, {"Ra": [("k1", "F1"), ("k2", "F2"), ("k3", "F3")]})
        inputs = InputSequence(service.input_schema, [])
        assert run_relational(service, db, inputs).output.rows == {("F1",), ("F2",)}

    def test_fo_synthesis(self):
        service = (
            relational_sws("negation", DB, payload=("tag", "key"), output_arity=1)
            .final("q0")
            .synthesize(
                "q0",
                "Out(f) := (exists k . Ra(k, f)) and not exists g . Ra('blocked', g)",
            )
            .build()
        )
        db = Database(DB, {"Ra": [("k1", "F1")]})
        inputs = InputSequence(service.input_schema, [])
        assert run_relational(service, db, inputs).output.rows == {("F1",)}
        blocked = db.insert("Ra", [("blocked", "F9")])
        assert run_relational(service, blocked, inputs).output.rows == frozenset()

    def test_classification_matches_query_kinds(self):
        from repro.core.classes import SWSClass, classify

        cq_only = (
            relational_sws("cq", DB, payload=("t", "k"), output_arity=1)
            .final("q0")
            .synthesize("q0", "Out(f) :- Ra(k, f)")
            .build()
        )
        assert classify(cq_only) is SWSClass.CQ_UCQ_NR

    def test_arity_validation_still_applies(self):
        with pytest.raises(SWSDefinitionError, match="arity"):
            (
                relational_sws("bad", DB, payload=("t", "k"), output_arity=2)
                .final("q0")
                .synthesize("q0", "Out(f) :- Ra(k, f)")
                .build()
            )
