"""Tests for the PL language semantics: value recursion vs AFA vs runs."""

import itertools

import pytest

from repro.core.pl_semantics import (
    alphabet_for,
    joint_variables,
    language_value,
    to_afa,
)
from repro.core.run import run_pl
from repro.errors import AnalysisError
from repro.workloads.random_sws import random_pl_sws
from repro.workloads.scaling import pl_counter_sws
from repro.workloads.travel import travel_service


class TestAlphabet:
    def test_alphabet_size(self):
        sws = random_pl_sws(0, n_variables=2)
        assert len(alphabet_for(sws)) == 4

    def test_explicit_variables(self):
        sws = random_pl_sws(0, n_variables=1)
        assert len(alphabet_for(sws, ["a", "b", "c"])) == 8

    def test_no_variables_single_symbol(self):
        counter = pl_counter_sws(1)
        assert alphabet_for(counter) == (frozenset(),)

    def test_joint_variables(self):
        a = random_pl_sws(0, n_variables=2)
        b = random_pl_sws(1, n_variables=3)
        assert joint_variables(a, b) == a.input_variables() | b.input_variables()

    def test_joint_variables_rejects_relational(self):
        with pytest.raises(AnalysisError):
            joint_variables(travel_service())


class TestThreeWayAgreement:
    """run_pl, language_value and the AFA must agree on every word."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_services(self, seed):
        sws = random_pl_sws(seed, n_states=4, n_variables=2, recursive=(seed % 2 == 0))
        alphabet = alphabet_for(sws)
        afa = to_afa(sws)
        for n in range(0, 3):
            for word in itertools.product(alphabet, repeat=n):
                word = list(word)
                via_run = run_pl(sws, word).output
                via_value = language_value(sws, word)
                via_afa = afa.accepts(word)
                assert via_run == via_value == via_afa, (seed, word)

    def test_counter(self):
        sws = pl_counter_sws(2)
        afa = to_afa(sws)
        for m in range(0, 10):
            word = [frozenset()] * m
            expected = m > 0 and m % 4 == 0
            assert run_pl(sws, word).output == expected
            assert language_value(sws, word) == expected
            assert afa.accepts(word) == expected


class TestAfaStructure:
    def test_state_pairs(self):
        sws = random_pl_sws(3, n_states=3)
        afa = to_afa(sws)
        assert len(afa.states) == 2 * len(sws.states)

    def test_pl_required(self):
        with pytest.raises(AnalysisError):
            to_afa(travel_service())

    def test_language_value_requires_pl(self):
        with pytest.raises(AnalysisError):
            language_value(travel_service(), [])
