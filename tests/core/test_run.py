"""Tests for the execution-tree run semantics (Section 2 rules (1)-(4))."""

import pytest

from repro.core.run import run, run_pl, run_relational
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.errors import RunError
from repro.logic import pl
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery
from repro.workloads import travel

x, y = var("x"), var("y")

PAYLOAD = RelationSchema("Rin", ("v",))
DB = DatabaseSchema([RelationSchema("R", ("a", "b"))])


def _final_service(sigma):
    """A single final start state with the given synthesis."""
    return SWS(
        ("q0",),
        "q0",
        {"q0": TransitionRule()},
        {"q0": SynthesisRule(sigma)},
        kind=SWSKind.RELATIONAL,
        db_schema=DB,
        input_schema=PAYLOAD,
        output_arity=1,
        name="final_only",
    )


class TestRuleThree:
    """Final states always synthesize (rule (3), including at j > n)."""

    def test_final_state_reads_database_without_input(self):
        sigma = UnionQuery.of(ConjunctiveQuery((x,), [Atom("R", (x, y))]))
        sws = _final_service(sigma)
        db = Database(DB, {"R": [(1, 2)]})
        result = run_relational(sws, db, InputSequence(PAYLOAD, []))
        assert result.output.rows == {(1,)}

    def test_final_state_reads_current_input(self):
        sigma = UnionQuery.of(ConjunctiveQuery((x,), [Atom("In", (x,))]))
        sws = _final_service(sigma)
        db = Database.empty(DB)
        result = run_relational(sws, db, InputSequence(PAYLOAD, [[(7,)]]))
        assert result.output.rows == {(7,)}

    def test_input_beyond_sequence_is_empty(self):
        # Example 2.2's situation: leaves at timestamp 2 with n = 1.
        first = ConjunctiveQuery((x,), [Atom("In", (x,))])
        sigma = UnionQuery.of(ConjunctiveQuery((x,), [Atom("In", (x,))]))
        keep = UnionQuery.of(ConjunctiveQuery((x,), [Atom("A1", (x,))]))
        sws = SWS(
            ("q0", "q1"),
            "q0",
            {"q0": TransitionRule([("q1", first)]), "q1": TransitionRule()},
            {"q0": SynthesisRule(keep), "q1": SynthesisRule(sigma)},
            kind=SWSKind.RELATIONAL,
            db_schema=DB,
            input_schema=PAYLOAD,
            output_arity=1,
        )
        result = run_relational(
            sws, Database.empty(DB), InputSequence(PAYLOAD, [[(7,)]])
        )
        # q1's In is I2 = ∅, so nothing comes out — but the run completes.
        assert result.output.rows == frozenset()
        assert result.tree.size() == 2


class TestRuleOne:
    """Starvation and dead registers at internal states."""

    def test_internal_starved_is_empty(self):
        first = ConjunctiveQuery((x,), [Atom("In", (x,))])
        emit = UnionQuery.of(ConjunctiveQuery((x,), [Atom("R", (x, y))]))
        keep = UnionQuery.of(ConjunctiveQuery((x,), [Atom("A1", (x,))]))
        sws = SWS(
            ("q0", "q1"),
            "q0",
            {"q0": TransitionRule([("q1", first)]), "q1": TransitionRule()},
            {"q0": SynthesisRule(keep), "q1": SynthesisRule(emit)},
            kind=SWSKind.RELATIONAL,
            db_schema=DB,
            input_schema=PAYLOAD,
            output_arity=1,
        )
        db = Database(DB, {"R": [(1, 2)]})
        # Empty input: the root (internal) is starved -> no output even
        # though q1's synthesis could produce rows from R alone.
        result = run_relational(sws, db, InputSequence(PAYLOAD, []))
        assert result.output.rows == frozenset()
        assert result.tree.children == []

    def test_dead_register_kills_subtree(self):
        # Middle state's message selects In-rows equal to 42; without them
        # the subtree is dead although the leaf could still produce.
        select42 = ConjunctiveQuery(
            (x,), [Atom("In", (x,))], [  # x = 42
            ],
        )
        from repro.logic.cq import eq
        from repro.logic.terms import const

        select42 = ConjunctiveQuery(
            (x,), [Atom("In", (x,))], [eq(x, const(42))]
        )
        anything = ConjunctiveQuery((x,), [Atom("In", (x,))])
        emit_r = UnionQuery.of(ConjunctiveQuery((x,), [Atom("R", (x, y))]))
        keep = UnionQuery.of(ConjunctiveQuery((x,), [Atom("A1", (x,))]))
        sws = SWS(
            ("q0", "mid", "leaf"),
            "q0",
            {
                "q0": TransitionRule([("mid", select42)]),
                "mid": TransitionRule([("leaf", anything)]),
                "leaf": TransitionRule(),
            },
            {
                "q0": SynthesisRule(keep),
                "mid": SynthesisRule(keep),
                "leaf": SynthesisRule(emit_r),
            },
            kind=SWSKind.RELATIONAL,
            db_schema=DB,
            input_schema=PAYLOAD,
            output_arity=1,
        )
        db = Database(DB, {"R": [(1, 2)]})
        dead = run_relational(
            sws, db, InputSequence(PAYLOAD, [[(7,)], [(8,)], [(9,)]])
        )
        assert dead.output.rows == frozenset()
        alive = run_relational(
            sws, db, InputSequence(PAYLOAD, [[(42,)], [(8,)], [(9,)]])
        )
        assert alive.output.rows == {(1,)}

    def test_root_exempt_from_dead_register(self):
        # The root always has an empty register yet spawns when input
        # exists (the paper's special case).
        t1 = travel.travel_service()
        result = run_relational(
            t1, travel.sample_database(), travel.booking_request()
        )
        assert result.output


class TestPLRuns:
    def test_register_seeding(self):
        sws = SWS(
            ("q0",),
            "q0",
            {"q0": TransitionRule()},
            {"q0": SynthesisRule(pl.Var("Msg"))},
            kind=SWSKind.PL,
        )
        assert run_pl(sws, [], root_msg=True).output
        assert not run_pl(sws, [], root_msg=False).output

    def test_kind_mismatch(self):
        sws = travel.travel_service()
        with pytest.raises(RunError):
            run_pl(sws, [])

    def test_dispatch(self):
        t1 = travel.travel_service()
        result = run(t1, travel.sample_database(), travel.booking_request())
        assert result.accepted


class TestRootSeeding:
    def test_relational_root_msg(self):
        sigma = UnionQuery.of(ConjunctiveQuery((x,), [Atom("Msg", (x,))]))
        sws = _final_service(sigma)
        seed = Relation(PAYLOAD.renamed("Msg"), [(5,)])
        result = run_relational(
            sws, Database.empty(DB), InputSequence(PAYLOAD, []), root_msg=seed
        )
        assert result.output.rows == {(5,)}

    def test_arity_mismatch_rejected(self):
        sigma = UnionQuery.of(ConjunctiveQuery((x,), [Atom("Msg", (x,))]))
        sws = _final_service(sigma)
        bad = Relation(RelationSchema("Msg", ("a", "b")), [(1, 2)])
        with pytest.raises(RunError, match="arity"):
            run_relational(
                sws, Database.empty(DB), InputSequence(PAYLOAD, []), root_msg=bad
            )


class TestTreeShape:
    def test_travel_tree_is_flat(self):
        t1 = travel.travel_service()
        result = run_relational(
            t1, travel.sample_database(), travel.booking_request()
        )
        assert result.tree.height() == 1
        assert result.tree.size() == 5
        assert {c.state for c in result.tree.children} == {"qa", "qh", "qt", "qc"}

    def test_recursive_tree_grows_with_input(self):
        t2 = travel.recursive_airfare_service()
        db = travel.sample_database()
        short = run_relational(t2, db, travel.repeated_airfare_inquiries(["k1"]))
        long = run_relational(
            t2, db, travel.repeated_airfare_inquiries(["k1", "k1", "k1"])
        )
        assert long.tree.size() > short.tree.size()

    def test_timestamps_increase_down_the_tree(self):
        t1 = travel.travel_service()
        result = run_relational(
            t1, travel.sample_database(), travel.booking_request()
        )
        for child in result.tree.children:
            assert child.timestamp == result.tree.timestamp + 1
