"""Tests for execution-tree structure and metrics."""

from repro.core.exec_tree import ExecutionNode, RunResult


def _tree() -> ExecutionNode:
    root = ExecutionNode("q0", 1, True)
    a = ExecutionNode("qa", 2, True, act=True)
    b = ExecutionNode("qb", 2, False, act=False)
    c = ExecutionNode("qc", 3, True, act=True)
    a.children.append(c)
    root.children.extend([a, b])
    root.act = True
    return root


class TestMetrics:
    def test_size(self):
        assert _tree().size() == 4

    def test_height(self):
        assert _tree().height() == 2

    def test_leaves(self):
        leaves = list(_tree().leaves())
        assert [leaf.state for leaf in leaves] == ["qc", "qb"]

    def test_nodes_preorder(self):
        states = [node.state for node in _tree().nodes()]
        assert states == ["q0", "qa", "qc", "qb"]

    def test_max_timestamp(self):
        assert _tree().max_timestamp() == 3

    def test_single_node(self):
        node = ExecutionNode("q", 1, False, act=False)
        assert node.size() == 1
        assert node.height() == 0
        assert list(node.leaves()) == [node]


class TestRender:
    def test_render_contains_states_and_registers(self):
        text = _tree().render()
        assert "q0@1" in text
        assert "qc@3" in text
        assert "true" in text and "false" in text

    def test_render_undefined_register(self):
        node = ExecutionNode("q", 1, False)
        assert "⊥" in node.render()

    def test_render_relation_registers(self):
        from repro.data.relation import Relation
        from repro.data.schema import RelationSchema

        rel = Relation(RelationSchema("Msg", ("a",)), [(1,), (2,)])
        node = ExecutionNode("q", 1, rel, act=rel)
        assert "2 rows" in node.render()


class TestRunResult:
    def test_accepted_bool(self):
        assert RunResult(True, _tree()).accepted
        assert not RunResult(False, _tree()).accepted

    def test_accepted_relation(self):
        from repro.data.relation import Relation
        from repro.data.schema import RelationSchema

        schema = RelationSchema("Act", ("a",))
        assert RunResult(Relation(schema, [(1,)]), _tree()).accepted
        assert not RunResult(Relation.empty(schema), _tree()).accepted
