"""Tests for the UCQ≠ expansion of CQ/UCQ services."""

import pytest

from repro.core.run import run_relational
from repro.core.unfold import (
    evaluate_expansion,
    expand,
    expansion_relations,
    input_relation_name,
    saturation_length,
)
from repro.data.generators import InstanceGenerator
from repro.errors import AnalysisError
from repro.workloads.random_sws import random_cq_sws
from repro.workloads.scaling import cq_chain_sws, cq_diamond_sws
from repro.workloads.travel import travel_service


class TestBasics:
    def test_input_relation_names(self):
        assert input_relation_name(3) == "In_3"

    def test_saturation_length(self):
        assert saturation_length(cq_diamond_sws(3)) == 4

    def test_saturation_rejects_recursive(self):
        with pytest.raises(AnalysisError):
            saturation_length(cq_chain_sws(0))

    def test_expand_rejects_fo(self):
        with pytest.raises(AnalysisError):
            expand(travel_service(), 1)

    def test_negative_length_rejected(self):
        with pytest.raises(AnalysisError):
            expand(cq_diamond_sws(1), -1)

    def test_expansion_relations(self):
        sws = cq_diamond_sws(1)
        names = expansion_relations(sws, 2)
        assert "R" in names and "In_1" in names and "In_2" in names


class TestExponentialGrowth:
    def test_diamond_doubles(self):
        sizes = []
        for depth in (1, 2, 3, 4):
            sws = cq_diamond_sws(depth)
            expansion = expand(sws, saturation_length(sws))
            sizes.append(len(expansion.disjuncts))
        assert sizes == [2, 4, 8, 16]

    def test_chain_unfolding_grows_linearly(self):
        chain = cq_chain_sws(0)
        sizes = [len(expand(chain, n).disjuncts) for n in range(2, 6)]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 1


class TestCorrectness:
    """Q_n(D, I) must equal τ(D, I) for inputs of length n."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_nonrecursive(self, seed):
        gen = InstanceGenerator(seed=seed + 100, domain_size=3)
        sws = random_cq_sws(seed, n_states=4, recursive=False)
        n = saturation_length(sws)
        expansion = expand(sws, n)
        for _trial in range(3):
            db = gen.database(sws.db_schema, 3)
            inputs = gen.input_sequence(sws.input_schema, n, 2)
            direct = run_relational(sws, db, inputs).output.rows
            if expansion.disjuncts:
                via_q = evaluate_expansion(expansion, sws, db, inputs, n)
            else:
                via_q = frozenset()
            assert direct == via_q

    @pytest.mark.parametrize("n", range(0, 4))
    def test_recursive_chain_per_length(self, n):
        gen = InstanceGenerator(seed=n, domain_size=3)
        chain = cq_chain_sws(0)
        expansion = expand(chain, n)
        for _trial in range(3):
            db = gen.database(chain.db_schema, 4)
            inputs = gen.input_sequence(chain.input_schema, n, 2)
            direct = run_relational(chain, db, inputs).output.rows
            if expansion.disjuncts:
                via_q = evaluate_expansion(expansion, chain, db, inputs, n)
            else:
                via_q = frozenset()
            assert direct == via_q

    def test_truncated_sessions(self):
        gen = InstanceGenerator(seed=9, domain_size=3)
        sws = cq_diamond_sws(3)
        for n in range(0, 3):  # below saturation
            expansion = expand(sws, n)
            db = gen.database(sws.db_schema, 4)
            inputs = gen.input_sequence(sws.input_schema, n, 2)
            direct = run_relational(sws, db, inputs).output.rows
            via_q = (
                evaluate_expansion(expansion, sws, db, inputs, n)
                if expansion.disjuncts
                else frozenset()
            )
            assert direct == via_q

    def test_saturation_really_saturates(self):
        sws = cq_diamond_sws(2)
        n = saturation_length(sws)
        q_at_saturation = expand(sws, n)
        q_beyond = expand(sws, n + 2)
        assert q_at_saturation.equivalent_to(q_beyond)


class TestMonotonicity:
    def test_output_monotone_in_session_length(self):
        # Positivity: extending the input can only grow the output.
        gen = InstanceGenerator(seed=4, domain_size=3)
        chain = cq_chain_sws(0)
        db = gen.database(chain.db_schema, 5)
        inputs = gen.input_sequence(chain.input_schema, 4, 2)
        previous = frozenset()
        for n in range(1, 5):
            out = run_relational(chain, db, inputs.prefix(n)).output.rows
            assert previous <= out or not previous
            previous = out
