"""The bench emitters' shared IO: derived _meta and artifact paths."""

import importlib.util
import json
import os

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _load_bench_io():
    path = os.path.join(_REPO_ROOT, "benchmarks", "_bench_io.py")
    spec = importlib.util.spec_from_file_location("_bench_io_under_test", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_io = _load_bench_io()


class TestMergeSection:
    def test_meta_is_derived_from_arguments(self, tmp_path):
        path = str(tmp_path / "BENCH_something.json")
        bench_io.merge_section(
            path, "alpha", {"rows": [1, 2]}, regenerate="python run_alpha.py"
        )
        with open(path) as handle:
            data = json.load(handle)
        meta = data["_meta"]
        assert meta["file"] == "BENCH_something.json"
        assert meta["schema_version"] == bench_io.BENCH_SCHEMA_VERSION
        assert meta["regenerate"] == {"alpha": "python run_alpha.py"}
        assert data["alpha"] == {"rows": [1, 2]}

    def test_sections_merge_independently(self, tmp_path):
        path = str(tmp_path / "bench.json")
        bench_io.merge_section(path, "alpha", {"n": 1}, regenerate="cmd-a")
        bench_io.merge_section(path, "beta", {"n": 2}, regenerate="cmd-b")
        bench_io.merge_section(path, "alpha", {"n": 3}, regenerate="cmd-a2")
        with open(path) as handle:
            data = json.load(handle)
        assert data["alpha"] == {"n": 3}
        assert data["beta"] == {"n": 2}
        assert data["_meta"]["regenerate"] == {"alpha": "cmd-a2", "beta": "cmd-b"}

    def test_legacy_v1_meta_is_upgraded(self, tmp_path):
        path = str(tmp_path / "bench.json")
        with open(path, "w") as handle:
            json.dump(
                {
                    "old_section": {"kept": True},
                    "_meta": {
                        "file": "WRONG_NAME.json",
                        "before": "interpreted AST evaluation",
                        "after": "compiled bitmask evaluation",
                        "regenerate": ["python old_cmd.py"],
                    },
                },
                handle,
            )
        bench_io.merge_section(path, "new_section", {"n": 1}, regenerate="cmd")
        with open(path) as handle:
            data = json.load(handle)
        meta = data["_meta"]
        assert meta["file"] == "bench.json"
        assert meta["schema_version"] == bench_io.BENCH_SCHEMA_VERSION
        assert meta["regenerate"] == {"new_section": "cmd"}
        assert "before" not in meta and "after" not in meta
        assert data["old_section"] == {"kept": True}

    def test_regenerate_optional(self, tmp_path):
        path = str(tmp_path / "bench.json")
        bench_io.merge_section(path, "s", {"n": 1})
        with open(path) as handle:
            assert json.load(handle)["_meta"]["regenerate"] == {}


class TestTraceArtifactPath:
    def test_emitter_name_maps_to_artifact(self):
        got = bench_io.trace_artifact_path(
            "/anywhere/benchmarks/bench_table1_pl_recursive.py"
        )
        assert os.path.basename(got) == "BENCH_table1_pl_recursive.trace.jsonl"
        assert os.path.dirname(got) == os.path.dirname(bench_io.BENCH_TABLE1_PL)
