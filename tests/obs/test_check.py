"""The baseline checker: bound evaluation, optional inputs, CLI exit codes."""

import json

import pytest

from repro.metrics import Registry
from repro.obs.check import evaluate, run_check
from repro.obs.report import aggregate


def _snapshot(latency_values=(0.01, 0.02), hits=3, misses=1):
    r = Registry()
    r.counter("serve.cache.hits", tier="memory").inc(hits)
    r.counter("serve.cache.misses").inc(misses)
    r.counter("serve.jobs.executed").inc(len(latency_values))
    r.gauge("serve.queue.depth").set(0)
    for value in latency_values:
        r.histogram("serve.job.latency_s", procedure="pl").observe(value)
    return r.snapshot()


def _span(name, elapsed, status="ok"):
    return {
        "event": "span",
        "span_id": 1,
        "parent_id": None,
        "name": name,
        "elapsed_s": elapsed,
        "status": status,
    }


class TestEvaluate:
    def test_passing_metrics_checks(self):
        baseline = {
            "checks": [
                {
                    "name": "p99",
                    "source": "metrics",
                    "select": "serve.job.latency_s{procedure=pl}",
                    "stat": "p99",
                    "max": 1.0,
                },
                {
                    "name": "samples",
                    "source": "metrics",
                    "select": "serve.job.latency_s{procedure=pl}",
                    "stat": "count",
                    "min": 2,
                },
                {
                    "name": "hit-rate",
                    "source": "metrics",
                    "stat": "cache_hit_rate",
                    "min": 0.5,
                },
                {
                    "name": "executed",
                    "source": "metrics",
                    "select": "serve.jobs.executed",
                    "stat": "value",
                    "min": 1,
                },
                {
                    "name": "queue-drained",
                    "source": "metrics",
                    "select": "serve.queue.depth",
                    "stat": "value",
                    "max": 0,
                },
            ]
        }
        results = evaluate(baseline, snap=_snapshot())
        assert all(r.ok for r in results), [r.line() for r in results]

    def test_degraded_snapshot_fails(self):
        baseline = {
            "checks": [
                {
                    "name": "p99",
                    "source": "metrics",
                    "select": "serve.job.latency_s{procedure=pl}",
                    "stat": "p99",
                    "max": 1.0,
                },
                {
                    "name": "hit-rate",
                    "source": "metrics",
                    "stat": "cache_hit_rate",
                    "min": 0.5,
                },
            ]
        }
        degraded = _snapshot(latency_values=(8.0, 9.0), hits=0, misses=10)
        results = {r.name: r.ok for r in evaluate(baseline, snap=degraded)}
        assert results == {"p99": False, "hit-rate": False}

    def test_counter_rollup_across_labels(self):
        baseline = {
            "checks": [
                {
                    "name": "total-hits",
                    "source": "metrics",
                    "select": "serve.cache.hits",
                    "stat": "value",
                    "min": 3,
                }
            ]
        }
        # hits live under serve.cache.hits{tier=memory}; the bare name
        # still resolves via the label rollup.
        assert evaluate(baseline, snap=_snapshot())[0].ok

    def test_trace_checks(self):
        aggs = aggregate(
            [_span("proc", 0.1), _span("proc", 0.3, status="error")]
        )
        baseline = {
            "checks": [
                {
                    "name": "errors",
                    "source": "trace",
                    "select": "proc",
                    "stat": "errors",
                    "max": 0,
                },
                {
                    "name": "mean",
                    "source": "trace",
                    "select": "proc",
                    "stat": "mean_s",
                    "max": 1.0,
                },
            ]
        }
        results = {r.name: r.ok for r in evaluate(baseline, trace_aggregates=aggs)}
        assert results == {"errors": False, "mean": True}

    def test_missing_input_fails_unless_optional(self):
        baseline = {
            "checks": [
                {"name": "required", "source": "metrics", "stat": "cache_hit_rate"},
                {
                    "name": "skippable",
                    "source": "metrics",
                    "stat": "cache_hit_rate",
                    "optional": True,
                },
            ]
        }
        results = {r.name: r.ok for r in evaluate(baseline)}
        assert results == {"required": False, "skippable": True}

    def test_missing_stat_fails_unless_optional(self):
        baseline = {
            "checks": [
                {
                    "name": "absent",
                    "source": "metrics",
                    "select": "no.such.histogram",
                    "stat": "p99",
                    "max": 1.0,
                }
            ]
        }
        assert not evaluate(baseline, snap=_snapshot())[0].ok
        baseline["checks"][0]["optional"] = True
        assert evaluate(baseline, snap=_snapshot())[0].ok

    def test_unknown_source_fails(self):
        baseline = {"checks": [{"name": "x", "source": "nope"}]}
        assert not evaluate(baseline)[0].ok


class TestRunCheck:
    def _write_baseline(self, tmp_path, checks):
        path = tmp_path / "baselines.json"
        path.write_text(json.dumps({"checks": checks}))
        return str(path)

    def _write_snapshot(self, tmp_path, snap):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps(snap) + "\n")
        return str(path)

    def test_pass_is_exit_zero(self, tmp_path):
        baseline = self._write_baseline(
            tmp_path,
            [
                {
                    "name": "hit-rate",
                    "source": "metrics",
                    "stat": "cache_hit_rate",
                    "min": 0.5,
                }
            ],
        )
        metrics_path = self._write_snapshot(tmp_path, _snapshot())
        code, text = run_check(baseline, metrics_path=metrics_path)
        assert code == 0
        assert "1/1 checks passed" in text

    def test_violation_is_exit_one(self, tmp_path):
        baseline = self._write_baseline(
            tmp_path,
            [
                {
                    "name": "hit-rate",
                    "source": "metrics",
                    "stat": "cache_hit_rate",
                    "min": 0.99,
                }
            ],
        )
        metrics_path = self._write_snapshot(tmp_path, _snapshot())
        code, text = run_check(baseline, metrics_path=metrics_path)
        assert code == 1
        assert "FAIL" in text and "FAILED" in text

    def test_empty_metrics_file_is_an_error(self, tmp_path):
        baseline = self._write_baseline(tmp_path, [])
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, text = run_check(baseline, metrics_path=str(empty))
        assert code == 1
        assert "no metrics snapshot" in text

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.obs.report import main

        baseline = self._write_baseline(
            tmp_path,
            [
                {
                    "name": "hit-rate",
                    "source": "metrics",
                    "stat": "cache_hit_rate",
                    "min": 0.5,
                }
            ],
        )
        metrics_path = self._write_snapshot(tmp_path, _snapshot())
        code = main(["check", "--baseline", baseline, "--metrics", metrics_path])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_committed_baseline_passes_on_committed_traces(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        code, text = run_check(
            str(root / "benchmarks" / "baselines.json"),
            trace_paths=[
                str(root / "BENCH_table1_pl_recursive.trace.jsonl"),
                str(root / "BENCH_table1_pl_nr.trace.jsonl"),
            ],
        )
        assert code == 0, text

class TestUpdateBaseline:
    def _write(self, tmp_path, checks, meta=None):
        path = tmp_path / "baselines.json"
        data = {"checks": checks}
        if meta:
            data["_meta"] = meta
        path.write_text(json.dumps(data))
        return str(path)

    def _metrics_file(self, tmp_path, snap):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps(snap) + "\n")
        return str(path)

    def test_rewrites_bounds_around_observed(self, tmp_path):
        from repro.obs.check import update_baseline

        baseline = self._write(
            tmp_path,
            [
                {
                    "name": "p99",
                    "source": "metrics",
                    "select": "serve.job.latency_s{procedure=pl}",
                    "stat": "p99",
                    "max": 123.0,
                },
                {
                    "name": "samples",
                    "source": "metrics",
                    "select": "serve.job.latency_s{procedure=pl}",
                    "stat": "count",
                    "min": 99,
                },
            ],
        )
        metrics_path = self._metrics_file(tmp_path, _snapshot())
        code, text = update_baseline(baseline, metrics_path=metrics_path)
        assert code == 0
        assert "2/2 checks re-baselined" in text
        data = json.loads(open(baseline).read())
        p99, samples = data["checks"]
        # Observed p99 = 0.02 -> max 0.2 at the default 10x headroom;
        # observed count = 2 -> min 0.2.
        assert p99["max"] == pytest.approx(0.2)
        assert samples["min"] == pytest.approx(0.2)
        assert "check --update" in data["_meta"]["updated_by"]
        # The regenerated file must pass its own check.
        from repro.obs.check import run_check

        assert run_check(baseline, metrics_path=metrics_path)[0] == 0

    def test_per_check_headroom_override(self, tmp_path):
        from repro.obs.check import update_baseline

        baseline = self._write(
            tmp_path,
            [
                {
                    "name": "tight",
                    "source": "metrics",
                    "select": "serve.job.latency_s{procedure=pl}",
                    "stat": "p99",
                    "max": 1.0,
                    "headroom": 2.0,
                }
            ],
        )
        metrics_path = self._metrics_file(tmp_path, _snapshot())
        code, _ = update_baseline(baseline, metrics_path=metrics_path)
        assert code == 0
        data = json.loads(open(baseline).read())
        assert data["checks"][0]["max"] == pytest.approx(0.04)
        # The override key itself survives the rewrite.
        assert data["checks"][0]["headroom"] == 2.0

    def test_missing_input_skips_and_exits_nonzero(self, tmp_path):
        from repro.obs.check import update_baseline

        baseline = self._write(
            tmp_path,
            [
                {
                    "name": "trace-only",
                    "source": "trace",
                    "select": "proc",
                    "stat": "mean_s",
                    "max": 1.0,
                }
            ],
        )
        before = open(baseline).read()
        code, text = update_baseline(baseline)
        assert code == 1
        assert "SKIP" in text and "nothing written" in text
        assert open(baseline).read() == before

    def test_rejects_sub_unit_headroom(self, tmp_path):
        from repro.obs.check import update_baseline

        baseline = self._write(tmp_path, [])
        with pytest.raises(ValueError):
            update_baseline(baseline, headroom=0.5)

    def test_cli_update_flag(self, tmp_path, capsys):
        from repro.obs.report import main

        baseline = self._write(
            tmp_path,
            [
                {
                    "name": "hit-rate",
                    "source": "metrics",
                    "stat": "cache_hit_rate",
                    "min": 0.01,
                }
            ],
        )
        metrics_path = self._metrics_file(tmp_path, _snapshot())
        code = main(
            ["check", "--update", "--baseline", baseline, "--metrics", metrics_path]
        )
        assert code == 0
        assert "re-baselined" in capsys.readouterr().out
        # hit rate observed 0.75 -> min 0.075 at default headroom
        data = json.loads(open(baseline).read())
        assert data["checks"][0]["min"] == pytest.approx(0.075)
