"""The `obs explain` diagnosis: findings ranking and lenient parsing."""

import io
import json
import subprocess
import sys

from repro import obs
from repro.analysis import nonempty_pl
from repro.guard import Budget
from repro.obs import explain as explain_mod
from repro.obs.explain import SiteCurve, explain, split_events
from repro.obs import progress
from repro.workloads.scaling import pl_counter_sws


def _progress_event(site, steps, **extra):
    return {"event": "progress", "v": 1, "site": site, "steps": steps, **extra}


def _span_event(name, span_id, elapsed_s, parent=None, **extra):
    event = {
        "event": "span",
        "name": name,
        "span_id": span_id,
        "elapsed_s": elapsed_s,
        **extra,
    }
    if parent is not None:
        event["parent_id"] = parent
    return event


class TestSiteCurve:
    def test_trends(self):
        curve = SiteCurve("s")
        curve.add(_progress_event("s", 100, frontier=4, steps_per_s=1000.0))
        curve.add(_progress_event("s", 200, frontier=16, steps_per_s=400.0))
        assert curve.steps == 200
        assert curve.frontier_trend() == (4, 16)
        assert curve.rate_trend() == (1000.0, 400.0)
        assert curve.tripped is None

    def test_trip_and_headroom_from_latest_events(self):
        curve = SiteCurve("s")
        curve.add(_progress_event("s", 10, headroom={"steps": 0.9}))
        curve.add(_progress_event("s", 20, tripped="deadline"))
        assert curve.tripped == "deadline"
        assert curve.headroom() == {"steps": 0.9}


class TestFindings:
    def test_frontier_growth_flagged(self):
        events = [
            _span_event("root", 1, 1.0),
            _progress_event("bfs", 100, frontier=2),
            _progress_event("bfs", 5000, frontier=64, peak_frontier=80),
        ]
        text = explain_from_events(events)
        assert "frontier growth" in text
        assert "'bfs' grew 2 → 64" in text

    def test_throughput_decay_flagged(self):
        events = [
            _span_event("root", 1, 1.0),
            _progress_event("bfs", 100, steps_per_s=100000.0),
            _progress_event("bfs", 200, steps_per_s=100000.0),
            _progress_event("bfs", 250, steps_per_s=20000.0),
            _progress_event("bfs", 300, steps_per_s=10000.0),
        ]
        text = explain_from_events(events)
        assert "throughput decay" in text

    def test_trip_cross_limit_headroom(self):
        events = [
            _span_event(
                "nonempty_pl", 1, 2.0,
                status="error", attrs={"tripped": "deadline"},
            ),
            _progress_event(
                "bfs", 900,
                tripped="deadline",
                headroom={"steps": 0.95, "deadline": 0.0},
                frontier=12,
            ),
        ]
        text = explain_from_events(events)
        assert "guard tripped" in text
        assert "steps 95% left" in text
        assert "last progress at 'bfs': 900 steps, frontier 12" in text

    def test_dominant_phase_and_critical_path(self):
        events = [
            _span_event("root", 1, 1.0),
            _span_event("inner", 2, 0.9, parent=1),
        ]
        text = explain_from_events(events)
        assert "dominant phase: 'inner'" in text
        assert "critical path: root → inner" in text


def explain_from_events(events, tmp_path=None, limit=None):
    import tempfile, os

    with tempfile.NamedTemporaryFile(
        "w", suffix=".jsonl", delete=False
    ) as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
        path = handle.name
    try:
        return explain([path], limit=limit)
    finally:
        os.unlink(path)


class TestLenientParsing:
    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            json.dumps(_span_event("root", 1, 1.0))
            + "\n"
            + '{"event": "span", "name": "tru'  # killed mid-write
        )
        skipped = []
        text = explain([str(trace)], on_skip=skipped.append)
        assert "dominant phase" in text
        assert len(skipped) == 1

    def test_real_trace_end_to_end(self, tmp_path):
        trace = tmp_path / "solve.jsonl"
        obs.configure(path=str(trace), mode="w")
        progress.configure(enabled=True, interval_s=1e-9)
        try:
            nonempty_pl(pl_counter_sws(8), guard=Budget(deadline_s=30))
        finally:
            progress.configure(enabled=False)
            obs.configure(enabled=False)
        text = explain([str(trace)])
        assert "dominant phase" in text
        assert "progress event(s)" in text


class TestCLI:
    def test_explain_subcommand(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with trace.open("w") as handle:
            handle.write(json.dumps(_span_event("root", 1, 1.0)) + "\n")
            handle.write("not json\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "explain", str(trace)],
            capture_output=True,
            text=True,
            env=_src_env(),
        )
        assert proc.returncode == 0, proc.stderr
        assert "dominant phase" in proc.stdout
        assert "warning" in proc.stderr  # the malformed line was reported

    def test_flame_subcommand(self, tmp_path):
        collapsed = tmp_path / "p.collapsed"
        collapsed.write_text("main;solve 9\nmain;io 1\n")
        out = tmp_path / "p.html"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.obs", "flame",
                str(collapsed), "-o", str(out),
            ],
            capture_output=True,
            text=True,
            env=_src_env(),
        )
        assert proc.returncode == 0, proc.stderr
        assert "10 samples" in proc.stdout
        assert out.read_text().startswith("<!doctype html>")

    def test_flame_empty_input_fails(self, tmp_path):
        collapsed = tmp_path / "empty.collapsed"
        collapsed.write_text("")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "flame", str(collapsed)],
            capture_output=True,
            text=True,
            env=_src_env(),
        )
        assert proc.returncode == 1


def _src_env():
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_PROGRESS", None)
    env.pop("REPRO_PROFILE", None)
    return env
