"""The trace report: aggregation, rendering, and the CLI entry point."""

import io
import json

import pytest

from repro import obs
from repro.obs.report import (
    SpanAggregate,
    aggregate,
    expand_traces,
    fold_events,
    main,
    render,
    report,
)
from repro.workloads.scaling import pl_counter_sws


def _span(name, elapsed, span_id=1, status="ok", counters=None, attrs=None):
    event = {
        "event": "span",
        "v": obs.TRACE_SCHEMA_VERSION,
        "span_id": span_id,
        "parent_id": None,
        "depth": 0,
        "name": name,
        "t_wall": 0.0,
        "elapsed_s": elapsed,
        "status": status,
    }
    if counters:
        event["counters"] = counters
    if attrs:
        event["attrs"] = attrs
    return event


class TestAggregate:
    def test_folds_per_name(self):
        events = [
            _span("a", 1.0, span_id=1, counters={"sat_calls": 2}),
            _span("a", 3.0, span_id=2, counters={"sat_calls": 5}),
            _span("b", 0.5, span_id=3, status="error"),
            {"event": "not-a-span"},
        ]
        aggs = aggregate(events)
        assert set(aggs) == {"a", "b"}
        a = aggs["a"]
        assert a.count == 2
        assert a.errors == 0
        assert a.total_s == pytest.approx(4.0)
        assert a.max_s == pytest.approx(3.0)
        assert a.counters == {"sat_calls": 7}
        assert a.slowest["span_id"] == 2
        assert aggs["b"].errors == 1

    def test_dominant_counters_ranked_by_summed_delta(self):
        agg = SpanAggregate("x")
        agg.add(_span("x", 0.1, counters={"a": 1, "b": 100, "c": 10, "d": 50}))
        assert agg.dominant_counters(limit=2) == [("b", 100), ("d", 50)]


class TestRender:
    def test_table_contains_rows_and_slowest_section(self):
        aggs = aggregate(
            [
                _span("slow_proc", 2.0, span_id=1, attrs={"subject": "c8"}),
                _span("fast_proc", 0.001, span_id=2),
            ]
        )
        text = render(aggs)
        assert "slow_proc" in text and "fast_proc" in text
        assert "slowest spans:" in text
        assert "subject=c8" in text
        # total-sort puts the slow procedure first
        assert text.index("slow_proc") < text.index("fast_proc")

    def test_sort_and_limit(self):
        aggs = aggregate(
            [
                _span("a", 1.0, span_id=1),
                _span("b", 2.0, span_id=2),
                _span("b", 2.0, span_id=3),
            ]
        )
        by_name = render(aggs, sort="name")
        assert by_name.index("a") < by_name.index("b")
        limited = render(aggs, sort="count", limit=1)
        assert "b" in limited and "a  " not in limited

    def test_empty_trace(self):
        assert "no span events" in render({})


class TestReportEndToEnd:
    def test_report_on_a_real_trace(self, tmp_path):
        from repro.analysis import nonempty_pl

        trace = tmp_path / "trace.jsonl"
        obs.configure(path=str(trace), mode="w")
        try:
            nonempty_pl(pl_counter_sws(3))
        finally:
            obs.configure(enabled=False)
        text = report(str(trace))
        assert "nonempty_pl" in text
        assert "vectors_explored" in text

    def test_cli_main(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        with open(trace, "w") as handle:
            json.dump(_span("proc", 0.25, counters={"pre_steps": 9}), handle)
            handle.write("\n")
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "proc" in out and "pre_steps=9" in out

    def test_cli_missing_file_exits_nonzero(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(tmp_path / "absent.jsonl")])
        assert excinfo.value.code == 1

    def test_cli_malformed_trace_exits_nonzero(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text("nope\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(trace)])
        assert excinfo.value.code == 1


class TestMultiTrace:
    def _write(self, path, events):
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")

    def test_report_merges_several_files(self, tmp_path):
        self._write(tmp_path / "a.jsonl", [_span("proc", 1.0, span_id=1)])
        self._write(tmp_path / "b.jsonl", [_span("proc", 2.0, span_id=1)])
        text = report([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])
        assert "proc" in text
        assert "    2" in text  # count column folds both files

    def test_report_accepts_a_glob(self, tmp_path):
        self._write(tmp_path / "w-1.jsonl", [_span("proc", 1.0)])
        self._write(tmp_path / "w-2.jsonl", [_span("other", 1.0)])
        text = report(str(tmp_path / "w-*.jsonl"))
        assert "proc" in text and "other" in text

    def test_unmatched_glob_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no trace files match"):
            expand_traces([str(tmp_path / "nope-*.jsonl")])

    def test_literal_path_passes_through_unmatched(self, tmp_path):
        missing = str(tmp_path / "absent.jsonl")
        assert expand_traces([missing]) == [missing]

    def test_cli_accepts_multiple_traces(self, tmp_path, capsys):
        self._write(tmp_path / "a.jsonl", [_span("proc", 1.0)])
        self._write(tmp_path / "b.jsonl", [_span("proc", 1.0)])
        code = main(
            ["report", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        )
        assert code == 0
        assert "proc" in capsys.readouterr().out


class TestServeSection:
    def test_root_span_serve_counters_roll_up(self):
        child = _span("inner", 0.5, span_id=2, counters={"serve_cache_hits": 3})
        child["parent_id"] = 1
        events = [
            _span(
                "outer",
                1.0,
                span_id=1,
                counters={
                    "serve_cache_hits": 3,  # includes the child's delta
                    "serve_cache_misses": 1,
                    "artifact_hits": 2,
                    "sat_calls": 9,  # not a serve counter
                },
            ),
            child,
        ]
        aggs, serve_totals = fold_events(events)
        assert serve_totals == {
            "serve_cache_hits": 3,
            "serve_cache_misses": 1,
            "artifact_hits": 2,
        }
        text = render(aggs, serve_totals=serve_totals)
        assert "serve:" in text
        assert "cache hit rate" in text and "75.0%" in text

    def test_no_serve_counters_no_section(self):
        aggs, serve_totals = fold_events([_span("a", 1.0)])
        assert serve_totals == {}
        assert "serve:" not in render(aggs, serve_totals=serve_totals)

class TestLenientParsing:
    """Truncated traces (killed workers) degrade gracefully in the CLI."""

    def test_report_cli_skips_truncated_trailing_line(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w") as handle:
            handle.write(json.dumps(_span("proc", 0.5)) + "\n")
            handle.write('{"event": "span", "name": "tru')  # mid-write kill
        assert main(["report", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "proc" in captured.out
        assert "warning" in captured.err

    def test_critical_path_cli_skips_truncated_trailing_line(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w") as handle:
            handle.write(json.dumps(_span("proc", 0.5, span_id=7)) + "\n")
            handle.write('{"truncated')
        assert main(["critical-path", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "proc" in captured.out
        assert "warning" in captured.err

    def test_strict_api_still_raises(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w") as handle:
            handle.write(json.dumps(_span("proc", 0.5)) + "\n")
            handle.write('{"truncated')
        with pytest.raises(ValueError):
            report(str(trace))
