"""Critical-path tree building, self-time attribution, and rendering."""

import json

import pytest

from repro.obs.critical_path import (
    build_tree,
    critical_path,
    dominant_chain,
    render,
    self_time_by_name,
)


def _span(name, elapsed, span_id, parent_id=None, worker_pid=None):
    event = {
        "event": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "elapsed_s": elapsed,
        "status": "ok",
    }
    if worker_pid is not None:
        event["attrs"] = {"worker_pid": worker_pid}
    return event


def _tree_events():
    # root(1.0) -> fast(0.2), slow(0.7) -> leaf(0.3)
    return [
        _span("root", 1.0, span_id=1),
        _span("fast", 0.2, span_id=2, parent_id=1),
        _span("slow", 0.7, span_id=3, parent_id=1),
        _span("leaf", 0.3, span_id=4, parent_id=3),
    ]


class TestBuildTree:
    def test_children_attach_to_parents(self):
        roots = build_tree(_tree_events())
        assert len(roots) == 1
        root = roots[0]
        assert {c.name for c in root.children} == {"fast", "slow"}

    def test_self_time_subtracts_direct_children(self):
        roots = build_tree(_tree_events())
        root = roots[0]
        assert root.self_s == pytest.approx(0.1)  # 1.0 - (0.2 + 0.7)
        slow = next(c for c in root.children if c.name == "slow")
        assert slow.self_s == pytest.approx(0.4)

    def test_self_time_clamped_nonnegative(self):
        roots = build_tree(
            [
                _span("root", 0.1, span_id=1),
                _span("child", 0.5, span_id=2, parent_id=1),  # timer skew
            ]
        )
        assert roots[0].self_s == 0.0

    def test_same_span_ids_in_different_workers_do_not_collide(self):
        events = [
            _span("a", 1.0, span_id=1, worker_pid=100),
            _span("b", 2.0, span_id=1, worker_pid=200),
        ]
        roots = build_tree(events)
        assert {r.name for r in roots} == {"a", "b"}

    def test_orphan_parent_id_becomes_a_root(self):
        roots = build_tree([_span("lone", 1.0, span_id=5, parent_id=99)])
        assert [r.name for r in roots] == ["lone"]


class TestDominantChain:
    def test_follows_slowest_child(self):
        chain = dominant_chain(build_tree(_tree_events()))
        assert [n.name for n in chain] == ["root", "slow", "leaf"]

    def test_empty(self):
        assert dominant_chain([]) == []


class TestSelfTime:
    def test_aggregates_by_name(self):
        totals = self_time_by_name(build_tree(_tree_events()))
        assert totals["root"][0] == pytest.approx(0.1)
        assert totals["slow"][0] == pytest.approx(0.4)
        assert totals["leaf"] == (pytest.approx(0.3), 1)


class TestRender:
    def test_report_sections(self):
        text = render(build_tree(_tree_events()))
        assert "dominant chain" in text
        assert "root" in text and "slow" in text and "leaf" in text
        assert "self time by span name" in text

    def test_empty_trace(self):
        assert "no span events" in render([])


class TestCriticalPathFiles:
    def test_multiple_files_keep_span_ids_apart(self, tmp_path):
        for index, name in enumerate(("first", "second")):
            path = tmp_path / f"{name}.jsonl"
            with open(path, "w") as handle:
                handle.write(
                    json.dumps(_span(name, 1.0 + index, span_id=1)) + "\n"
                )
        text = critical_path(
            [str(tmp_path / "first.jsonl"), str(tmp_path / "second.jsonl")]
        )
        # Identical span_id=1 in both files: both must survive as roots,
        # with the slower one dominating.
        assert "second" in text
        assert "n=1" in text

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.obs.report import main

        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            for event in _tree_events():
                handle.write(json.dumps(event) + "\n")
        assert main(["critical-path", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dominant chain" in out
