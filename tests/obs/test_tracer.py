"""The span tracer: disabled no-op, JSONL emission, nesting, provenance."""

import io
import json
import os
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.analysis import STATS, nonempty_pl, nonempty_pl_nr_sat
from repro.analysis.equivalence import equivalent_pl
from repro.obs import _tracer
from repro.reductions.sat_to_sws import clauses_from_tuples, cnf_to_sws
from repro.workloads.random_sws import random_pl_sws
from repro.workloads.scaling import pl_counter_sws, random_3cnf


def _events(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines() if line]


def _sample_services():
    return [random_pl_sws(seed, n_states=3, n_variables=2) for seed in range(4)]


class TestDisabledIsNoop:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_span_returns_shared_noop(self):
        assert obs.span("x") is obs.NOOP_SPAN
        assert obs.span("y", attr=1) is obs.NOOP_SPAN

    def test_noop_span_supports_the_span_api(self):
        with obs.span("x", a=1) as sp:
            assert sp.set(b=2) is sp
        assert obs.current_span() is None

    def test_answers_identical_with_and_without_tracing(self):
        """Tracing (on or off) never changes a decision procedure's answer."""
        services = _sample_services()
        plain = [nonempty_pl(sws) for sws in services]
        assert all(answer.provenance is None for answer in plain)

        obs.configure(stream=io.StringIO())
        try:
            traced_answers = [nonempty_pl(sws) for sws in services]
        finally:
            obs.configure(enabled=False)

        for untraced, traced in zip(plain, traced_answers):
            # provenance is compare=False, so Answer equality still holds.
            assert untraced == traced
            assert untraced.witness == traced.witness
            assert traced.provenance is not None

    def test_disabled_overhead_is_negligible(self):
        """The wrapper costs one flag check next to the real work."""
        services = _sample_services()
        inner = nonempty_pl.__wrapped__

        def best_of(func, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                for sws in services:
                    func(sws)
                best = min(best, time.perf_counter() - t0)
            return best

        best_of(inner)  # warm caches before timing either side
        t_plain = best_of(inner)
        t_wrapped = best_of(nonempty_pl)
        # Very generous bound — the analyses are ms-scale, the flag check
        # is ns-scale; this only fails if the wrapper does real work.
        assert t_wrapped <= t_plain * 2 + 0.05

    def test_traced_preserves_function_metadata(self):
        assert nonempty_pl.__name__ == "nonempty_pl"
        assert nonempty_pl.__wrapped__ is not nonempty_pl
        assert "PL" in (nonempty_pl.__doc__ or "")


class TestEnabledEmission:
    def test_jsonl_well_formed_for_real_procedures(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.configure(path=str(trace), mode="w")
        try:
            assert nonempty_pl(pl_counter_sws(3)).is_yes
            equivalent_pl(pl_counter_sws(2), pl_counter_sws(3))
            sws = cnf_to_sws(clauses_from_tuples(random_3cnf(0, 4, 8)))
            nonempty_pl_nr_sat(sws)
        finally:
            obs.configure(enabled=False)

        events = list(obs.iter_events(str(trace)))
        assert events, "trace is empty"
        required = {
            "event", "v", "span_id", "parent_id", "depth",
            "name", "t_wall", "elapsed_s", "status",
        }
        by_id = {}
        for event in events:
            assert required <= event.keys()
            assert event["event"] == "span"
            assert event["v"] == obs.TRACE_SCHEMA_VERSION
            assert event["span_id"] not in by_id, "span ids must be unique"
            by_id[event["span_id"]] = event

        roots = [e for e in events if e["parent_id"] is None]
        assert {e["name"] for e in roots} >= {
            "nonempty_pl", "equivalent_pl", "nonempty_pl_nr_sat",
        }
        for event in events:
            if event["parent_id"] is not None:
                parent = by_id[event["parent_id"]]
                assert event["depth"] == parent["depth"] + 1
            else:
                assert event["depth"] == 0

        # Each procedure's root span carries non-zero counter deltas.
        for root in roots:
            assert root["counters"], root["name"]
        afa_root = next(e for e in roots if e["name"] == "nonempty_pl")
        assert afa_root["counters"]["vectors_explored"] > 0
        sat_root = next(e for e in roots if e["name"] == "nonempty_pl_nr_sat")
        assert sat_root["counters"]["sat_calls"] > 0

    def test_subject_and_verdict_attrs(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            answer = nonempty_pl(pl_counter_sws(2))
        finally:
            obs.configure(enabled=False)
        root = next(e for e in _events(buf) if e["name"] == "nonempty_pl")
        assert root["attrs"]["subject"] == pl_counter_sws(2).name
        assert root["attrs"]["verdict"] == answer.verdict.value
        assert root["attrs"]["kind"] == "analysis"

    def test_children_search_spans_nest_under_the_procedure(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            nonempty_pl(pl_counter_sws(3))
        finally:
            obs.configure(enabled=False)
        events = _events(buf)
        root = next(e for e in events if e["name"] == "nonempty_pl")
        children = [e for e in events if e["parent_id"] == root["span_id"]]
        assert any(e["name"] == "afa.search_witness" for e in children)


class TestProvenance:
    def test_answer_carries_provenance_when_enabled(self):
        obs.configure(stream=io.StringIO())
        try:
            answer = nonempty_pl(pl_counter_sws(3))
        finally:
            obs.configure(enabled=False)
        prov = answer.provenance
        assert prov is not None
        assert prov.name == "nonempty_pl"
        assert prov.elapsed_s > 0
        assert prov.counters["vectors_explored"] > 0
        as_dict = prov.as_dict()
        assert json.loads(json.dumps(as_dict)) == as_dict

    def test_provenance_counters_match_the_emitted_span(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            answer = nonempty_pl(pl_counter_sws(2))
        finally:
            obs.configure(enabled=False)
        root = next(e for e in _events(buf) if e["name"] == "nonempty_pl")
        assert answer.provenance.span_id == root["span_id"]
        assert dict(answer.provenance.counters) == root["counters"]


class TestNestingAndCounters:
    def test_nested_spans_scope_counter_deltas(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            with obs.span("outer") as outer:
                STATS.sat_calls += 3
                with obs.span("inner") as inner:
                    STATS.dpll_decisions += 2
        finally:
            obs.configure(enabled=False)
        events = _events(buf)
        # Children emit before parents.
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner_ev, outer_ev = events
        assert inner_ev["parent_id"] == outer.span_id
        assert inner_ev["depth"] == 1 and outer_ev["depth"] == 0
        assert inner_ev["counters"] == {"dpll_decisions": 2}
        # The outer delta includes the inner's work — nothing was reset.
        assert outer_ev["counters"] == {"sat_calls": 3, "dpll_decisions": 2}
        assert inner.counters == {"dpll_decisions": 2}

    def test_sibling_spans_do_not_interfere(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            with obs.span("a"):
                STATS.sat_calls += 1
            with obs.span("b"):
                STATS.dpll_decisions += 5
        finally:
            obs.configure(enabled=False)
        a_ev, b_ev = _events(buf)
        assert a_ev["counters"] == {"sat_calls": 1}
        assert b_ev["counters"] == {"dpll_decisions": 5}

    def test_current_span_tracks_the_stack(self):
        obs.configure(stream=io.StringIO())
        try:
            assert obs.current_span() is None
            with obs.span("outer") as outer:
                assert obs.current_span() is outer
                with obs.span("inner") as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None
        finally:
            obs.configure(enabled=False)

    def test_span_attrs_via_set(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            with obs.span("s", static=1) as sp:
                sp.set(dynamic="two")
        finally:
            obs.configure(enabled=False)
        (event,) = _events(buf)
        assert event["attrs"] == {"static": 1, "dynamic": "two"}


class TestExceptions:
    def test_raising_span_emits_error_event_and_unwinds(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                with obs.span("doomed"):
                    STATS.sat_calls += 7
                    raise RuntimeError("boom")
            assert obs.current_span() is None
        finally:
            obs.configure(enabled=False)
        (event,) = _events(buf)
        assert event["status"] == "error"
        assert event["error"] == "RuntimeError: boom"
        # Partial work before the raise is still attributed.
        assert event["counters"] == {"sat_calls": 7}

    def test_inner_error_does_not_corrupt_outer_span(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            with obs.span("outer") as outer:
                try:
                    with obs.span("inner"):
                        raise ValueError("inner failure")
                except ValueError:
                    pass
                assert obs.current_span() is outer
        finally:
            obs.configure(enabled=False)
        inner_ev, outer_ev = _events(buf)
        assert inner_ev["status"] == "error"
        assert outer_ev["status"] == "ok"
        assert inner_ev["parent_id"] == outer_ev["span_id"]

    def test_traced_function_that_raises_still_emits(self):
        @obs.traced("exploder", kind="test")
        def exploder():
            raise KeyError("missing")

        buf = io.StringIO()
        obs.configure(stream=buf)
        try:
            with pytest.raises(KeyError):
                exploder()
        finally:
            obs.configure(enabled=False)
        (event,) = _events(buf)
        assert event["name"] == "exploder"
        assert event["status"] == "error"
        assert event["error"].startswith("KeyError")


class TestConfigure:
    def test_path_and_stream_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            obs.configure(path="x.jsonl", stream=io.StringIO())

    def test_enable_without_sink_raises(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="needs a sink"):
            obs.configure(enabled=True)

    def test_disable_then_reconfigure(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(path=str(trace), mode="w")
        assert obs.is_enabled()
        obs.configure(enabled=False)
        assert not obs.is_enabled()
        with obs.span("ignored"):
            pass
        assert trace.read_text() == ""

    def test_mode_w_truncates(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"stale": true}\n')
        obs.configure(path=str(trace), mode="w")
        try:
            with obs.span("fresh"):
                pass
        finally:
            obs.configure(enabled=False)
        events = list(obs.iter_events(str(trace)))
        assert [e["name"] for e in events] == ["fresh"]

    def test_iter_events_reports_malformed_line(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"event": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(obs.iter_events(str(trace)))


class TestEnvVarActivation:
    def test_repro_trace_env_enables_at_import(self, tmp_path):
        """REPRO_TRACE=path is the zero-code acceptance path."""
        trace = tmp_path / "env.jsonl"
        code = (
            "from repro.analysis import nonempty_pl\n"
            "from repro.workloads.scaling import pl_counter_sws\n"
            "answer = nonempty_pl(pl_counter_sws(2))\n"
            "assert answer.provenance is not None\n"
            "assert answer.provenance.counters['vectors_explored'] > 0\n"
        )
        env = dict(os.environ)
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        env[obs.TRACE_ENV_VAR] = str(trace)
        subprocess.run(
            [sys.executable, "-c", code], env=env, check=True, timeout=120
        )
        events = list(obs.iter_events(str(trace)))
        assert any(e["name"] == "nonempty_pl" for e in events)


class TestStatsDeltaIntegration:
    def test_tracer_and_stats_delta_agree(self):
        from repro.analysis.stats import stats_delta

        obs.configure(stream=io.StringIO())
        try:
            with stats_delta() as outer:
                answer = nonempty_pl(pl_counter_sws(3))
        finally:
            obs.configure(enabled=False)
        assert (
            outer["vectors_explored"]
            == answer.provenance.counters["vectors_explored"]
        )
