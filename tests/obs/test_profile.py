"""The sampling profiler: sampler, collapsed I/O, spools, flamegraph."""

import os
import threading
import time

import pytest

from repro.obs import profile


@pytest.fixture(autouse=True)
def _profiler_off():
    """Never leak a running sampler or absorbed spools into other tests."""
    yield
    profile.configure(enabled=False)
    profile._sampler = None
    profile._path = None
    profile._sources.clear()


def _busy(stop: threading.Event) -> None:
    x = 0
    while not stop.is_set():
        x += 1


class TestSampler:
    def test_collects_stacks_from_running_threads(self):
        stop = threading.Event()
        thread = threading.Thread(target=_busy, args=(stop,), daemon=True)
        thread.start()
        sampler = profile.Sampler(hz=400).start()
        time.sleep(0.25)
        sampler.stop()
        stop.set()
        thread.join()
        samples = sampler.snapshot()
        assert samples
        assert sampler.sample_count() == sum(samples.values())
        flat = [name for stack in samples for name in stack]
        assert any("_busy" in name for name in flat)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            profile.Sampler(hz=0)

    def test_profiling_context_writes_collapsed(self, tmp_path):
        out = tmp_path / "run.collapsed"
        stop = threading.Event()
        thread = threading.Thread(target=_busy, args=(stop,), daemon=True)
        thread.start()
        with profile.profiling(str(out), hz=400):
            time.sleep(0.2)
        stop.set()
        thread.join()
        samples = profile.parse_collapsed(out.read_text(), str(out))
        assert sum(samples.values()) >= 1


class TestCollapsedIO:
    def test_round_trip(self):
        samples = {("a", "b", "c"): 5, ("a", "d"): 2}
        text = profile.render_collapsed(samples)
        assert "a;b;c 5" in text
        assert profile.parse_collapsed(text) == samples

    def test_parse_rejects_countless_line(self):
        with pytest.raises(ValueError, match="bad.collapsed:2"):
            profile.parse_collapsed("a;b 3\nnope\n", "bad.collapsed")

    def test_merge_samples_adds(self):
        merged = profile.merge_samples([{("a",): 1}, {("a",): 2, ("b",): 3}])
        assert merged == {("a",): 3, ("b",): 3}


class TestModuleState:
    def test_disabled_by_default(self):
        assert not profile.is_enabled()
        assert profile.write_collapsed() is None

    def test_configure_and_write(self, tmp_path):
        out = tmp_path / "proc.collapsed"
        profile.configure(path=str(out), hz=500)
        assert profile.is_enabled()
        deadline = time.monotonic() + 5.0
        while profile.sample_count() == 0 and time.monotonic() < deadline:
            sum(i * i for i in range(50_000))
        profile.configure(enabled=False)
        assert not profile.is_enabled()
        assert profile.write_collapsed() == str(out)
        assert profile.parse_collapsed(out.read_text())

    def test_absorb_spool_is_replace_wise(self, tmp_path):
        spool = tmp_path / "profile-123.collapsed"
        spool.write_text("a;b 4\n")
        assert profile.absorb_spool(str(spool), source="123") == 4
        # Cumulative rewrite: absorbing again must not double-count.
        spool.write_text("a;b 6\n")
        assert profile.absorb_spool(str(spool), source="123") == 6
        assert profile.merged_samples() == {("a", "b"): 6}

    def test_absorb_skips_unreadable_or_partial(self, tmp_path):
        assert profile.absorb_spool(str(tmp_path / "missing"), "1") == 0
        partial = tmp_path / "partial.collapsed"
        partial.write_text("a;b 4\nc;d")  # mid-write truncation
        assert profile.absorb_spool(str(partial), "2") == 0
        assert profile.merged_samples() == {}

    def test_reset_after_fork_disables_without_spool(self, tmp_path):
        profile.configure(path=str(tmp_path / "p.collapsed"), hz=300)
        profile.reset_after_fork(None)
        assert not profile.is_enabled()
        assert profile.write_collapsed() is None

    def test_reset_after_fork_rehomes_to_spool(self, tmp_path):
        profile.configure(path=str(tmp_path / "parent.collapsed"), hz=300)
        spool = tmp_path / "profile-9.collapsed"
        profile.reset_after_fork(str(spool))
        assert profile.is_enabled()
        assert profile._sampler.hz == 300
        assert profile.write_collapsed() == str(spool)


class TestFlamegraph:
    def test_html_is_self_contained(self):
        samples = {("main", "solve", "search"): 10, ("main", "io"): 2}
        html = profile.flamegraph_html(samples, title="t <1>")
        assert html.startswith("<!doctype html>")
        assert "t &lt;1&gt;" in html
        assert "12 samples" in html
        assert html.count('class="frame"') == 5  # root + 4 frames
        assert "http" not in html  # no external assets
        assert "data-total=\"12\"" in html

    def test_empty_samples_render_without_raising(self):
        html = profile.flamegraph_html({})
        assert html.startswith("<!doctype html>")
