"""Tracer tests must never leak an enabled sink into other tests."""

import pytest

from repro import obs
from repro.obs import _tracer


@pytest.fixture(autouse=True)
def _tracing_off():
    """Force tracing off before and after every test in this package."""
    if _tracer.ENABLED:
        obs.configure(enabled=False)
    yield
    if _tracer.ENABLED:
        obs.configure(enabled=False)
    # A test that crashed inside a span would leave the thread-local
    # stack populated; clear it so later tests see a clean tracer.
    stack = getattr(_tracer._local, "stack", None)
    if stack:
        stack.clear()
