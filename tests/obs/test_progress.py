"""Search-progress telemetry: disabled path, events, trips, summaries."""

import io
import json

import pytest

from repro import metrics, obs
from repro.analysis import nonempty_pl, nonempty_pl_nr_sat
from repro.guard import Budget, _governor, checkpoint, checkpoint_callable, inject
from repro.obs import progress
from repro.reductions.sat_to_sws import clauses_from_tuples, cnf_to_sws
from repro.workloads.scaling import pl_counter_sws, random_3cnf


@pytest.fixture(autouse=True)
def _progress_off():
    """Never leak an enabled tracker (or injected fault) into other tests."""
    progress.configure(enabled=False)
    yield
    progress.configure(enabled=False)
    inject.remove()


def _events(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines() if line]


def _progress_events(buf: io.StringIO) -> list[dict]:
    return [e for e in _events(buf) if e.get("event") == "progress"]


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not progress.is_enabled()
        assert _governor._PROGRESS is None

    def test_checkpoint_callable_stays_shared_noop(self):
        assert checkpoint_callable("x") is _governor._noop_checkpoint

    def test_enabling_switches_to_live_closure(self):
        progress.configure(enabled=True)
        assert checkpoint_callable("x") is not _governor._noop_checkpoint

    def test_summary_empty_while_disabled(self):
        assert progress.summary() == {}
        assert progress.bench_context() is None


class TestEvents:
    def test_periodic_events_with_monotone_steps(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        progress.configure(enabled=True, interval_s=0.0001)
        try:
            ckpt = checkpoint_callable("unit.search")
            queue = list(range(7))
            seen = set()
            for n in range(1, 2000):
                seen.add(n)
                ckpt(n, queue, seen, 3)
        finally:
            obs.configure(enabled=False)
        events = _progress_events(buf)
        assert events, "expected at least one progress event"
        steps = [e["steps"] for e in events]
        assert steps == sorted(steps)
        last = events[-1]
        assert last["site"] == "unit.search"
        assert last["v"] == progress.PROGRESS_SCHEMA_VERSION
        assert last["frontier"] == 7
        assert last["visited"] <= 1999
        assert last["depth"] == 3
        assert last["steps_per_s"] >= 0

    def test_visited_counts_monotone_on_real_solve(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        progress.configure(enabled=True, interval_s=1e-9)
        try:
            answer = nonempty_pl(pl_counter_sws(8))
        finally:
            obs.configure(enabled=False)
        assert answer.verdict.name == "YES"
        visited = [
            e["visited"]
            for e in _progress_events(buf)
            if "visited" in e and e["site"].startswith("afa.")
        ]
        assert len(visited) >= 1
        assert all(a <= b for a, b in zip(visited, visited[1:]))

    def test_headroom_fractions_from_ambient_guard(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        progress.configure(enabled=True, interval_s=1e-9)
        try:
            guard = _governor.Guard(budget=Budget(step_budget=10_000))
            with guard.activate():
                for n in range(50):
                    checkpoint("unit.headroom", n=100)
        finally:
            obs.configure(enabled=False)
        events = _progress_events(buf)
        assert events
        fractions = [e["headroom"]["steps"] for e in events if "headroom" in e]
        assert fractions == sorted(fractions, reverse=True)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_gauges_refresh(self):
        metrics.configure(enabled=True)
        progress.configure(enabled=True, interval_s=1e-9)
        try:
            ckpt = checkpoint_callable("unit.gauges")
            # ckpt takes the *cumulative* count.  The first note creates
            # the site state; emission (and the gauge refresh) happens on
            # a later note once the interval has elapsed.
            ckpt(200, list(range(5)))
            import time

            time.sleep(0.002)
            ckpt(256, list(range(5)))
            snap = metrics.REGISTRY.snapshot()
            assert snap["gauges"]["progress.steps{site=unit.gauges}"] == 256
            assert snap["gauges"]["progress.frontier{site=unit.gauges}"] == 5
        finally:
            metrics.configure(enabled=False)


class TestTrips:
    def test_injected_trip_event_matches_answer_trip(self):
        """The final progress event of a tripped solve mirrors its Trip."""
        buf = io.StringIO()
        obs.configure(stream=buf)
        progress.configure(enabled=True, interval_s=1e-9)
        try:
            with inject.injected("afa.search_witness", at=1, limit="steps") as plan:
                answer = nonempty_pl(pl_counter_sws(6))
        finally:
            obs.configure(enabled=False)
        assert plan.fired
        assert answer.verdict.name == "UNKNOWN"
        trip = answer.trip
        assert trip is not None and trip.injected
        tripped = [e for e in _progress_events(buf) if e.get("tripped")]
        assert tripped, "expected a trip-consistent final progress event"
        last = tripped[-1]
        assert last["site"] == trip.site
        assert last["steps"] == trip.steps
        assert last["tripped"] == trip.limit
        assert last["injected"] is True
        summary = progress.summary()
        assert summary[trip.site]["tripped"] == trip.limit
        assert summary[trip.site]["steps"] == trip.steps

    def test_real_budget_trip_is_consistent_too(self):
        buf = io.StringIO()
        obs.configure(stream=buf)
        progress.configure(enabled=True, interval_s=1e-9)
        try:
            answer = nonempty_pl(pl_counter_sws(12), guard=Budget(step_budget=600))
        finally:
            obs.configure(enabled=False)
        assert answer.verdict.name == "UNKNOWN"
        trip = answer.trip
        tripped = [e for e in _progress_events(buf) if e.get("tripped")]
        assert tripped
        assert tripped[-1]["steps"] == trip.steps
        assert tripped[-1]["site"] == trip.site
        assert "injected" not in tripped[-1]


class TestSummaryAndBenchContext:
    def test_summary_folds_sites(self):
        progress.configure(enabled=True, interval_s=1e9)  # no emission
        checkpoint("unit.a", n=5, frontier=3, visited=10, depth=2)
        checkpoint("unit.a", n=5, frontier=1)
        checkpoint("unit.b", n=7)
        summary = progress.summary()
        assert summary["unit.a"]["steps"] == 10
        assert summary["unit.a"]["final_frontier"] == 1
        assert summary["unit.a"]["peak_frontier"] == 3
        assert summary["unit.a"]["peak_depth"] == 2
        assert summary["unit.a"]["visited"] == 10
        assert summary["unit.b"]["steps"] == 7

    def test_bench_context_totals(self):
        progress.configure(enabled=True, interval_s=1e9)
        checkpoint("unit.a", n=5, frontier=3, depth=4)
        context = progress.bench_context()
        assert context["steps"] == 5
        assert context["peak_frontier"] == 3
        assert context["peak_depth"] == 4
        assert "unit.a" in context["sites"]

    def test_reset_drops_state_keeps_interval(self):
        progress.configure(enabled=True, interval_s=0.125)
        checkpoint("unit.a", n=5)
        progress.reset()
        assert progress.is_enabled()
        assert progress.summary() == {}
        assert progress._TRACKER.interval_s == 0.125

    def test_depth_iteration_sites_report_depth(self):
        """Analysis loops with a session-length bound stamp it as depth."""
        buf = io.StringIO()
        obs.configure(stream=buf)
        progress.configure(enabled=True, interval_s=1e-9)
        try:
            sws = cnf_to_sws(clauses_from_tuples(random_3cnf(0, 5, 10)))
            nonempty_pl_nr_sat(sws)
        finally:
            obs.configure(enabled=False)
        depths = [
            e["depth"]
            for e in _progress_events(buf)
            if e["site"] == "nonempty_pl_nr_sat" and "depth" in e
        ]
        assert depths
        assert depths == sorted(depths)
