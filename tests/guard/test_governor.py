"""Unit tests for the resource governor (Budget, Guard, checkpoints)."""

import time

import pytest

from repro.errors import BudgetExceededError
from repro.guard import (
    Budget,
    CancelToken,
    Guard,
    GuardTrip,
    checkpoint,
    checkpoint_callable,
    current_guard,
    ensure_guard,
    guarded,
)
from repro.guard._governor import SAMPLE_EVERY, _noop_checkpoint


class TestBudget:
    def test_unlimited_by_default(self):
        assert Budget().unlimited

    def test_any_limit_clears_unlimited(self):
        assert not Budget(step_budget=10).unlimited
        assert not Budget(deadline_s=1.0).unlimited
        assert not Budget(memory_ceiling_mb=100.0).unlimited

    def test_limit_value_lookup(self):
        budget = Budget(deadline_s=2.0, step_budget=7, memory_ceiling_mb=64.0)
        assert budget.limit_value("deadline") == 2.0
        assert budget.limit_value("steps") == 7
        assert budget.limit_value("memory") == 64.0
        assert budget.limit_value("cancelled") is None


class TestCancelToken:
    def test_cancel_is_idempotent_and_visible(self):
        token = CancelToken()
        assert not token.cancelled()
        token.cancel()
        token.cancel()
        assert token.cancelled()


class TestGuardTrips:
    def test_step_budget_trips_with_partial_progress(self):
        guard = Guard(step_budget=3)
        for _ in range(3):
            guard.checkpoint("unit.test")
        with pytest.raises(GuardTrip) as info:
            guard.checkpoint("unit.test", frontier=17)
        trip = info.value.trip
        assert trip.limit == "steps"
        assert trip.site == "unit.test"
        assert trip.steps == 4
        assert trip.frontier == 17
        assert trip.budget_value == 3
        assert guard.tripped is trip
        assert guard.steps == 4

    def test_guardtrip_is_a_budget_exceeded_error(self):
        guard = Guard(step_budget=0)
        with pytest.raises(BudgetExceededError) as info:
            guard.checkpoint("unit.test")
        assert info.value.budget == 0
        assert info.value.limit == "steps"
        assert "[limit=steps]" in str(info.value)
        assert "unit.test" in str(info.value)

    def test_deadline_trips_on_sampled_call(self):
        guard = Guard(deadline_s=0.0)
        guard.start()
        time.sleep(0.005)
        with pytest.raises(GuardTrip) as info:
            guard.checkpoint("unit.test", n=2)  # batched calls always sample
        assert info.value.trip.limit == "deadline"

    def test_deadline_is_counter_sampled_for_fine_calls(self):
        guard = Guard(deadline_s=0.0)
        guard.start()
        time.sleep(0.005)
        # Fine-grained (n=1) calls skip the clock until the sampling call.
        for _ in range(SAMPLE_EVERY - 1):
            guard.checkpoint("unit.test")
        with pytest.raises(GuardTrip):
            guard.checkpoint("unit.test")

    def test_memory_ceiling_trips(self):
        # Any live interpreter is far above a fraction of a megabyte.
        guard = Guard(memory_ceiling_mb=0.001)
        with pytest.raises(GuardTrip) as info:
            guard.checkpoint("unit.test", n=2)
        assert info.value.trip.limit == "memory"

    def test_cancellation_trips_on_every_call(self):
        token = CancelToken()
        guard = Guard(cancel_token=token)
        guard.checkpoint("unit.test")
        token.cancel()
        with pytest.raises(GuardTrip) as info:
            guard.checkpoint("unit.test")
        assert info.value.trip.limit == "cancelled"
        assert "cancelled" in str(info.value)

    def test_describe_names_the_limit_and_progress(self):
        guard = Guard(step_budget=1)
        guard.checkpoint("x")
        with pytest.raises(GuardTrip) as info:
            guard.checkpoint("x")
        text = info.value.trip.describe()
        assert "step budget" in text
        assert "after 2 steps" in text

    def test_budget_and_individual_limits_conflict(self):
        with pytest.raises(ValueError):
            Guard(step_budget=1, budget=Budget(step_budget=1))


class TestEnsureGuard:
    def test_guard_passes_through(self):
        guard = Guard(step_budget=5)
        assert ensure_guard(guard) is guard

    def test_budget_wraps(self):
        budget = Budget(deadline_s=1.0)
        assert ensure_guard(budget).budget is budget

    def test_legacy_int_is_a_step_budget(self):
        assert ensure_guard(42).budget.step_budget == 42

    def test_none_is_unlimited(self):
        assert ensure_guard(None).budget.unlimited

    def test_bool_and_junk_rejected(self):
        with pytest.raises(TypeError):
            ensure_guard(True)
        with pytest.raises(TypeError):
            ensure_guard("12")


class TestAmbientActivation:
    def test_activation_is_scoped(self):
        guard = Guard(step_budget=5)
        assert current_guard() is None
        with guard.activate():
            assert current_guard() is guard
            checkpoint("unit.test")
        assert current_guard() is None
        assert guard.steps == 1

    def test_module_checkpoint_without_guard_is_noop(self):
        checkpoint("unit.test")  # must not raise

    def test_stacked_guards_all_consulted(self):
        outer = Guard(step_budget=2)
        inner = Guard(step_budget=100)
        with outer.activate(), inner.activate():
            checkpoint("unit.test")
            checkpoint("unit.test")
            with pytest.raises(GuardTrip) as info:
                checkpoint("unit.test")
        assert info.value.trip.budget_value == 2
        assert inner.tripped is None

    def test_checkpoint_callable_noop_when_inactive(self):
        assert checkpoint_callable("unit.test") is _noop_checkpoint

    def test_checkpoint_callable_counts_deltas(self):
        guard = Guard(step_budget=1000)
        with guard.activate():
            ckpt = checkpoint_callable("unit.test")
            ckpt(0, [])
            ckpt(256, [1, 2])
            ckpt(512, [])
        assert guard.steps == 512


class TestGuardedDecorator:
    def test_trip_converts_to_unknown_answer(self):
        @guarded()
        def search():
            while True:
                checkpoint("unit.search")

        answer = search(guard=10)
        assert answer.is_unknown
        assert answer.trip is not None
        assert answer.trip.limit == "steps"
        assert "unit.search" in answer.detail

    def test_untripped_guard_is_transparent(self):
        @guarded()
        def fine():
            checkpoint("unit.fine")
            return "done"

        assert fine() == "done"
        assert fine(guard=Guard(step_budget=100)) == "done"

    def test_custom_on_trip_factory(self):
        @guarded(on_trip=lambda error: ("tripped", error.trip.limit))
        def search():
            while True:
                checkpoint("unit.search")

        assert search(guard=Budget(step_budget=3)) == ("tripped", "steps")

    def test_ambient_guard_converts_at_the_boundary(self):
        @guarded()
        def search():
            while True:
                checkpoint("unit.search")

        with Guard(step_budget=5).activate():
            answer = search()
        assert answer.is_unknown
