"""Deterministic fault injection: the Nth checkpoint of a named span."""

import pytest

from repro.guard import GuardTrip, checkpoint
from repro.guard.inject import FaultPlan, injected, install, remove


class TestFaultPlan:
    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("x", limit="gasoline")

    def test_zero_based_at_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("x", at=0)

    def test_fires_exactly_at_the_nth_checkpoint(self):
        plan = install(FaultPlan("unit.span", at=3))
        try:
            checkpoint("unit.span")
            checkpoint("unit.span")
            assert not plan.fired
            with pytest.raises(GuardTrip) as info:
                checkpoint("unit.span")
        finally:
            remove()
        assert plan.fired
        assert plan.calls == 3
        trip = info.value.trip
        assert trip.injected
        assert trip.limit == "steps"
        assert "[injected]" in trip.describe()

    def test_other_spans_pass_through(self):
        with injected("unit.span", at=1) as plan:
            checkpoint("unit.other")
            checkpoint("unit.unrelated")
        assert plan.calls == 0
        assert not plan.fired

    def test_keeps_firing_after_the_trigger(self):
        with injected("unit.span", at=1) as plan:
            with pytest.raises(GuardTrip):
                checkpoint("unit.span")
            with pytest.raises(GuardTrip):
                checkpoint("unit.span")
        assert plan.calls == 2

    def test_injection_is_deterministic(self):
        counts = []
        for _ in range(2):
            with injected("unit.span", at=2) as plan:
                fired_at = None
                for i in range(1, 6):
                    try:
                        checkpoint("unit.span")
                    except GuardTrip:
                        fired_at = i
                        break
                counts.append((fired_at, plan.calls))
        assert counts[0] == counts[1] == (2, 2)

    def test_context_manager_removes_the_hook(self):
        with injected("unit.span"):
            pass
        checkpoint("unit.span")  # must not raise

    def test_cancelled_limit_has_no_budget_value(self):
        with injected("unit.span", limit="cancelled"):
            with pytest.raises(GuardTrip) as info:
                checkpoint("unit.span")
        assert info.value.trip.budget_value is None
        assert info.value.budget is None
