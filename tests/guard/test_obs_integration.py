"""Guard trips inside obs spans: verdict=unknown attrs, not error events."""

import io
import json

import pytest

from repro import obs
from repro.analysis.nonemptiness import nonempty_pl
from repro.guard import Guard, GuardTrip, checkpoint
from repro.guard.inject import injected
from repro.workloads.scaling import pl_counter_sws


@pytest.fixture
def trace():
    buf = io.StringIO()
    obs.configure(stream=buf)
    try:
        yield buf
    finally:
        obs.configure(enabled=False)


def _spans(buf: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in buf.getvalue().splitlines()
        if json.loads(line).get("event") == "span"
    ]


class TestSpanAttributes:
    def test_boundary_span_records_unknown_and_tripped(self, trace):
        with injected("afa.search_witness", limit="deadline"):
            answer = nonempty_pl(pl_counter_sws(2))
        assert answer.is_unknown
        spans = {s["name"]: s for s in _spans(trace)}
        boundary = spans["nonempty_pl"]
        assert boundary["status"] == "ok"
        assert boundary["attrs"]["verdict"] == "unknown"
        assert boundary["attrs"]["tripped"] == "deadline"

    def test_trip_escaping_a_span_is_not_a_bare_error(self, trace):
        with pytest.raises(GuardTrip):
            with obs.span("inner.search"):
                with Guard(step_budget=0).activate():
                    checkpoint("inner.search")
        (span,) = _spans(trace)
        assert span["status"] == "ok"
        assert span["attrs"]["verdict"] == "unknown"
        assert span["attrs"]["tripped"] == "steps"

    def test_real_errors_still_recorded_as_errors(self, trace):
        with pytest.raises(ValueError):
            with obs.span("inner.broken"):
                raise ValueError("boom")
        (span,) = _spans(trace)
        assert span["status"] == "error"
        assert "tripped" not in span.get("attrs", {})

    def test_untripped_guard_leaves_attrs_alone(self, trace):
        answer = nonempty_pl(pl_counter_sws(2), guard=Guard(step_budget=10**9))
        assert answer.is_yes
        spans = {s["name"]: s for s in _spans(trace)}
        assert spans["nonempty_pl"]["attrs"]["verdict"] == "yes"
        assert "tripped" not in spans["nonempty_pl"]["attrs"]

    def test_report_aggregates_trips(self, trace):
        from repro.obs.report import aggregate, render

        with injected("afa.search_witness", limit="memory"):
            nonempty_pl(pl_counter_sws(2))
        events = [json.loads(line) for line in trace.getvalue().splitlines()]
        aggregates = aggregate(events)
        assert aggregates["nonempty_pl"].trips == {"memory": 1}
        text = render(aggregates)
        assert "guard trips:" in text
        assert "memory=1" in text
