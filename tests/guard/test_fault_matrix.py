"""Fault-injection matrix: every guarded span survives forced exhaustion.

The acceptance criterion of the robustness work: for every registered
checkpoint site, forcing a step/deadline/memory/cancellation trip at its
first checkpoint makes the enclosing procedure return an UNKNOWN-shaped
result — no crash, no hang.  Raising-only sites instead raise a
:class:`~repro.errors.BudgetExceededError` with ``budget`` populated.

The EXERCISERS table is asserted complete against the registry, so a new
checkpoint site cannot land without matrix coverage.
"""

import pytest

from repro.analysis.containment import contained_cq, contained_cq_nr, contained_pl
from repro.analysis.equivalence import (
    equivalent_cq,
    equivalent_cq_nr,
    equivalent_fo_bounded,
    equivalent_pl,
)
from repro.analysis.nonemptiness import (
    nonempty_cq,
    nonempty_cq_nr,
    nonempty_fo_bounded,
    nonempty_pl,
    nonempty_pl_nr_sat,
)
from repro.analysis.validation import validate, validate_cq_nr, validate_pl_nr_sat
from repro.analysis.verdict import Verdict
from repro.core.sws import SWS, SWSKind, SynthesisRule, TransitionRule
from repro.delta import Session
from repro.errors import BudgetExceededError
from repro.guard import GUARDED_SPANS, LIMITS
from repro.guard.inject import injected
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.rewriting import (
    View,
    certain_answers,
    equivalent_rewriting,
    maximally_contained_rewriting,
)
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery
from repro.mediator.bounded import compose_mdtb_pl
from repro.mediator.rewriting_based import compose_cq_nr
from repro.mediator.synthesis import compose_pl_prefix, compose_pl_regular
from repro.workloads.pl_services import HASH, union_word_service, word_service
from repro.workloads.scaling import cq_chain_sws, cq_diamond_sws, pl_counter_sws
from repro.workloads.travel import travel_service

ALPHA = ["a", "b"]

x, y, z = var("x"), var("y"), var("z")


def _pl_components():
    return {
        "X": word_service(["a", HASH], ALPHA, "X"),
        "Y": word_service(["b", HASH], ALPHA, "Y"),
    }


def _pl_goal():
    return union_word_service([["a", HASH, "b", HASH]], ALPHA, "seq")


def _emit_service(relation: str, name: str) -> SWS:
    from repro.core.sws import MSG
    from repro.workloads.random_sws import DEFAULT_CQ_SCHEMA, DEFAULT_PAYLOAD

    first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "copy")
    up = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "up"))
    emit = UnionQuery.of(
        ConjunctiveQuery(
            (x, z), [Atom(MSG, (x, y)), Atom(relation, (y, z))], (), f"e{relation}"
        )
    )
    return SWS(
        ("q0", "q1"),
        "q0",
        {"q0": TransitionRule([("q1", first)]), "q1": TransitionRule()},
        {"q0": SynthesisRule(up), "q1": SynthesisRule(emit)},
        kind=SWSKind.RELATIONAL,
        db_schema=DEFAULT_CQ_SCHEMA,
        input_schema=DEFAULT_PAYLOAD,
        output_arity=2,
        name=name,
    )


def _compose_cq_case():
    components = {"VR": _emit_service("R", "VR"), "VS": _emit_service("S", "VS")}
    return compose_cq_nr(_emit_service("R", "goal"), components)


def _delta_recheck_case():
    from repro.workloads.editing import flip_trace

    # The initial solve runs under the afa.* spans; the YES → NO edit
    # defeats witness replay, so the re-check enters the warm BFS whose
    # checkpoints carry the delta.recheck site.
    trace = flip_trace()
    session = Session(trace[0])
    session.check()
    session.edit(trace[1])
    return session.recheck().answer


#: span name -> zero-argument exerciser reaching that span's checkpoint
#: through a guarded (UNKNOWN-converting) procedure boundary.
EXERCISERS = {
    "afa.search_witness": lambda: nonempty_pl(pl_counter_sws(2)),
    "afa.difference_witness": lambda: equivalent_pl(
        pl_counter_sws(2), pl_counter_sws(2)
    ),
    "afa.reachable_vectors": lambda: compose_pl_regular(
        _pl_goal(), _pl_components()
    ),
    "nfa.determinize": lambda: compose_mdtb_pl(
        _pl_goal(), _pl_components(), invocation_bound=1
    ),
    "dfa.product": lambda: compose_mdtb_pl(
        _pl_goal(), _pl_components(), invocation_bound=1
    ),
    "regular_rewriting.rewrite": lambda: compose_pl_regular(
        _pl_goal(), _pl_components()
    ),
    "boolean_language_combination": lambda: compose_mdtb_pl(
        _pl_goal(), _pl_components(), invocation_bound=1
    ),
    "compose_mdtb_pl": lambda: compose_mdtb_pl(
        _pl_goal(), _pl_components(), invocation_bound=1
    ),
    "compose_pl_prefix": lambda: compose_pl_prefix(_pl_goal(), _pl_components()),
    "compose_cq_nr": _compose_cq_case,
    "delta.recheck": _delta_recheck_case,
    "contained_pl": lambda: contained_pl(pl_counter_sws(2), pl_counter_sws(2)),
    "contained_cq_nr": lambda: contained_cq_nr(
        cq_diamond_sws(1), cq_diamond_sws(1)
    ),
    "contained_cq": lambda: contained_cq(
        cq_chain_sws(0), cq_chain_sws(0), max_session_length=2
    ),
    "equivalent_cq_nr": lambda: equivalent_cq_nr(
        cq_diamond_sws(1), cq_diamond_sws(1)
    ),
    "equivalent_cq": lambda: equivalent_cq(
        cq_chain_sws(0), cq_chain_sws(0), max_session_length=2
    ),
    "equivalent_fo_bounded": lambda: equivalent_fo_bounded(
        travel_service(),
        travel_service(),
        max_domain=1,
        max_rows=1,
        max_session_length=1,
        budget=500,
    ),
    "nonempty_pl_nr_sat": lambda: nonempty_pl_nr_sat(
        word_service(["a", HASH], ALPHA, "X")
    ),
    "nonempty_cq_nr": lambda: nonempty_cq_nr(cq_diamond_sws(1)),
    "nonempty_cq": lambda: nonempty_cq(cq_chain_sws(0), max_session_length=2),
    "nonempty_fo_bounded": lambda: nonempty_fo_bounded(
        travel_service(), budget=500, max_session_length=1
    ),
    "validate_pl_nr_sat": lambda: validate_pl_nr_sat(
        word_service(["a", HASH], ALPHA, "X"), True
    ),
    "validate_cq_nr": lambda: validate_cq_nr(
        cq_diamond_sws(1), [("0", "0")], merge_budget=4
    ),
    "validate_fo_bounded": lambda: validate(
        travel_service(), [], budget=200, max_session_length=1
    ),
}


def _join_views():
    return [
        View(ConjunctiveQuery((x, y), [Atom("E", (x, y))], (), "V1")),
        View(
            ConjunctiveQuery(
                (x, z), [Atom("E", (x, y)), Atom("E", (y, z))], (), "V2"
            )
        ),
    ]


def _two_hop_query():
    return UnionQuery.of(
        ConjunctiveQuery((x, z), [Atom("E", (x, y)), Atom("E", (y, z))])
    )


#: raising-only spans -> exerciser calling the raising public entry point.
RAISING_EXERCISERS = {
    "sat.solve_cnf": lambda: nonempty_pl_nr_sat(
        word_service(["a", HASH], ALPHA, "X")
    ),
    "rewriting.maximally_contained": lambda: maximally_contained_rewriting(
        _two_hop_query(), _join_views()
    ),
    "rewriting.equivalent": lambda: equivalent_rewriting(
        _two_hop_query(), _join_views()
    ),
    "rewriting.certain_answers": lambda: certain_answers(
        _two_hop_query(),
        [View(ConjunctiveQuery((x, y), [Atom("E", (x, y))], (), "V1"))],
        {"V1": Relation(RelationSchema("V1", ("a", "b")), [(1, 2), (2, 3)])},
    ),
}


def _registered(raising: bool):
    return sorted(
        name
        for name, span in GUARDED_SPANS.items()
        if span.raising_only is raising
    )


class TestMatrixCoverage:
    def test_every_unknown_converting_span_has_an_exerciser(self):
        assert sorted(EXERCISERS) == _registered(raising=False)

    def test_every_raising_span_has_an_exerciser(self):
        assert sorted(RAISING_EXERCISERS) == _registered(raising=True)


@pytest.mark.parametrize("span", sorted(EXERCISERS))
@pytest.mark.parametrize("limit", LIMITS)
def test_injected_exhaustion_yields_unknown(span, limit):
    """Trip at the first checkpoint: the procedure must answer UNKNOWN."""
    with injected(span, at=1, limit=limit) as plan:
        result = EXERCISERS[span]()
    assert plan.fired, f"exerciser never reached a {span} checkpoint"
    assert result.verdict is Verdict.UNKNOWN
    assert span in getattr(result, "detail", "")


@pytest.mark.parametrize("span", sorted(EXERCISERS))
@pytest.mark.parametrize("at", [2, 5])
def test_injected_mid_search_never_crashes(span, at):
    """Deeper checkpoints: UNKNOWN when reached, sound completion when not."""
    with injected(span, at=at, limit="steps") as plan:
        result = EXERCISERS[span]()
    if plan.fired:
        assert result.verdict is Verdict.UNKNOWN
    else:
        # The search finished before its at-th checkpoint; any completed
        # verdict (including a legitimately bounded UNKNOWN) is fine — the
        # point is that it returned instead of crashing or hanging.
        assert result.verdict in (Verdict.YES, Verdict.NO, Verdict.UNKNOWN)


@pytest.mark.parametrize("span", sorted(RAISING_EXERCISERS))
def test_raising_variants_raise_populated_budget_errors(span):
    with injected(span, at=1, limit="steps") as plan:
        # Direct rewriting/sat callers see the raise; guarded boundaries
        # (nonempty_pl_nr_sat, compose_cq_nr) convert it instead.
        try:
            result = RAISING_EXERCISERS[span]()
        except BudgetExceededError as error:
            assert error.budget is not None
            assert error.limit == "steps"
            assert "[limit=steps]" in str(error)
        else:
            assert result.verdict is Verdict.UNKNOWN
    assert plan.fired, f"exerciser never reached a {span} checkpoint"
