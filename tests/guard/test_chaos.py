"""Process-level chaos: ChaosSpec decisions, env transport, job hooks."""

import pytest

from repro.guard import GuardTrip, checkpoint
from repro.guard import _governor, inject
from repro.guard.inject import (
    CHAOS_ENV_VAR,
    ChaosSpec,
    active_chaos,
    apply_job_chaos,
    chaos,
    clear_job_chaos,
    install_chaos,
    remove_chaos,
    store_fault_due,
)


@pytest.fixture(autouse=True)
def _clean_chaos_state():
    remove_chaos()
    clear_job_chaos()
    yield
    remove_chaos()
    clear_job_chaos()


class TestChaosSpec:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_rate=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(store_error_rate=-0.1)

    def test_bad_trip_limit_rejected(self):
        with pytest.raises(ValueError):
            ChaosSpec(trip_rate=0.5, trip_limit="gasoline")

    def test_decide_is_deterministic(self):
        spec = ChaosSpec(kill_rate=0.5, seed=3)
        draws = [spec.decide("kill", f"job-{i}:0") for i in range(64)]
        assert draws == [spec.decide("kill", f"job-{i}:0") for i in range(64)]
        # A 0.5 rate over 64 keys lands somewhere strictly between the
        # extremes -- the hash actually spreads.
        assert 0 < sum(draws) < 64

    def test_decide_respects_rate_extremes(self):
        always = ChaosSpec(kill_rate=1.0)
        never = ChaosSpec(kill_rate=0.0)
        assert all(always.decide("kill", f"k{i}") for i in range(16))
        assert not any(never.decide("kill", f"k{i}") for i in range(16))

    def test_seed_changes_the_schedule(self):
        keys = [f"job-{i}" for i in range(128)]
        a = [ChaosSpec(kill_rate=0.3, seed=1).decide("kill", k) for k in keys]
        b = [ChaosSpec(kill_rate=0.3, seed=2).decide("kill", k) for k in keys]
        assert a != b

    def test_env_roundtrip(self):
        spec = ChaosSpec(
            kill_rate=0.1, stall_rate=0.2, stall_s=0.01, trip_rate=0.3,
            trip_limit="deadline", store_error_rate=0.4, seed=9,
        )
        assert ChaosSpec.from_dict(spec.as_dict()) == spec
        import json

        assert ChaosSpec.from_dict(json.loads(spec.as_env())) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ChaosSpec.from_dict({"kill_rate": 0.1, "meteor_rate": 1.0})


class TestActiveChaos:
    def test_install_and_remove(self):
        assert active_chaos() is None
        spec = install_chaos(ChaosSpec(kill_rate=0.5))
        assert active_chaos() is spec
        remove_chaos()
        assert active_chaos() is None

    def test_context_manager(self):
        with chaos(ChaosSpec(trip_rate=1.0)) as spec:
            assert active_chaos() is spec
        assert active_chaos() is None

    def test_env_var_transport(self, monkeypatch):
        spec = ChaosSpec(kill_rate=0.25, seed=4)
        monkeypatch.setenv(CHAOS_ENV_VAR, spec.as_env())
        assert active_chaos() == spec

    def test_installed_spec_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, ChaosSpec(kill_rate=0.9).as_env())
        spec = install_chaos(ChaosSpec(kill_rate=0.1))
        assert active_chaos() is spec

    def test_malformed_env_is_no_chaos(self, monkeypatch):
        for junk in ("not json", '{"kill_rate": "high"}', '{"nope": 1}'):
            monkeypatch.setenv(CHAOS_ENV_VAR, junk)
            assert active_chaos() is None
        monkeypatch.delenv(CHAOS_ENV_VAR)
        assert active_chaos() is None


class TestJobChaos:
    def test_no_chaos_is_a_noop(self):
        assert apply_job_chaos("fp", 0) == 0.0
        assert _governor._INJECT_HOOK is None
        checkpoint("unit.span")  # must not raise

    def test_trip_fires_as_injected_guard_trip(self):
        install_chaos(ChaosSpec(trip_rate=1.0, trip_limit="deadline"))
        stall = apply_job_chaos("fp", 0)
        assert stall == 0.0
        with pytest.raises(GuardTrip) as info:
            for _ in range(8):  # the arm point is drawn in 1..4
                checkpoint("unit.span")
        assert info.value.trip.injected
        assert info.value.trip.limit == "deadline"
        clear_job_chaos()
        checkpoint("unit.span")  # hook gone

    def test_kill_installs_the_kill_hook(self):
        # Never let it reach the arm point: os._exit would take pytest down.
        install_chaos(ChaosSpec(kill_rate=1.0))
        apply_job_chaos("fp", 0)
        assert isinstance(_governor._INJECT_HOOK, inject._KillAtCheckpoint)
        assert _governor._INJECT_HOOK.at >= 1

    def test_kill_takes_precedence_over_trip(self):
        install_chaos(ChaosSpec(kill_rate=1.0, trip_rate=1.0))
        apply_job_chaos("fp", 0)
        assert isinstance(_governor._INJECT_HOOK, inject._KillAtCheckpoint)

    def test_unselected_job_clears_the_previous_hook(self):
        install_chaos(ChaosSpec(trip_rate=1.0))
        apply_job_chaos("fp", 0)
        assert _governor._INJECT_HOOK is not None
        remove_chaos()
        install_chaos(ChaosSpec(trip_rate=0.0))
        apply_job_chaos("fp", 0)
        assert _governor._INJECT_HOOK is None

    def test_stall_returns_the_sleep(self):
        install_chaos(ChaosSpec(stall_rate=1.0, stall_s=0.125))
        assert apply_job_chaos("fp", 0) == 0.125

    def test_attempt_is_part_of_the_fate(self):
        # Some fingerprint must draw differently across attempts at a
        # middling rate -- that independence is what stops a re-dispatched
        # job from dying deterministically forever.
        spec = install_chaos(ChaosSpec(kill_rate=0.5, seed=11))
        differs = any(
            spec.decide("kill", f"fp-{i}:0") != spec.decide("kill", f"fp-{i}:1")
            for i in range(64)
        )
        assert differs


class TestStoreFaults:
    def test_only_first_attempts_fire(self):
        install_chaos(ChaosSpec(store_error_rate=1.0))
        assert store_fault_due(0)
        assert not store_fault_due(1)
        assert not store_fault_due(5)

    def test_disabled_without_chaos(self):
        assert not store_fault_due(0)

    def test_zero_rate_never_fires(self):
        install_chaos(ChaosSpec(store_error_rate=0.0))
        assert not any(store_fault_due(0) for _ in range(32))
