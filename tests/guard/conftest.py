"""Guard tests share process-global state; keep it clean between tests."""

import pytest

from repro.guard import _governor, inject


@pytest.fixture(autouse=True)
def _clean_guard_state():
    inject.remove()
    yield
    inject.remove()
    stack = getattr(_governor._local, "stack", None)
    if stack:  # pragma: no cover - only on a buggy test leaking activation
        stack.clear()
        pytest.fail("a test left a guard on the ambient stack")
