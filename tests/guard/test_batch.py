"""batch_run: per-instance guards, failure isolation, cancellation."""

from repro.analysis.verdict import Answer
from repro.guard import Budget, CancelToken, checkpoint
from repro.guard.batch import batch_run


def _spin(n):
    """A procedure whose cost in checkpoints is its argument."""
    for _ in range(n):
        checkpoint("unit.batch")
    return n * 10


class TestBatchRun:
    def test_all_ok_without_limits(self):
        report = batch_run(_spin, [1, 2, 3])
        assert [item.status for item in report.items] == ["ok", "ok", "ok"]
        assert [item.result for item in report.items] == [10, 20, 30]
        assert report.summary() == "3 instances: 3 ok, 0 unknown, 0 error"

    def test_budget_applies_per_instance(self):
        # 4 steps each under a 10-step budget: a shared guard would trip on
        # the third instance; per-instance guards let all three finish.
        report = batch_run(_spin, [4, 4, 4], budget=10)
        assert all(item.status == "ok" for item in report.items)

    def test_tripped_instance_is_isolated(self):
        report = batch_run(_spin, [1, 50, 1], budget=Budget(step_budget=5))
        assert [item.status for item in report.items] == ["ok", "unknown", "ok"]
        tripped = report.unknown[0]
        assert tripped.trip is not None
        assert tripped.trip.limit == "steps"

    def test_crashing_instance_is_isolated(self):
        def fragile(n):
            if n == 2:
                raise ValueError("boom")
            return n

        report = batch_run(fragile, [1, 2, 3])
        assert [item.status for item in report.items] == ["ok", "error", "ok"]
        assert isinstance(report.errors[0].error, ValueError)

    def test_cancellation_skips_the_rest(self):
        token = CancelToken()

        def cancel_after_first(n):
            if n == 1:
                token.cancel()
                return n
            checkpoint("unit.batch")
            return n

        report = batch_run(cancel_after_first, [1, 2, 3], cancel_token=token)
        assert report.items[0].status == "ok"
        # Instance 2 trips at its first checkpoint; instance 3 never runs.
        assert report.items[1].status == "unknown"
        assert report.items[1].trip.limit == "cancelled"
        assert report.items[2].status == "unknown"
        assert report.items[2].trip.site == "batch_run"

    def test_args_kwargs_instances_and_labels(self):
        def combine(a, b=0):
            return a + b

        report = batch_run(
            combine,
            [((1,), {"b": 2}), ((5,), {})],
            label=lambda subject: f"case-{subject}",
        )
        assert [item.result for item in report.items] == [3, 5]
        assert report.items[0].label == "case-1"

    def test_unknown_verdict_results_counted_unknown(self):
        def undecided(_n):
            return Answer.unknown(detail="bounded out")

        report = batch_run(undecided, [1])
        assert report.items[0].status == "unknown"
