"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs fail; this shim lets ``pip install -e . --no-build-isolation``
take the classic ``setup.py develop`` path.  Metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Complexity and Composition of Synthesized Web "
        "Services' (Fan, Geerts, Gelade, Neven, Poggi; PODS 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
