"""Aggregation in action synthesis: the minimum-cost travel package.

Section 6 of the paper proposes extending SWS's "by incorporating
aggregation and a cost model into action synthesis to find, e.g., a travel
package with minimum total cost when airfare, hotel and other components
are all taken together".  This example builds exactly that service: τ1's
root synthesis wrapped in an arg-min aggregate over a price table.

It also demonstrates the delimiter-based multi-session driver from the
Section 2 overview: several booking sessions processed in a row, each
committed into a bookings store at its delimiter.

Run:  python examples/min_cost_package.py
"""

from repro.core.run import run_relational
from repro.core.sws import SWS, SWSKind, SynthesisRule
from repro.data.actions import ActionKind, tag_interpretation
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.extensions.aggregation import CostModel, min_cost_synthesis
from repro.extensions.sessions import run_sessions, tag_delimiter
from repro.workloads import travel


PRICES = CostModel(
    prices=(
        {"EDI-MCO-0800": 420.0, "EDI-MCO-1230": 380.0},
        {"PolynesianResort": 260.0},
        {"4DayParkHopper": 150.0},
        {"CompactCar": 90.0},
    ),
    free_values=frozenset({travel.BLANK}),
)


def min_cost_service() -> SWS:
    base = travel.travel_service()
    synthesis = dict(base.synthesis)
    synthesis["q0"] = SynthesisRule(
        min_cost_synthesis(base.synthesis["q0"].query, PRICES, "cheapest")
    )
    return SWS(
        base.states,
        base.start,
        base.transitions,
        synthesis,
        kind=SWSKind.RELATIONAL,
        db_schema=base.db_schema,
        input_schema=base.input_schema,
        output_arity=base.output_arity,
        name="tau1_mincost",
    )


def aggregation_demo() -> None:
    print("=== minimum-cost package (Section 6 extension) ===")
    plain = travel.travel_service()
    cheap = min_cost_service()
    database = travel.sample_database()
    request = travel.booking_request()

    all_packages = run_relational(plain, database, request).output.rows
    print("all feasible packages:")
    for row in sorted(all_packages):
        print(f"  {row}  -> total {PRICES.row_cost(row):7.2f}")

    best = run_relational(cheap, database, request).output.rows
    print("after the arg-min synthesis:")
    for row in sorted(best):
        print(f"  {row}  -> total {PRICES.row_cost(row):7.2f}")


def sessions_demo() -> None:
    print("\n=== consecutive sessions with per-delimiter commits ===")
    service = min_cost_service()

    # Bookings store the commits write into.
    store_schema = DatabaseSchema(
        list(travel.DB_SCHEMA.values())
        + [RelationSchema("Bookings", ("flight", "room", "ticket", "car"))]
    )
    # The running database doubles as the service's catalog.
    catalog = travel.sample_database()
    store = Database(
        store_schema, {name: catalog[name].rows for name in catalog}
    )

    # Two sessions separated by a delimiter message (tag '#').
    inputs = InputSequence(
        travel.INPUT_PAYLOAD,
        [
            [(tag, "k1") for tag in travel.TAGS],
            [("#", "end")],
            [(tag, "k1") for tag in travel.TAGS],
            [("#", "end")],
        ],
    )

    # The service emits bare packages; tag them as inserts on the fly by
    # interpreting every row as a booking insert.
    def interpretation(row):
        from repro.data.actions import Action

        return Action(ActionKind.INSERT, "Bookings", row)

    outcomes = run_sessions(
        service,
        store,
        inputs,
        tag_delimiter(0, "#"),
        interpretation,
    )
    for outcome in outcomes:
        print(
            f"  session {outcome.index}: {len(outcome.output)} package(s) "
            f"committed; bookings so far: "
            f"{len(outcome.database_after['Bookings'])}"
        )


def main() -> None:
    aggregation_demo()
    sessions_demo()


if __name__ == "__main__":
    main()
