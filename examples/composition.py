"""Composition synthesis (Section 5): mediators from available services.

Three of the paper's composition settings, end to end:

1. Example 5.1 — the hand-written mediator π1 over τa (flights),
   τhc (hotel+car) and τht (hotel+tickets), shown equivalent to the goal
   service τ1 on the running scenario.
2. Theorem 5.3 — MDT(∨) composition by regular-language rewriting: a
   sequential-sessions goal decomposed over session components.
3. Theorem 5.1(3) — CQ/UCQ composition as equivalent query rewriting
   using views, with the synthesized depth-one mediator replayed against
   the goal on random instances.

Run:  python examples/composition.py
"""

from repro.core.run import run_relational
from repro.core.sws import MSG, SWS, SWSKind, SynthesisRule, TransitionRule
from repro.data.generators import InstanceGenerator
from repro.logic.cq import Atom, ConjunctiveQuery
from repro.logic.terms import var
from repro.logic.ucq import UnionQuery
from repro.mediator import (
    compose_cq_nr,
    compose_pl_regular,
    run_mediator,
    run_mediator_pl,
)
from repro.workloads import travel
from repro.workloads.pl_services import HASH, encode_letters, union_word_service, word_service
from repro.workloads.random_sws import DEFAULT_CQ_SCHEMA, DEFAULT_PAYLOAD


def example_5_1() -> None:
    print("=== Example 5.1: the travel mediator π1 ===")
    pi1 = travel.travel_mediator()
    goal = travel.travel_service()
    request = travel.booking_request()
    for label, kwargs in [
        ("full catalog", {}),
        ("no tickets", {"with_tickets": False}),
        ("no cars", {"with_cars": False}),
    ]:
        database = travel.sample_database(**kwargs)
        via_goal = goal.run(database, request).output.rows
        via_mediator = run_mediator(pi1, database, request).output.rows
        match = "==" if via_goal == via_mediator else "!="
        print(f"  {label:13s}: goal {len(via_goal)} rows {match} "
              f"mediator {len(via_mediator)} rows")


def regular_composition() -> None:
    print("\n=== Theorem 5.3: MDT(∨) composition via regular rewriting ===")
    alpha = ["a", "b", "c"]
    components = {
        "Air": word_service(["a", HASH], alpha, "Air"),
        "Bed": word_service(["b", HASH], alpha, "Bed"),
        "Car": word_service(["c", HASH], alpha, "Car"),
    }
    goal = union_word_service(
        [["a", HASH, "b", HASH], ["a", HASH, "c", HASH]], alpha, "package"
    )
    result = compose_pl_regular(goal, components)
    print(f"  mediator exists: {result.exists} ({result.detail})")
    mediator = result.mediator
    print(f"  mediator has {len(mediator.states)} states over "
          f"{len(mediator.components)} components")
    for word in (["a", HASH, "b", HASH], ["a", HASH, "c", HASH], ["b", HASH, "a", HASH]):
        value = run_mediator_pl(mediator, encode_letters(word)).output
        print(f"  session {''.join(word)}: {'accepted' if value else 'rejected'}")

    impossible = union_word_service([["a", "b", HASH]], alpha, "impossible")
    failure = compose_pl_regular(impossible, components)
    print(f"  impossible goal rejected: exists={failure.exists}")


def _emit_service(emit: UnionQuery, name: str) -> SWS:
    x, y = var("x"), var("y")
    first = ConjunctiveQuery((x, y), [Atom("In", (x, y))], (), "copy")
    up = UnionQuery.of(ConjunctiveQuery((x, y), [Atom("A1", (x, y))], (), "up"))
    return SWS(
        ("q0", "q1"),
        "q0",
        {"q0": TransitionRule([("q1", first)]), "q1": TransitionRule()},
        {"q0": SynthesisRule(up), "q1": SynthesisRule(emit)},
        kind=SWSKind.RELATIONAL,
        db_schema=DEFAULT_CQ_SCHEMA,
        input_schema=DEFAULT_PAYLOAD,
        output_arity=2,
        name=name,
    )


def cq_composition() -> None:
    print("\n=== Theorem 5.1(3): CQ/UCQ composition via query rewriting ===")
    x, y, z = var("x"), var("y"), var("z")
    join_r = UnionQuery.of(
        ConjunctiveQuery((x, z), [Atom(MSG, (x, y)), Atom("R", (y, z))], (), "jr")
    )
    join_s = UnionQuery.of(
        ConjunctiveQuery((x, z), [Atom(MSG, (x, y)), Atom("S", (y, z))], (), "js")
    )
    goal = _emit_service(join_r.union(join_s), "goal")
    components = {
        "ViaR": _emit_service(join_r, "ViaR"),
        "ViaS": _emit_service(join_s, "ViaS"),
    }
    result = compose_cq_nr(goal, components)
    print(f"  mediator exists: {result.exists} ({result.detail})")
    print(f"  rewriting: {result.rewriting}")
    generator = InstanceGenerator(seed=8, domain_size=3)
    agreements = 0
    for _ in range(5):
        database = generator.database(goal.db_schema, 4)
        inputs = generator.input_sequence(goal.input_schema, 2, 2)
        via_goal = run_relational(goal, database, inputs).output.rows
        via_mediator = run_mediator(result.mediator, database, inputs).output.rows
        agreements += via_goal == via_mediator
    print(f"  goal == mediator on {agreements}/5 random instances")


def main() -> None:
    example_5_1()
    regular_composition()
    cq_composition()


if __name__ == "__main__":
    main()
