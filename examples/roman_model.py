"""Prior models as SWS's (Section 3): Roman model and peer model.

The paper's uniformity claim, made executable:

* the Roman model's travel FSA (Figure 1(a)) translates into SWS(PL, PL);
  the translation preserves acceptance on every action string, and the
  SWS-level decision procedures answer questions about the original
  automaton;
* a data-driven peer (transducer) translates into a three-state recursive
  SWS(FO, FO) whose per-step outputs match the peer's.

Run:  python examples/roman_model.py
"""

import itertools

from repro.analysis import equivalent_pl, nonempty_pl
from repro.automata import parse_regex
from repro.core.run import run_pl, run_relational
from repro.data.database import Database
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.logic import fo
from repro.logic.terms import var
from repro.models import (
    Peer,
    RomanService,
    encode_peer_prefix,
    encode_roman_word,
    peer_to_sws,
    roman_to_sws,
)
from repro.workloads.travel import travel_fsa


def roman_demo() -> None:
    print("=== Roman model -> SWS(PL, PL) ===")
    service = RomanService(travel_fsa(), "travel")
    sws = roman_to_sws(service)
    print(f"  DFA with {len(travel_fsa().states)} states -> {sws!r}")

    checked = mismatches = 0
    for n in range(0, 5):
        for word in itertools.product(sorted(service.alphabet), repeat=n):
            expected = service.accepts(list(word))
            actual = run_pl(sws, encode_roman_word(list(word))).output
            checked += 1
            mismatches += expected != actual
    print(f"  acceptance preserved on {checked} action strings "
          f"({mismatches} mismatches)")

    answer = nonempty_pl(sws)
    letters = [
        next(iter(symbol)).removeprefix("ltr_") if symbol else "∅"
        for symbol in answer.witness
    ]
    print(f"  non-emptiness witness decodes to: {' '.join(letters)}")

    one = parse_regex("a (b | c)").to_nfa().determinize().to_nfa()
    two = parse_regex("a b | a c").to_nfa().determinize().to_nfa()
    equal = equivalent_pl(
        roman_to_sws(RomanService(one, "factored")),
        roman_to_sws(RomanService(two, "expanded")),
    )
    print(f"  'a(b|c)' ≡ 'ab|ac' at the SWS level: {equal.verdict.value}")


def peer_demo() -> None:
    print("\n=== Peer model -> SWS(FO, FO) ===")
    x, y = var("x"), var("y")
    state_rule = fo.FOQuery(
        (y,),
        fo.OrF(
            [
                fo.Exists((x,), fo.AndF([fo.atom("State", x), fo.atom("E", x, y)])),
                fo.atom("InP", y),
            ]
        ),
        "step",
    )
    output_rule = fo.FOQuery((y,), fo.atom("State", y), "out")
    schema = DatabaseSchema([RelationSchema("E", ("a", "b"))])
    peer = Peer(schema, 1, state_rule, output_rule, "walker")
    database = Database(schema, {"E": [(1, 2), (2, 3), (3, 1)]})
    inputs = [frozenset({(1,)}), frozenset(), frozenset({(2,)})]

    expected = peer.run(database, inputs)
    sws = peer_to_sws(peer)
    print(f"  peer 'walker' -> {sws!r}")
    for step in range(1, len(inputs) + 1):
        encoded = encode_peer_prefix(inputs, step, peer.arity)
        got = run_relational(sws, database, encoded).output.rows
        match = "==" if got == expected[step - 1] else "!="
        print(f"  step {step}: peer {sorted(expected[step - 1])} "
              f"{match} sws {sorted(got)}")


def main() -> None:
    roman_demo()
    peer_demo()


if __name__ == "__main__":
    main()
