"""Build your own service: the fluent builder and textual rule syntax.

Constructs a small order-fulfilment service from scratch — CQ transitions,
a UCQ synthesis with a fallback disjunct, and an FO synthesis with
negation — then classifies it, analyzes it and runs it.

The service: a customer order (an input message tagged ``'order'``) is
fulfilled from local stock if possible, else drop-shipped from a supplier;
fulfilment is blocked entirely while the fraud flag is set.

Run:  python examples/build_your_own.py
"""

from repro.analysis import nonempty_fo_bounded
from repro.core import classify, relational_sws
from repro.core.run import run_relational
from repro.data.database import Database
from repro.data.input_sequence import InputSequence
from repro.data.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema(
    [
        RelationSchema("Stock", ("item", "warehouse")),
        RelationSchema("Supplier", ("item", "vendor")),
        RelationSchema("Fraud", ("customer",)),
    ]
)


def fulfilment_service():
    """One parallel round: stock check and supplier check; the root
    synthesis prefers stock, falls back to drop-shipping, and blocks
    fraudulent customers — the τ1 pattern on a different domain."""
    return (
        relational_sws("fulfil", SCHEMA, payload=("tag", "customer", "item"), output_arity=3)
        .transition(
            "q0",
            ("q_stock", "M(t, c, i) :- In(t, c, i), t = 'order'"),
            ("q_ship", "M(t, c, i) :- In(t, c, i), t = 'order'"),
        )
        .synthesize(
            # Internal synthesis may only read the successor registers
            # (Definition 2.1) — data checks like the fraud flag belong in
            # the final states below, which do see the database.
            "q0",
            "Out(c, i, s) := "
            "Act_q_stock(c, i, s) or "
            "(not exists c2, i2, s2 . Act_q_stock(c2, i2, s2))"
            " and Act_q_ship(c, i, s)",
        )
        .final("q_stock")
        .synthesize(
            "q_stock",
            "Hit(c, i, w) := (exists t . Msg(t, c, i)) and Stock(i, w) "
            "and not Fraud(c)",
        )
        .final("q_ship")
        .synthesize(
            "q_ship",
            "Ship(c, i, v) := (exists t . Msg(t, c, i)) and Supplier(i, v) "
            "and not Fraud(c)",
        )
        .build()
    )


def main() -> None:
    service = fulfilment_service()
    print(f"service: {service!r}")
    print(f"class:   {classify(service).value}")

    database = Database(
        SCHEMA,
        {
            "Stock": [("lamp", "WH-1")],
            "Supplier": [("lamp", "AcmeCo"), ("desk", "WoodWorks")],
            "Fraud": [("mallory",)],
        },
    )

    def order(customer: str, item: str) -> InputSequence:
        return InputSequence(
            service.input_schema, [[("order", customer, item)]]
        )

    for customer, item in [
        ("alice", "lamp"),   # in stock -> warehouse fulfilment
        ("bob", "desk"),     # not in stock -> drop-ship
        ("mallory", "lamp"), # fraud flag -> blocked
        ("carol", "sofa"),   # nobody has it -> nothing
    ]:
        result = run_relational(service, database, order(customer, item))
        print(f"  order({customer}, {item}): {sorted(result.output.rows) or 'no fulfilment'}")

    # Static analysis still applies to hand-built services.
    answer = nonempty_fo_bounded(
        service,
        hints=[(database, order("alice", "lamp"))],
    )
    print(f"non-emptiness (with certificate): {answer.verdict.value}")


if __name__ == "__main__":
    main()
