"""Static analysis of services: the decision problems of Section 4.

Exercises one procedure per decidable Table 1 cell on small services, and
the sound bounded procedures on an undecidable cell:

* non-emptiness of SWS(PL, PL)    — AFA vector search (PSPACE);
* non-emptiness of SWS_nr(PL, PL) — SAT/DPLL (NP);
* validation of SWS(PL, PL)       — vector search, both output values;
* equivalence of SWS(PL, PL)      — product vector search;
* non-emptiness / equivalence of SWS_nr(CQ, UCQ) — UCQ≠ expansion and
  Klug-style containment;
* non-emptiness of SWS_nr(FO, FO) — bounded search with verdict UNKNOWN
  when the budget runs out (the cell is undecidable).

Run:  python examples/verification.py
"""

from repro.analysis import (
    equivalent_cq_nr,
    equivalent_pl,
    nonempty_cq_nr,
    nonempty_fo_bounded,
    nonempty_pl,
    nonempty_pl_nr_sat,
    validate_pl,
)
from repro.logic import pl
from repro.reductions.sat_to_sws import sat_instance_to_sws
from repro.workloads import travel
from repro.workloads.scaling import cq_diamond_sws, pl_counter_sws


def pl_analyses() -> None:
    print("=== SWS(PL, PL): PSPACE procedures ===")
    counter = pl_counter_sws(3)
    answer = nonempty_pl(counter)
    print(f"  8-period counter non-empty: {answer.verdict.value}; "
          f"shortest witness length {len(answer.witness)} (= 2^3)")

    validation = validate_pl(counter, False)
    print(f"  can the counter output false? {validation.verdict.value} "
          f"(witness length {len(validation.witness)})")

    different = equivalent_pl(pl_counter_sws(1), pl_counter_sws(2))
    print(f"  period-2 vs period-4 counters equivalent: "
          f"{different.verdict.value}; distinguishing word length "
          f"{len(different.witness)}")


def np_analyses() -> None:
    print("\n=== SWS_nr(PL, PL): the NP procedure is literally SAT ===")
    satisfiable = sat_instance_to_sws(pl.parse("(x | y) & (!x | z)"))
    unsat = sat_instance_to_sws(pl.parse("x & !x"))
    print(f"  service from satisfiable formula: "
          f"{nonempty_pl_nr_sat(satisfiable).verdict.value}")
    print(f"  service from contradiction:       "
          f"{nonempty_pl_nr_sat(unsat).verdict.value}")


def cq_analyses() -> None:
    print("\n=== SWS_nr(CQ, UCQ): expansion-based procedures ===")
    diamond2, diamond3 = cq_diamond_sws(2), cq_diamond_sws(3)
    answer = nonempty_cq_nr(diamond2)
    database, inputs = answer.witness
    print(f"  diamond(2) non-empty: {answer.verdict.value}; synthesized "
          f"witness: {database.total_rows()} database tuples, "
          f"{len(inputs)} input messages")
    print(f"  diamond(2) ≡ diamond(2): "
          f"{equivalent_cq_nr(diamond2, cq_diamond_sws(2)).verdict.value}")
    print(f"  diamond(2) ≡ diamond(3): "
          f"{equivalent_cq_nr(diamond2, diamond3).verdict.value}")


def fo_analyses() -> None:
    print("\n=== SWS_nr(FO, FO): undecidable — bounded, three-valued ===")
    service = travel.travel_service()
    blind = nonempty_fo_bounded(service, budget=2000, max_session_length=1)
    print(f"  travel τ1 non-empty, blind search: {blind.verdict.value} "
          f"({blind.detail})")
    hinted = nonempty_fo_bounded(
        service,
        hints=[(travel.sample_database(), travel.booking_request())],
    )
    print(f"  travel τ1 non-empty, with certificate: {hinted.verdict.value} "
          f"({hinted.detail})")
    print("  -> verifying a supplied witness is decidable; finding one is "
          "not (Theorem 4.1(1))")


def main() -> None:
    pl_analyses()
    np_analyses()
    cq_analyses()
    fo_analyses()


if __name__ == "__main__":
    main()
