"""Quickstart: the travel-package service of Figure 1 / Example 2.1.

Builds the paper's running example — the Disney World travel-package SWS
τ1 — runs it on a catalog database and a booking request, prints the
execution tree, and commits the resulting actions.

Run:  python examples/quickstart.py
"""

from repro.data.actions import ActionKind, commit_actions, tag_interpretation
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.workloads import travel


def main() -> None:
    # 1. The service: one input message fans out to four parallel checks
    #    (airfare, hotel, tickets, rental car); the root synthesis commits
    #    conjunctively and deterministically prefers tickets over cars.
    service = travel.travel_service()
    print(f"service: {service!r}")
    print(f"states: {', '.join(service.states)}")

    # 2. A catalog database and a booking request for requirement key k1.
    database = travel.sample_database()
    request = travel.booking_request()
    print("\ncatalog:")
    for name in database:
        for row in sorted(database[name].rows):
            print(f"  {name}{row}")

    # 3. Run the SWS: the execution tree has depth 1 — every aspect is
    #    checked in the same round (the FSA of Figure 1(a) needs three
    #    sequential rounds for the same decision).
    result = service.run(database, request)
    print("\nexecution tree:")
    print(result.tree.render())

    print("\nsynthesized travel packages (flight, room, ticket, car):")
    for row in sorted(result.output.rows):
        print(f"  {row}")

    # 4. Scenario variations: no tickets -> deterministic fallback to cars;
    #    no hotel -> conjunctive commit fails and nothing is booked.
    no_tickets = travel.sample_database(with_tickets=False)
    fallback = service.run(no_tickets, request)
    print("\nwithout tickets (falls back to rental cars):")
    for row in sorted(fallback.output.rows):
        print(f"  {row}")

    nothing_local = travel.sample_database(with_tickets=False, with_cars=False)
    empty = service.run(nothing_local, request)
    print(f"\nwithout any local arrangement: {len(empty.output)} packages "
          "(the earlier reservations roll back, as Example 1.1 demands)")

    # 5. Commit the session's actions into a bookings store.
    store_schema = DatabaseSchema(
        [RelationSchema("Bookings", ("flight", "room", "ticket", "car"))]
    )
    store = Database(store_schema)
    tagged_schema = RelationSchema(
        "Act", ("tag", "flight", "room", "ticket", "car")
    )
    tagged = Relation(tagged_schema, [("book",) + row for row in result.output])
    interpretation = tag_interpretation(
        tag_position=0,
        kind_by_tag={"book": ActionKind.INSERT},
        target_by_tag={"book": "Bookings"},
    )
    updated, log = commit_actions(store, tagged, interpretation)
    print(f"\ncommitted {len(updated['Bookings'])} bookings "
          f"({sum(len(v) for v in log.inserts.values())} inserts)")


if __name__ == "__main__":
    main()
