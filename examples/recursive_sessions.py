"""Recursive services and unbounded sessions: τ2 of Example 2.1.

τ2 extends the travel service with a recursive airfare state
``qa → (qa, φa), (qf, φa)``: the customer refines the airfare inquiry over
several messages, and the synthesis rule ψ'a keeps the *latest* nonempty
answer (Example 2.2's chain of (vj, fj) node pairs).

The script also demonstrates the UCQ≠ expansion machinery on a recursive
CQ/UCQ service: for each session length the whole run collapses into one
union of conjunctive queries, which is how the Section 4 decision
procedures avoid enumerating databases.

Run:  python examples/recursive_sessions.py
"""

from repro.analysis import nonempty_cq
from repro.core.unfold import expand
from repro.workloads import travel
from repro.workloads.scaling import cq_chain_sws


def latest_wins_demo() -> None:
    service = travel.recursive_airfare_service()
    print(f"service: {service!r}  (dependency graph is cyclic)")
    database = travel.sample_database().with_relation(
        "Ra", [("k1", "EDI-MCO-0800"), ("k2", "AMS-MCO-0915"), ("k3", "LHR-MCO-1130")]
    )
    for keys in (["k1"], ["k1", "k2"], ["k1", "k2", "k3"]):
        inquiries = travel.repeated_airfare_inquiries(keys)
        result = service.run(database, inquiries)
        flights = sorted({row[0] for row in result.output})
        print(
            f"  inquiries {keys}: tree size {result.tree.size():2d}, "
            f"flights booked {flights}"
        )
    print(
        "  -> the deepest nonempty inquiry wins; earlier answers are "
        "discarded by ψ'a"
    )


def expansion_demo() -> None:
    print("\nUnfolding a recursive CQ/UCQ service into UCQ≠ queries:")
    chain = cq_chain_sws(0)
    for n in range(1, 5):
        expansion = expand(chain, n)
        print(
            f"  session length {n}: {len(expansion.disjuncts)} disjunct(s); "
            f"satisfiable: {expansion.is_satisfiable()}"
        )
    answer = nonempty_cq(chain, max_session_length=4)
    database, inputs = answer.witness
    print(
        f"  non-emptiness ({answer.verdict.value} at {answer.detail}): "
        f"witness database has {database.total_rows()} tuples, "
        f"input sequence has {len(inputs)} messages"
    )


def main() -> None:
    latest_wins_demo()
    expansion_demo()


if __name__ == "__main__":
    main()
